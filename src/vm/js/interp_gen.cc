#include "vm/js/interp_gen.h"

#include "common/strutil.h"
#include "vm/asm_emitter.h"
#include "vm/js/bytecode.h"

namespace tarch::vm::js {

namespace {

class Gen
{
  public:
    Gen(Variant variant, const GuestLayout &layout, uint64_t main_code,
        uint64_t main_consts, unsigned main_nlocals)
        : v_(variant), lay_(layout), mainCode_(main_code),
          mainConsts_(main_consts), mainNLocals_(main_nlocals)
    {
    }

    InterpResult
    run()
    {
        entry();
        dispatch();
        stackHandlers();
        arithHandlers();
        divModHandlers();
        unaryHandlers();
        compareHandlers();
        jumpHandlers();
        elemHandlers();
        elidedHandlers();
        callReturnHandlers();
        builtinHandler();
        errorsAndExit();
        dataSection();
        InterpResult result;
        result.asmText = e_.take();
        result.markers = std::move(markers_);
        result.guardLabels = std::move(guards_);
        return result;
    }

  private:
    void
    handler(Op op)
    {
        const std::string sym = "op_" + toLower(std::string(opName(op)));
        e_.l(sym);
        markers_.emplace_back(sym, "op:" + std::string(opName(op)));
    }

    void
    subMarker(const std::string &sym, const std::string &name)
    {
        e_.l(sym);
        markers_.emplace_back(sym, name);
    }

    /** Label the next instruction as a fast-path type guard. */
    void
    guard()
    {
        const std::string sym = e_.fresh("grd");
        e_.l(sym);
        guards_.push_back(sym);
    }

    void jDispatch() { e_.o("j dispatch"); }

    /** dst = unsigned 24-bit immediate. */
    void
    immU(const char *dst)
    {
        e_.o("srliw %s, t0, 8", dst);
    }

    /** dst = signed 24-bit immediate. */
    void
    immS(const char *dst)
    {
        e_.o("srai %s, t0, 8", dst);
    }

    /** pc += imm words (t0 holds the bytecode). */
    void
    applyJump()
    {
        e_.o("srai t4, t0, 8");
        e_.o("slli t4, t4, 2");
        e_.o("add  s2, s2, t4");
    }

    void
    push(const char *reg)
    {
        e_.o("addi s3, s3, 8");
        e_.o("sd %s, 0(s3)", reg);
    }

    /** Zero-extend the low 32 bits of @p reg and OR the Int box base. */
    void
    reboxInt(const char *reg)
    {
        e_.o("slli %s, %s, 32", reg, reg);
        e_.o("srli %s, %s, 32", reg, reg);
        e_.o("or %s, %s, s9", reg, reg);
    }

    /** Turn the 0/1 flag in @p reg into a boxed Bool (clobbers t6). */
    void
    boxBool(const char *reg)
    {
        e_.o("li t6, 1");
        e_.o("slli t6, t6, 48");
        e_.o("add t6, t6, s9");  // Bool box base (tag 4 = Int tag 2 + 2)
        e_.o("or %s, %s, t6", reg, reg);
    }

    /**
     * Convert the boxed/double value in @p reg to a double in @p fdst.
     * Jumps to err_arith for non-numbers.  Clobbers a4 and a6.
     */
    void
    toNumber(const char *reg, const char *fdst)
    {
        const std::string lf = e_.fresh("ton_f");
        const std::string ld = e_.fresh("ton_d");
        e_.o("srli a4, %s, 48", reg);
        e_.o("bne a4, s11, %s", lf.c_str());
        e_.o("sext.w a6, %s", reg);
        e_.o("fcvt.d.l %s, a6", fdst);
        e_.o("j %s", ld.c_str());
        e_.l(lf);
        e_.o("srli a4, %s, 51", reg);
        e_.o("beq a4, s8, err_arith");
        e_.o("fmv.d.x %s, %s", fdst, reg);
        e_.l(ld);
    }

    /**
     * Branch to @p falsy if the value in @p reg is falsy, else fall
     * through to @p truthy (emitted as a label right after).  Clobbers
     * a3/a4.  JS truthiness: +-0, null, undefined, false, 0, "" falsy.
     */
    void
    truthiness(const char *reg, const std::string &falsy,
               const std::string &truthy)
    {
        const std::string boxed = e_.fresh("tr_bx");
        const std::string str = e_.fresh("tr_st");
        e_.o("srli a3, %s, 51", reg);
        e_.o("beq a3, s8, %s", boxed.c_str());
        e_.o("slli a3, %s, 1", reg);  // drop the sign: +-0 falsy
        e_.o("beqz a3, %s", falsy.c_str());
        e_.o("j %s", truthy.c_str());
        e_.l(boxed);
        e_.o("srli a3, %s, 47", reg);
        e_.o("andi a3, a3, 15");
        e_.o("addi a4, a3, -%u", kTagNull);
        e_.o("beqz a4, %s", falsy.c_str());
        e_.o("addi a4, a3, -%u", kTagUndef);
        e_.o("beqz a4, %s", falsy.c_str());
        e_.o("addi a4, a3, -%u", kTagStr);
        e_.o("beqz a4, %s", str.c_str());
        e_.o("addi a4, a3, -%u", kTagObj);
        e_.o("beqz a4, %s", truthy.c_str());
        e_.o("addi a4, a3, -%u", kTagFun);
        e_.o("beqz a4, %s", truthy.c_str());
        // Int or Bool: test the payload.
        e_.o("and a4, %s, s10", reg);
        e_.o("beqz a4, %s", falsy.c_str());
        e_.o("j %s", truthy.c_str());
        e_.l(str);
        e_.o("and a4, %s, s10", reg);
        e_.o("ld a4, 0(a4)");  // string length
        e_.o("beqz a4, %s", falsy.c_str());
        e_.o("j %s", truthy.c_str());
    }

    // ------------------------------------------------------------------

    void
    entry()
    {
        e_.raw(".text\n");
        e_.l("_start");
        e_.o("la s1, jumptable");
        e_.o("li s5, 0x%llx", (unsigned long long)lay_.globals);
        e_.o("li s0, 0x%llx", (unsigned long long)lay_.callStack);
        e_.o("mv s6, s0");
        e_.o("li s2, 0x%llx", (unsigned long long)mainCode_);
        e_.o("li s4, 0x%llx", (unsigned long long)mainConsts_);
        e_.o("li s7, 0x%llx", (unsigned long long)(lay_.valueStack + 8));
        e_.o("li s3, 0x%llx",
             (unsigned long long)(lay_.valueStack + 8 +
                                  8 * (mainNLocals_ > 0
                                           ? mainNLocals_ - 1
                                           : 0)) -
                 (mainNLocals_ == 0 ? 8ULL : 0ULL));
        e_.o("li s8, 0x1FFF");
        e_.o("li s9, 0x%llx", (unsigned long long)box(kTagInt, 0));
        e_.o("li s10, 0x7FFFFFFFFFFF");
        e_.o("li s11, 0x%x", typeHalfword(kTagInt));
        if (v_ == Variant::CheckedLoad) {
            // Invariant: R_exptype holds the Int halfword except
            // transiently inside the element handlers.
            e_.o("settype s11");
        }
        if (v_ == Variant::Typed) {
            // Table 4: R_offset=0b100 (NaN detect), shift 47, mask 0x0F.
            e_.o("li t0, 4");
            e_.o("setoffset t0");
            e_.o("li t0, 47");
            e_.o("setshift t0");
            e_.o("li t0, 0x0F");
            e_.o("setmask t0");
            // TRT: arithmetic (Int,Int)->Int, (Flt,Flt)->Flt; element
            // access (Obj,Int) and (Int,Obj) -> Obj.  8 rules.
            const uint32_t i = kTagInt, o = kTagObj;
            const char *fmt = "0x%08x";
            const uint32_t rules[] = {
                (0u << 24) | (i << 16) | (i << 8) | i,
                (1u << 24) | (i << 16) | (i << 8) | i,
                (2u << 24) | (i << 16) | (i << 8) | i,
                (0u << 24) | (0xFFu << 16) | (0xFFu << 8) | 0xFFu,
                (1u << 24) | (0xFFu << 16) | (0xFFu << 8) | 0xFFu,
                (2u << 24) | (0xFFu << 16) | (0xFFu << 8) | 0xFFu,
                (3u << 24) | (o << 16) | (i << 8) | o,
                (3u << 24) | (i << 16) | (o << 8) | o,
            };
            for (const uint32_t rule : rules) {
                e_.o((std::string("li t0, ") + fmt).c_str(), rule);
                e_.o("set_trt t0");
            }
        }
        jDispatch();
    }

    void
    dispatch()
    {
        subMarker("dispatch", "dispatch");
        e_.o("lw   t0, 0(s2)");
        e_.o("addi s2, s2, 4");
        e_.o("andi t1, t0, 255");
        e_.o("slli t1, t1, 3");
        e_.o("add  t1, t1, s1");
        e_.o("ld   t1, 0(t1)");
        e_.o("jr   t1");
    }

    void
    stackHandlers()
    {
        handler(Op::PUSHK);
        immU("t3");
        e_.o("slli t3, t3, 3");
        e_.o("add t3, t3, s4");
        e_.o("ld t4, 0(t3)");
        push("t4");
        jDispatch();

        handler(Op::PUSHINT);
        immS("t3");
        reboxInt("t3");
        push("t3");
        jDispatch();

        handler(Op::PUSHUNDEF);
        e_.o("li t4, %u", (kTagUndef - kTagInt) / 2);
        e_.o("slli t4, t4, 48");
        e_.o("add t4, t4, s9");
        push("t4");
        jDispatch();

        handler(Op::DUP);
        e_.o("ld t3, 0(s3)");
        push("t3");
        jDispatch();

        handler(Op::POP);
        e_.o("addi s3, s3, -8");
        jDispatch();

        handler(Op::GETLOCAL);
        immU("t3");
        e_.o("slli t3, t3, 3");
        e_.o("add t3, t3, s7");
        e_.o("ld t4, 0(t3)");
        push("t4");
        jDispatch();

        handler(Op::SETLOCAL);
        immU("t3");
        e_.o("slli t3, t3, 3");
        e_.o("add t3, t3, s7");
        e_.o("ld t4, 0(s3)");
        e_.o("addi s3, s3, -8");
        e_.o("sd t4, 0(t3)");
        jDispatch();

        handler(Op::GETGLOBAL);
        immU("t3");
        e_.o("slli t3, t3, 3");
        e_.o("add t3, t3, s5");
        e_.o("ld t4, 0(t3)");
        push("t4");
        jDispatch();

        handler(Op::SETGLOBAL);
        immU("t3");
        e_.o("slli t3, t3, 3");
        e_.o("add t3, t3, s5");
        e_.o("ld t4, 0(s3)");
        e_.o("addi s3, s3, -8");
        e_.o("sd t4, 0(t3)");
        jDispatch();

        handler(Op::NEWARRAY);
        e_.o("addi a0, s3, 8");
        e_.o("hcall %u", kHcNewArray);
        e_.o("addi s3, s3, 8");
        jDispatch();

        handler(Op::CONCAT);
        e_.o("mv a0, s3");
        e_.o("hcall %u", kHcConcat);
        e_.o("addi s3, s3, -8");
        jDispatch();

        handler(Op::NOP);
        jDispatch();
    }

    // ------------------------------------------------------------------
    // Hot polymorphic arithmetic (paper Table 3, SpiderMonkey rows).

    void
    arithHandlers()
    {
        arith(Op::ADD, "add", "fadd.d");
        arith(Op::SUB, "sub", "fsub.d");
        arith(Op::MUL, "mul", "fmul.d");
    }

    void
    arith(Op op, const char *iop, const char *fop)
    {
        const std::string lower = toLower(std::string(opName(op)));
        const std::string slow = "slow_" + lower;

        handler(op);
        switch (v_) {
          case Variant::Baseline: {
            const std::string flt = "op_" + lower + "_flt";
            e_.o("ld a2, -8(s3)");   // b (St[-2])
            e_.o("ld a3, 0(s3)");    // c (St[-1])
            e_.o("srli a4, a2, 48");
            guard();
            e_.o("bne a4, s11, %s", flt.c_str());
            e_.o("srli a5, a3, 48");
            guard();
            e_.o("bne a5, s11, %s", slow.c_str());
            e_.o("sext.w a6, a2");
            e_.o("sext.w a7, a3");
            e_.o("%s a6, a6, a7", iop);
            e_.o("sext.w a5, a6");
            e_.o("bne a5, a6, %s", slow.c_str());  // int32 overflow
            reboxInt("a6");
            e_.o("sd a6, -8(s3)");
            e_.o("addi s3, s3, -8");
            jDispatch();
            subMarker(flt, "op:" + std::string(opName(op)) + ":flt");
            e_.o("srli a4, a2, 51");
            guard();
            e_.o("beq a4, s8, %s", slow.c_str());  // boxed non-int
            e_.o("srli a5, a3, 51");
            guard();
            e_.o("beq a5, s8, %s", slow.c_str());
            e_.o("fmv.d.x f2, a2");
            e_.o("fmv.d.x f5, a3");
            e_.o("%s f5, f2, f5", fop);
            e_.o("fmv.x.d a6, f5");
            e_.o("sd a6, -8(s3)");
            e_.o("addi s3, s3, -8");
            jDispatch();
            break;
          }
          case Variant::Typed:
            // Figure 3 adapted to the stack layout: tld performs NaN
            // unboxing, xadd binds int/FP, tsd reboxes.
            e_.o("thdl %s", slow.c_str());
            e_.o("tld a2, -8(s3)");
            e_.o("tld a3, 0(s3)");
            // The x-op checks both operand tags against the TRT.
            guard();
            e_.o("x%s a2, a2, a3", iop);
            e_.o("tsd a2, -8(s3)");
            e_.o("addi s3, s3, -8");
            jDispatch();
            break;
          case Variant::CheckedLoad:
            e_.o("thdl %s", slow.c_str());
            guard();
            e_.o("chkld a2, -8(s3)");  // load St[-2], check Int in flight
            guard();
            e_.o("chkld a3, 0(s3)");   // load St[-1], check Int in flight
            e_.o("sext.w a6, a2");
            e_.o("sext.w a7, a3");
            e_.o("%s a6, a6, a7", iop);
            e_.o("sext.w a5, a6");
            e_.o("bne a5, a6, %s", slow.c_str());
            reboxInt("a6");
            e_.o("sd a6, -8(s3)");
            e_.o("addi s3, s3, -8");
            jDispatch();
            break;
        }

        // Shared software slow path.  Full semantics (the Section 5
        // path selector can route well-typed executions here): int/int
        // without overflow keeps the int32 representation.
        subMarker(slow, "slow:" + std::string(opName(op)));
        {
            const std::string conv = e_.fresh("slow_conv");
            e_.o("ld a2, -8(s3)");
            e_.o("ld a3, 0(s3)");
            e_.o("srli a4, a2, 48");
            e_.o("bne a4, s11, %s", conv.c_str());
            e_.o("srli a5, a3, 48");
            e_.o("bne a5, s11, %s", conv.c_str());
            e_.o("sext.w a6, a2");
            e_.o("sext.w a7, a3");
            e_.o("%s a6, a6, a7", iop);
            e_.o("sext.w a5, a6");
            e_.o("bne a5, a6, %s", conv.c_str());  // overflow -> doubles
            reboxInt("a6");
            e_.o("sd a6, -8(s3)");
            e_.o("addi s3, s3, -8");
            jDispatch();
            e_.l(conv);
        }
        e_.o("ld a2, -8(s3)");
        e_.o("ld a3, 0(s3)");
        toNumber("a2", "f2");
        toNumber("a3", "f5");
        e_.o("%s f5, f2, f5", fop);
        e_.o("fmv.x.d a6, f5");
        e_.o("sd a6, -8(s3)");
        e_.o("addi s3, s3, -8");
        jDispatch();
    }

    // ------------------------------------------------------------------

    void
    divModHandlers()
    {
        handler(Op::DIV);
        e_.o("ld a2, -8(s3)");
        e_.o("ld a3, 0(s3)");
        toNumber("a2", "f2");
        toNumber("a3", "f5");
        e_.o("fdiv.d f2, f2, f5");
        e_.o("fmv.x.d a6, f2");
        e_.o("sd a6, -8(s3)");
        e_.o("addi s3, s3, -8");
        jDispatch();

        handler(Op::IDIV);
        {
            const std::string flt = e_.fresh("id_f");
            const std::string st = e_.fresh("id_s");
            const std::string keep = e_.fresh("id_k");
            const std::string ovf = e_.fresh("id_o");
            e_.o("ld a2, -8(s3)");
            e_.o("ld a3, 0(s3)");
            e_.o("srli a4, a2, 48");
            e_.o("bne a4, s11, %s", flt.c_str());
            e_.o("srli a5, a3, 48");
            e_.o("bne a5, s11, %s", flt.c_str());
            e_.o("sext.w a6, a2");
            e_.o("sext.w a7, a3");
            e_.o("beqz a7, err_divzero");
            e_.o("div t6, a6, a7");
            e_.o("mul t4, t6, a7");
            e_.o("beq t4, a6, %s", st.c_str());
            e_.o("xor t4, a6, a7");
            e_.o("bgez t4, %s", st.c_str());
            e_.o("addi t6, t6, -1");
            e_.l(st);
            e_.o("sext.w a4, t6");
            e_.o("bne a4, t6, %s", ovf.c_str());  // INT32_MIN // -1
            reboxInt("t6");
            e_.o("sd t6, -8(s3)");
            e_.o("addi s3, s3, -8");
            jDispatch();
            e_.l(ovf);
            e_.o("fcvt.d.l f2, t6");
            e_.o("fmv.x.d a6, f2");
            e_.o("sd a6, -8(s3)");
            e_.o("addi s3, s3, -8");
            jDispatch();
            e_.l(flt);
            toNumber("a2", "f2");
            toNumber("a3", "f5");
            e_.o("fdiv.d f2, f2, f5");
            e_.o("fcvt.l.d a5, f2");
            e_.o("fcvt.d.l f4, a5");
            e_.o("fle.d a6, f4, f2");
            e_.o("bnez a6, %s", keep.c_str());
            e_.o("addi a5, a5, -1");
            e_.l(keep);
            e_.o("fcvt.d.l f4, a5");
            e_.o("fmv.x.d a6, f4");
            e_.o("sd a6, -8(s3)");
            e_.o("addi s3, s3, -8");
            jDispatch();
        }

        handler(Op::MOD);
        {
            const std::string flt = e_.fresh("md_f");
            const std::string st = e_.fresh("md_s");
            e_.o("ld a2, -8(s3)");
            e_.o("ld a3, 0(s3)");
            e_.o("srli a4, a2, 48");
            e_.o("bne a4, s11, %s", flt.c_str());
            e_.o("srli a5, a3, 48");
            e_.o("bne a5, s11, %s", flt.c_str());
            e_.o("sext.w a6, a2");
            e_.o("sext.w a7, a3");
            e_.o("beqz a7, err_divzero");
            e_.o("rem t6, a6, a7");
            e_.o("beqz t6, %s", st.c_str());
            e_.o("xor t4, t6, a7");
            e_.o("bgez t4, %s", st.c_str());
            e_.o("add t6, t6, a7");
            e_.l(st);
            reboxInt("t6");
            e_.o("sd t6, -8(s3)");
            e_.o("addi s3, s3, -8");
            jDispatch();
            e_.l(flt);
            e_.o("mv a0, s3");
            e_.o("hcall %u", kHcFmod);
            e_.o("addi s3, s3, -8");
            jDispatch();
        }
    }

    // ------------------------------------------------------------------

    void
    unaryHandlers()
    {
        handler(Op::NEG);
        {
            const std::string flt = e_.fresh("ng_f");
            const std::string ovf = e_.fresh("ng_o");
            e_.o("ld a2, 0(s3)");
            e_.o("srli a4, a2, 48");
            e_.o("bne a4, s11, %s", flt.c_str());
            e_.o("sext.w a6, a2");
            e_.o("neg a6, a6");
            e_.o("sext.w a4, a6");
            e_.o("bne a4, a6, %s", ovf.c_str());
            reboxInt("a6");
            e_.o("sd a6, 0(s3)");
            jDispatch();
            e_.l(ovf);
            e_.o("fcvt.d.l f2, a6");
            e_.o("fmv.x.d a6, f2");
            e_.o("sd a6, 0(s3)");
            jDispatch();
            e_.l(flt);
            e_.o("srli a4, a2, 51");
            e_.o("beq a4, s8, err_arith");
            e_.o("li t4, 1");
            e_.o("slli t4, t4, 63");
            e_.o("xor a2, a2, t4");
            e_.o("sd a2, 0(s3)");
            jDispatch();
        }

        handler(Op::NOT);
        {
            const std::string truthy = e_.fresh("nt_t");
            const std::string falsy = e_.fresh("nt_f");
            const std::string store = e_.fresh("nt_s");
            e_.o("ld a2, 0(s3)");
            truthiness("a2", falsy, truthy);
            e_.l(truthy);
            e_.o("li a6, 0");
            e_.o("j %s", store.c_str());
            e_.l(falsy);
            e_.o("li a6, 1");
            e_.l(store);
            boxBool("a6");
            e_.o("sd a6, 0(s3)");
            jDispatch();
        }

        handler(Op::LEN);
        {
            const std::string obj = e_.fresh("ln_o");
            const std::string boxl = e_.fresh("ln_b");
            e_.o("ld a2, 0(s3)");
            e_.o("srli a4, a2, 48");
            e_.o("addi t6, s11, %u", (kTagObj - kTagInt) / 2);
            e_.o("beq a4, t6, %s", obj.c_str());
            e_.o("addi t6, s11, %u", (kTagStr - kTagInt) / 2);
            e_.o("bne a4, t6, err_len");
            e_.o("and a2, a2, s10");
            e_.o("ld a6, 0(a2)");  // string length
            e_.o("j %s", boxl.c_str());
            e_.l(obj);
            e_.o("and a2, a2, s10");
            e_.o("ld a6, %u(a2)", kArrLen);
            e_.l(boxl);
            reboxInt("a6");
            e_.o("sd a6, 0(s3)");
            jDispatch();
        }
    }

    // ------------------------------------------------------------------

    void
    compareHandlers()
    {
        compare(Op::EQ);
        compare(Op::NE);
        compare(Op::LT);
        compare(Op::LE);
    }

    void
    compare(Op op)
    {
        const bool is_eq = op == Op::EQ;
        const bool is_ne = op == Op::NE;
        const bool eqlike = is_eq || is_ne;

        handler(op);
        const std::string bni = e_.fresh("cp_bni");
        const std::string mix1 = e_.fresh("cp_if");
        const std::string mix2 = e_.fresh("cp_fi");
        const std::string fcmp = e_.fresh("cp_ff");
        const std::string nn = e_.fresh("cp_nn");
        const std::string store = e_.fresh("cp_st");

        e_.o("ld a2, -8(s3)");  // b
        e_.o("ld a3, 0(s3)");   // c
        e_.o("srli a4, a2, 48");
        e_.o("bne a4, s11, %s", bni.c_str());
        e_.o("srli a5, a3, 48");
        e_.o("bne a5, s11, %s", mix1.c_str());
        // int/int
        e_.o("sext.w a6, a2");
        e_.o("sext.w a7, a3");
        if (is_eq) {
            e_.o("xor a6, a6, a7");
            e_.o("seqz a6, a6");
        } else if (is_ne) {
            e_.o("xor a6, a6, a7");
            e_.o("snez a6, a6");
        } else if (op == Op::LT) {
            e_.o("slt a6, a6, a7");
        } else {
            e_.o("slt a6, a7, a6");
            e_.o("xori a6, a6, 1");
        }
        e_.o("j %s", store.c_str());

        e_.l(mix1);  // b int, c not int
        e_.o("srli a5, a3, 51");
        e_.o("beq a5, s8, %s", nn.c_str());  // c boxed non-number
        e_.o("sext.w a6, a2");
        e_.o("fcvt.d.l f2, a6");
        e_.o("fmv.d.x f5, a3");
        e_.o("j %s", fcmp.c_str());

        e_.l(bni);  // b not int
        e_.o("srli a4, a2, 51");
        e_.o("beq a4, s8, %s", nn.c_str());  // b boxed non-number
        e_.o("srli a5, a3, 48");
        e_.o("beq a5, s11, %s", mix2.c_str());
        e_.o("srli a5, a3, 51");
        e_.o("beq a5, s8, %s", nn.c_str());
        e_.o("fmv.d.x f2, a2");
        e_.o("fmv.d.x f5, a3");
        e_.o("j %s", fcmp.c_str());

        e_.l(mix2);  // b double, c int
        e_.o("fmv.d.x f2, a2");
        e_.o("sext.w a6, a3");
        e_.o("fcvt.d.l f5, a6");

        e_.l(fcmp);
        if (is_eq) {
            e_.o("feq.d a6, f2, f5");
        } else if (is_ne) {
            e_.o("feq.d a6, f2, f5");
            e_.o("xori a6, a6, 1");
        } else if (op == Op::LT) {
            e_.o("flt.d a6, f2, f5");
        } else {
            e_.o("fle.d a6, f2, f5");
        }
        e_.o("j %s", store.c_str());

        e_.l(nn);  // at least one boxed non-number
        if (eqlike) {
            // Raw bit equality is exact here: strings are interned and a
            // boxed value can never equal a number's bits.
            e_.o("xor a6, a2, a3");
            e_.o(is_eq ? "seqz a6, a6" : "snez a6, a6");
        } else {
            e_.o("j err_compare");
        }

        e_.l(store);
        boxBool("a6");
        e_.o("sd a6, -8(s3)");
        e_.o("addi s3, s3, -8");
        jDispatch();
    }

    // ------------------------------------------------------------------

    void
    jumpHandlers()
    {
        handler(Op::JUMP);
        applyJump();
        jDispatch();

        for (const bool jump_if_false : {true, false}) {
            handler(jump_if_false ? Op::JUMPF : Op::JUMPT);
            const std::string yes = e_.fresh("jc_y");
            const std::string no = e_.fresh("jc_n");
            e_.o("ld a2, 0(s3)");
            e_.o("addi s3, s3, -8");
            if (jump_if_false)
                truthiness("a2", yes, no);
            else
                truthiness("a2", no, yes);
            e_.l(yes);
            applyJump();
            e_.l(no);
            jDispatch();
        }
    }

    // ------------------------------------------------------------------
    // Hot element access (GETELEM / SETELEM).

    void
    elemHandlers()
    {
        // ---- GETELEM: St[-2] = St[-2][St[-1]] ----
        handler(Op::GETELEM);
        switch (v_) {
          case Variant::Baseline:
            e_.o("ld a2, -8(s3)");  // obj
            e_.o("ld a3, 0(s3)");   // key
            e_.o("srli a4, a2, 48");
            e_.o("addi t6, s11, %u", (kTagObj - kTagInt) / 2);
            guard();
            e_.o("bne a4, t6, err_index");
            e_.o("srli a5, a3, 48");
            guard();
            e_.o("bne a5, s11, slow_getelem");
            e_.o("and a2, a2, s10");
            e_.o("sext.w a3, a3");
            e_.o("ld a6, %u(a2)", kArrCap);
            e_.o("bgeu a3, a6, slow_getelem");
            e_.o("ld a7, %u(a2)", kArrElemsPtr);
            e_.o("slli a3, a3, 3");
            e_.o("add a7, a7, a3");
            e_.o("ld a6, 0(a7)");
            e_.o("sd a6, -8(s3)");
            e_.o("addi s3, s3, -8");
            jDispatch();
            break;
          case Variant::Typed:
            e_.o("thdl slow_getelem");
            e_.o("tld a2, -8(s3)");
            e_.o("tld a3, 0(s3)");
            guard();
            e_.o("tchk a2, a3");
            e_.o("ld a6, %u(a2)", kArrCap);
            e_.o("bgeu a3, a6, slow_getelem");
            e_.o("ld a7, %u(a2)", kArrElemsPtr);
            e_.o("slli t6, a3, 3");
            e_.o("add a7, a7, t6");
            e_.o("tld a6, 0(a7)");
            e_.o("tsd a6, -8(s3)");
            e_.o("addi s3, s3, -8");
            jDispatch();
            break;
          case Variant::CheckedLoad:
            e_.o("thdl slow_getelem");
            e_.o("addi t6, s11, %u", (kTagObj - kTagInt) / 2);
            e_.o("settype t6");
            guard();
            e_.o("chkld a2, -8(s3)");
            e_.o("settype s11");
            guard();
            e_.o("chkld a3, 0(s3)");
            e_.o("and a2, a2, s10");
            e_.o("sext.w a3, a3");
            e_.o("ld a6, %u(a2)", kArrCap);
            e_.o("bgeu a3, a6, slow_getelem");
            e_.o("ld a7, %u(a2)", kArrElemsPtr);
            e_.o("slli a3, a3, 3");
            e_.o("add a7, a7, a3");
            e_.o("ld a6, 0(a7)");
            e_.o("sd a6, -8(s3)");
            e_.o("addi s3, s3, -8");
            jDispatch();
            break;
        }
        subMarker("slow_getelem", "slow:GETELEM");
        e_.o("ld a2, -8(s3)");
        e_.o("srli a4, a2, 48");
        e_.o("addi t6, s11, %u", (kTagObj - kTagInt) / 2);
        e_.o("bne a4, t6, err_index");
        e_.o("mv a0, s3");
        e_.o("hcall %u", kHcElemGetSlow);
        e_.o("addi s3, s3, -8");
        jDispatch();

        // ---- SETELEM: St[-3][St[-2]] = St[-1] ----
        handler(Op::SETELEM);
        const std::string lsk = e_.fresh("se_len");
        switch (v_) {
          case Variant::Baseline:
            e_.o("ld a2, -16(s3)");
            e_.o("ld a3, -8(s3)");
            e_.o("srli a4, a2, 48");
            e_.o("addi t6, s11, %u", (kTagObj - kTagInt) / 2);
            guard();
            e_.o("bne a4, t6, err_index");
            e_.o("srli a5, a3, 48");
            guard();
            e_.o("bne a5, s11, slow_setelem");
            e_.o("and a2, a2, s10");
            e_.o("sext.w a3, a3");
            e_.o("ld a6, %u(a2)", kArrCap);
            e_.o("bgeu a3, a6, slow_setelem");
            e_.o("ld a7, %u(a2)", kArrElemsPtr);
            e_.o("slli t6, a3, 3");
            e_.o("add a7, a7, t6");
            e_.o("ld t4, 0(s3)");
            e_.o("sd t4, 0(a7)");
            e_.o("ld a6, %u(a2)", kArrLen);
            e_.o("bge a6, a3, %s", lsk.c_str());
            e_.o("sd a3, %u(a2)", kArrLen);
            e_.l(lsk);
            e_.o("addi s3, s3, -24");
            jDispatch();
            break;
          case Variant::Typed:
            e_.o("thdl slow_setelem");
            e_.o("tld a2, -16(s3)");
            e_.o("tld a3, -8(s3)");
            guard();
            e_.o("tchk a2, a3");
            e_.o("ld a6, %u(a2)", kArrCap);
            e_.o("bgeu a3, a6, slow_setelem");
            e_.o("ld a7, %u(a2)", kArrElemsPtr);
            e_.o("slli t6, a3, 3");
            e_.o("add a7, a7, t6");
            e_.o("tld t4, 0(s3)");
            e_.o("tsd t4, 0(a7)");
            e_.o("ld a6, %u(a2)", kArrLen);
            e_.o("bge a6, a3, %s", lsk.c_str());
            e_.o("sd a3, %u(a2)", kArrLen);
            e_.l(lsk);
            e_.o("addi s3, s3, -24");
            jDispatch();
            break;
          case Variant::CheckedLoad:
            e_.o("thdl slow_setelem");
            e_.o("addi t6, s11, %u", (kTagObj - kTagInt) / 2);
            e_.o("settype t6");
            guard();
            e_.o("chkld a2, -16(s3)");
            e_.o("settype s11");
            guard();
            e_.o("chkld a3, -8(s3)");
            e_.o("and a2, a2, s10");
            e_.o("sext.w a3, a3");
            e_.o("ld a6, %u(a2)", kArrCap);
            e_.o("bgeu a3, a6, slow_setelem");
            e_.o("ld a7, %u(a2)", kArrElemsPtr);
            e_.o("slli t6, a3, 3");
            e_.o("add a7, a7, t6");
            e_.o("ld t4, 0(s3)");
            e_.o("sd t4, 0(a7)");
            e_.o("ld a6, %u(a2)", kArrLen);
            e_.o("bge a6, a3, %s", lsk.c_str());
            e_.o("sd a3, %u(a2)", kArrLen);
            e_.l(lsk);
            e_.o("addi s3, s3, -24");
            jDispatch();
            break;
        }
        subMarker("slow_setelem", "slow:SETELEM");
        e_.o("ld a2, -16(s3)");
        e_.o("srli a4, a2, 48");
        e_.o("addi t6, s11, %u", (kTagObj - kTagInt) / 2);
        e_.o("bne a4, t6, err_index");
        e_.o("mv a0, s3");
        e_.o("hcall %u", kHcElemSetSlow);
        e_.o("addi s3, s3, -24");
        jDispatch();
    }

    // ------------------------------------------------------------------
    // Guard-elided handlers.  These back the *_II/*_DD/*_E opcodes that
    // analysis/elide.cc rewrites in at provably monomorphic sites, and
    // are identical across all three ISA variants: no NaN-box tag
    // probes, no tchk, no chkld.  The *_II forms keep the int32
    // overflow check (value-range semantics, not a type guard) and the
    // *_E element forms keep the array-bounds check; their slow paths
    // skip the object-tag recheck -- the type is statically proven.

    void
    elidedHandlers()
    {
        elidedArith(Op::ADD_II, "add", /*isFloat=*/false);
        elidedArith(Op::SUB_II, "sub", /*isFloat=*/false);
        elidedArith(Op::MUL_II, "mul", /*isFloat=*/false);
        elidedArith(Op::ADD_DD, "fadd.d", /*isFloat=*/true);
        elidedArith(Op::SUB_DD, "fsub.d", /*isFloat=*/true);
        elidedArith(Op::MUL_DD, "fmul.d", /*isFloat=*/true);
        elidedGetelem();
        elidedSetelem();
    }

    void
    elidedArith(Op op, const char *insn, bool isFloat)
    {
        handler(op);
        e_.o("ld a2, -8(s3)");
        e_.o("ld a3, 0(s3)");
        if (isFloat) {
            e_.o("fmv.d.x f2, a2");
            e_.o("fmv.d.x f5, a3");
            e_.o("%s f5, f2, f5", insn);
            e_.o("fmv.x.d a6, f5");
        } else {
            const std::string ovf = e_.fresh("eli_ovf");
            e_.o("sext.w a6, a2");
            e_.o("sext.w a7, a3");
            e_.o("%s a6, a6, a7", insn);
            e_.o("sext.w a5, a6");
            e_.o("bne a5, a6, %s", ovf.c_str());  // int32 overflow
            reboxInt("a6");
            e_.o("sd a6, -8(s3)");
            e_.o("addi s3, s3, -8");
            jDispatch();
            e_.l(ovf);
            // Promote to double, exactly as the software slow path
            // would (the 64-bit int result of an int32 op is exact).
            e_.o("fcvt.d.l f5, a6");
            e_.o("fmv.x.d a6, f5");
        }
        e_.o("sd a6, -8(s3)");
        e_.o("addi s3, s3, -8");
        jDispatch();
    }

    void
    elidedGetelem()
    {
        handler(Op::GETELEM_E);
        e_.o("ld a2, -8(s3)");  // obj (tag proven Obj)
        e_.o("ld a3, 0(s3)");   // key (proven Int)
        e_.o("and a2, a2, s10");
        e_.o("sext.w a3, a3");
        e_.o("ld a6, %u(a2)", kArrCap);
        e_.o("bgeu a3, a6, slow_getelem_e");
        e_.o("ld a7, %u(a2)", kArrElemsPtr);
        e_.o("slli a3, a3, 3");
        e_.o("add a7, a7, a3");
        e_.o("ld a6, 0(a7)");
        e_.o("sd a6, -8(s3)");
        e_.o("addi s3, s3, -8");
        jDispatch();

        subMarker("slow_getelem_e", "slow:GETELEM_E");
        e_.o("mv a0, s3");
        e_.o("hcall %u", kHcElemGetSlow);
        e_.o("addi s3, s3, -8");
        jDispatch();
    }

    void
    elidedSetelem()
    {
        handler(Op::SETELEM_E);
        const std::string lsk = e_.fresh("see_len");
        e_.o("ld a2, -16(s3)");  // obj (tag proven Obj)
        e_.o("ld a3, -8(s3)");   // key (proven Int)
        e_.o("and a2, a2, s10");
        e_.o("sext.w a3, a3");
        e_.o("ld a6, %u(a2)", kArrCap);
        e_.o("bgeu a3, a6, slow_setelem_e");
        e_.o("ld a7, %u(a2)", kArrElemsPtr);
        e_.o("slli t6, a3, 3");
        e_.o("add a7, a7, t6");
        e_.o("ld t4, 0(s3)");
        e_.o("sd t4, 0(a7)");
        e_.o("ld a6, %u(a2)", kArrLen);
        e_.o("bge a6, a3, %s", lsk.c_str());
        e_.o("sd a3, %u(a2)", kArrLen);
        e_.l(lsk);
        e_.o("addi s3, s3, -24");
        jDispatch();

        subMarker("slow_setelem_e", "slow:SETELEM_E");
        e_.o("mv a0, s3");
        e_.o("hcall %u", kHcElemSetSlow);
        e_.o("addi s3, s3, -24");
        jDispatch();
    }

    // ------------------------------------------------------------------

    void
    callReturnHandlers()
    {
        handler(Op::CALL);
        immU("t3");  // argc
        e_.o("slli t4, t3, 3");
        e_.o("sub t5, s3, t4");  // t5 = callee slot address
        e_.o("ld a2, 0(t5)");
        e_.o("srli a4, a2, 48");
        e_.o("addi t6, s11, %u", (kTagFun - kTagInt) / 2);
        e_.o("bne a4, t6, err_call");
        e_.o("and a2, a2, s10");   // proto index
        e_.o("slli a2, a2, 5");
        e_.o("li t6, 0x%llx", (unsigned long long)lay_.protos);
        e_.o("add a2, a2, t6");
        e_.o("sd s2, 0(s6)");
        e_.o("sd s7, 8(s6)");
        e_.o("sd s4, 16(s6)");
        e_.o("addi s6, s6, 32");
        e_.o("addi s7, t5, 8");    // frame base = first argument
        e_.o("ld s2, %u(a2)", kProtoCodePtr);
        e_.o("ld s4, %u(a2)", kProtoConstPtr);
        e_.o("ld a3, %u(a2)", kProtoNRegs);  // nlocals
        e_.o("slli a3, a3, 3");
        e_.o("add s3, s7, a3");
        e_.o("addi s3, s3, -8");
        jDispatch();

        handler(Op::RETURN);
        e_.o("ld a2, 0(s3)");
        e_.o("beq s6, s0, vm_exit");
        e_.o("addi s6, s6, -32");
        e_.o("ld s2, 0(s6)");
        e_.o("addi s3, s7, -8");   // pop the frame (old fb)
        e_.o("ld s7, 8(s6)");
        e_.o("ld s4, 16(s6)");
        e_.o("sd a2, 0(s3)");      // result replaces the callee slot
        jDispatch();
    }

    // ------------------------------------------------------------------

    void
    builtinHandler()
    {
        handler(Op::BUILTIN);
        e_.o("srliw t3, t0, 8");
        e_.o("andi t4, t3, 255");   // id
        e_.o("srliw t5, t0, 16");   // argc
        const char *labels[] = {"bi_print", "bi_sqrt", "bi_floor",
                                "bi_substr", "bi_strchar", "bi_abs"};
        for (unsigned i = 0; i < 6; ++i) {
            if (i == 0) {
                e_.o("beqz t4, %s", labels[i]);
            } else {
                e_.o("addi t6, t4, -%u", i);
                e_.o("beqz t6, %s", labels[i]);
            }
        }
        e_.o("li a0, %u", kErrCall);
        e_.o("j rt_error");

        const std::pair<const char *, unsigned> hcalls[] = {
            {"bi_print", kHcPrint},     {"bi_floor", kHcFloor},
            {"bi_substr", kHcSubstr},   {"bi_strchar", kHcStrChar},
            {"bi_abs", kHcAbs},
        };
        for (const auto &[label, id] : hcalls) {
            e_.l(label);
            e_.o("mv a0, s3");
            e_.o("mv a1, t5");
            e_.o("hcall %u", id);
            // Result replaces the arguments: sp -= (argc - 1) * 8.
            e_.o("addi t5, t5, -1");
            e_.o("slli t5, t5, 3");
            e_.o("sub s3, s3, t5");
            jDispatch();
        }

        e_.l("bi_sqrt");
        e_.o("ld a2, 0(s3)");
        toNumber("a2", "f2");
        e_.o("fsqrt.d f2, f2");
        e_.o("fmv.x.d a6, f2");
        e_.o("sd a6, 0(s3)");
        jDispatch();
    }

    // ------------------------------------------------------------------

    void
    errorsAndExit()
    {
        const std::pair<const char *, unsigned> errs[] = {
            {"err_arith", kErrArith},     {"err_index", kErrIndex},
            {"err_call", kErrCall},       {"err_compare", kErrCompare},
            {"err_divzero", kErrDivZero}, {"err_len", kErrLen},
        };
        for (const auto &[label, code] : errs) {
            e_.l(label);
            e_.o("li a0, %u", code);
            e_.o("j rt_error");
        }
        e_.l("rt_error");
        e_.o("hcall %u", kHcError);
        e_.o("halt");
        e_.l("vm_exit");
        e_.o("li a0, 0");
        e_.o("sys 0");
    }

    void
    dataSection()
    {
        e_.raw(".data\n.align 3\njumptable:\n");
        // Declare the dispatch table to the static verifier: the `jr`
        // in the dispatch loop can only reach these handlers.
        std::string verify = ".verify_indirect_targets";
        for (unsigned i = 0; i < kNumOps; ++i) {
            const std::string name =
                toLower(std::string(opName(static_cast<Op>(i))));
            e_.raw("    .dword op_" + name + "\n");
            verify += (i == 0 ? " op_" : ", op_") + name;
        }
        e_.raw(verify + "\n");
    }

    Variant v_;
    GuestLayout lay_;
    uint64_t mainCode_;
    uint64_t mainConsts_;
    unsigned mainNLocals_;
    AsmEmitter e_;
    std::vector<std::pair<std::string, std::string>> markers_;
    std::vector<std::string> guards_;
};

} // namespace

InterpResult
generateInterp(Variant variant, const GuestLayout &layout,
               uint64_t main_code, uint64_t main_consts,
               unsigned main_nlocals)
{
    return Gen(variant, layout, main_code, main_consts, main_nlocals)
        .run();
}

} // namespace tarch::vm::js
