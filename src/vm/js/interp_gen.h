/**
 * @file
 * MiniJS interpreter generator: emits the stack-machine bytecode
 * interpreter as TRV64 assembly for one of the three ISA variants.  The
 * five hot bytecodes (ADD, SUB, MUL, GETELEM, SETELEM — paper Table 3)
 * are generated per variant; everything else is shared.
 *
 * Guest register conventions:
 *   s0 call-info stack base     s1 dispatch table base
 *   s2 bytecode pc              s3 value-stack TOS address
 *   s4 constant pool base       s5 globals base
 *   s6 call-info stack top      s7 frame base (local 0 address)
 *   s8 0x1FFF (NaN-box detect)  s9 boxed-Int base (0xFFF9 << 48)
 *   s10 47-bit payload mask     s11 0xFFF9 (Int type halfword)
 */

#ifndef TARCH_VM_JS_INTERP_GEN_H
#define TARCH_VM_JS_INTERP_GEN_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "vm/image.h"
#include "vm/variant.h"

namespace tarch::vm::js {

/** hcall intrinsic ids used by the MiniJS interpreter. */
enum Hcall : unsigned {
    kHcPrint = 1,     ///< a0 = TOS addr, a1 = argc; result replaces args
    kHcNewArray,      ///< a0 = slot to receive the boxed array
    kHcElemGetSlow,   ///< obj at -8(sp), key at 0(sp); result to -8(sp)
    kHcElemSetSlow,   ///< obj -16, key -8, val 0
    kHcConcat,        ///< a0 = sp: operands -8/0, result to -8
    kHcFloor,         ///< builtin convention (a0 = sp, a1 = argc)
    kHcSubstr,
    kHcStrChar,
    kHcAbs,
    kHcFmod,          ///< a0 = sp: operands -8/0, result to -8
    kHcError,         ///< a0 = error code
};

enum ErrCode : unsigned {
    kErrArith = 1,
    kErrIndex,
    kErrCall,
    kErrCompare,
    kErrDivZero,
    kErrLen,
};

struct InterpResult {
    std::string asmText;
    std::vector<std::pair<std::string, std::string>> markers;
    /** Fast-path type-guard labels; see vm/lua/interp_gen.h. */
    std::vector<std::string> guardLabels;
};

/**
 * Generate the interpreter.
 * @param main_nlocals frame-slot count of the main chunk (proto 0)
 */
InterpResult generateInterp(Variant variant, const GuestLayout &layout,
                            uint64_t main_code, uint64_t main_consts,
                            unsigned main_nlocals);

} // namespace tarch::vm::js

#endif // TARCH_VM_JS_INTERP_GEN_H
