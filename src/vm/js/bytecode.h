/**
 * @file
 * MiniJS bytecode: a stack-based instruction set modelled on the
 * SpiderMonkey 17 interpreter (paper Section 4.2).  One 32-bit word per
 * instruction: op[7:0] | imm[31:8] (24-bit signed where applicable;
 * BUILTIN packs id in imm[7:0] and argc in imm[15:8]).
 *
 * Value representation: NaN boxing.  A plain IEEE-754 double is stored
 * as its raw bits.  Non-FP values set the 13 MSBs to one, a 4-bit type
 * tag at bits [50:47], and a 47-bit payload (paper Section 4.2; the
 * special registers are R_offset=0b100, R_shift=47, R_mask=0x0F,
 * Table 4).
 *
 * Tag encoding: we use even tag values (Int=2, Bool=4, Null=6,
 * Undefined=8, Str=10, Obj=12, Fun=14) so that bits [63:48] of a boxed
 * dword uniquely identify the type.  This lets both the baseline's
 * software guard and our Checked Load adaptation test a type with a
 * single 16-bit compare (chklh), mirroring the paper's sidestep of
 * chklb's immediate-field problem (Section 7.1).  SpiderMonkey's actual
 * numbering uses odd values; only the numbering differs, not the
 * mechanism.
 */

#ifndef TARCH_VM_JS_BYTECODE_H
#define TARCH_VM_JS_BYTECODE_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tarch::vm::js {

enum class Op : uint8_t {
    PUSHK = 0,   ///< push constant-pool dword
    PUSHINT,     ///< push boxed int (signed 24-bit immediate)
    PUSHUNDEF,   ///< push boxed undefined
    DUP,         ///< duplicate TOS
    POP,         ///< drop TOS
    GETLOCAL,    ///< push frame[imm]
    SETLOCAL,    ///< frame[imm] = pop
    GETGLOBAL,   ///< push G[imm]
    SETGLOBAL,   ///< G[imm] = pop
    GETELEM,     ///< St[-2] = St[-2][St[-1]]; pop 1     (hot, guarded)
    SETELEM,     ///< St[-3][St[-2]] = St[-1]; pop 3     (hot, guarded)
    NEWARRAY,    ///< push new array object
    ADD,         ///< St[-2] = St[-2] + St[-1]; pop 1    (hot, polymorphic)
    SUB,         ///< (hot, polymorphic)
    MUL,         ///< (hot, polymorphic)
    DIV,         ///< float division
    IDIV,        ///< floor division (MiniScript semantics)
    MOD,         ///< floored modulo (MiniScript semantics)
    NEG,
    NOT,
    LEN,
    CONCAT,      ///< string concatenation
    EQ, NE, LT, LE,
    JUMP,        ///< pc += imm (words, post-increment)
    JUMPF,       ///< pop; jump if falsy
    JUMPT,       ///< pop; jump if truthy
    CALL,        ///< imm = argc; callee below the args
    RETURN,      ///< return TOS to the caller
    BUILTIN,     ///< imm[7:0] = builtin id, imm[15:8] = argc
    NOP,

    // Guard-elided forms, rewritten in by analysis/elide.{h,cc} at
    // sites the type-inference pass proved monomorphic
    // (docs/ANALYSIS.md).  Handler bodies carry no tag
    // extract/compare/branch in any ISA variant.  The *_II forms keep
    // the int32 overflow check (value-range semantics, not a type
    // guard); the *_E element forms keep the array-bounds check.
    ADD_II,      ///< both operands proven Int
    SUB_II,
    MUL_II,
    ADD_DD,      ///< both operands proven unboxed double
    SUB_DD,
    MUL_DD,
    GETELEM_E,   ///< GETELEM with obj:Obj and key:Int proven
    SETELEM_E,   ///< SETELEM with obj:Obj and key:Int proven

    NumOps,
};

constexpr unsigned kNumOps = static_cast<unsigned>(Op::NumOps);

/** Builtin ids (same set as MiniLua). */
enum class Builtin : uint8_t {
    Print = 0, Sqrt, Floor, Substr, StrChar, Abs,
    NumBuiltins,
};

// NaN-box tag values (even; see file header).
constexpr uint8_t kTagInt = 2;
constexpr uint8_t kTagBool = 4;
constexpr uint8_t kTagNull = 6;
constexpr uint8_t kTagUndef = 8;
constexpr uint8_t kTagStr = 10;
constexpr uint8_t kTagObj = 12;
constexpr uint8_t kTagFun = 14;

constexpr uint64_t kNanPrefix = 0x1FFFULL << 51;
constexpr uint64_t kPayloadMask = (1ULL << 47) - 1;

/** Box a payload with a tag. */
constexpr uint64_t
box(uint8_t tag, uint64_t payload)
{
    return kNanPrefix | (static_cast<uint64_t>(tag) << 47) |
           (payload & kPayloadMask);
}

constexpr uint64_t
boxInt(int32_t v)
{
    return box(kTagInt, static_cast<uint32_t>(v));
}

/** bits[63:48] of a boxed value of @p tag (used by guards and chklh). */
constexpr uint16_t
typeHalfword(uint8_t tag)
{
    return static_cast<uint16_t>(0xFFF8 | (tag >> 1));
}

// Array object header layout (guest memory).
constexpr unsigned kArrElemsPtr = 0;
constexpr unsigned kArrCap = 8;
constexpr unsigned kArrLen = 16;   ///< max integer key set (see DESIGN.md)
constexpr unsigned kArrHeaderBytes = 24;

/** Encode one instruction. */
constexpr uint32_t
encode(Op op, int32_t imm = 0)
{
    return static_cast<uint32_t>(op) |
           (static_cast<uint32_t>(imm & 0xFFFFFF) << 8);
}

std::string_view opName(Op op);
std::string disassemble(const std::vector<uint32_t> &code);

} // namespace tarch::vm::js

#endif // TARCH_VM_JS_BYTECODE_H
