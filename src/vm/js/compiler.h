/**
 * @file
 * MiniScript -> MiniJS (stack) bytecode compiler.
 */

#ifndef TARCH_VM_JS_COMPILER_H
#define TARCH_VM_JS_COMPILER_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "script/ast.h"
#include "vm/js/bytecode.h"

namespace tarch::vm::js {

/**
 * A constant-pool entry: either final boxed/double bits, or a string
 * whose interned guest address is boxed at image-build time.
 */
struct Const {
    enum class Kind : uint8_t { Raw, Str } kind = Kind::Raw;
    uint64_t bits = 0;
    std::string sval;
};

struct Proto {
    std::string name;
    unsigned nparams = 0;
    unsigned nlocals = 0;  ///< frame slots (params + locals high-water)
    std::vector<uint32_t> code;
    std::vector<Const> consts;
};

struct Module {
    std::vector<Proto> protos;  ///< [0] = main
    std::vector<std::string> globalNames;
    std::vector<std::pair<unsigned, unsigned>> functionGlobals;
};

/** Compile a parsed chunk.  Throws FatalError on semantic errors. */
Module compile(const script::Chunk &chunk);

/**
 * Cross-chunk compile context for stateful sessions (docs/SERVING.md):
 * global slots and function arities carried over from previously
 * installed chunks.  Mirrors the MiniLua ChunkSeed.
 */
struct ChunkSeed {
    std::vector<std::string> globalNames;
    std::vector<std::pair<std::string, unsigned>> functionArity;
};

/** Compile a follow-on session chunk against @p seed (globalNames
    extends the seed's; protos are chunk-local, index 0 = chunk main). */
Module compile(const script::Chunk &chunk, const ChunkSeed &seed);

} // namespace tarch::vm::js

#endif // TARCH_VM_JS_COMPILER_H
