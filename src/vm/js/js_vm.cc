#include "vm/js/js_vm.h"

#include <cmath>
#include <cstring>

#include "analysis/elide.h"
#include "assembler/assembler.h"
#include "common/bitops.h"
#include "common/log.h"
#include "common/strutil.h"
#include "script/parser.h"
#include "vm/js/interp_gen.h"

namespace tarch::vm::js {

namespace {

bool
isBoxed(uint64_t v)
{
    return (v >> 51) == 0x1FFF;
}

uint8_t
tagOf(uint64_t v)
{
    return static_cast<uint8_t>((v >> 47) & 0xF);
}

uint64_t
payloadOf(uint64_t v)
{
    return v & kPayloadMask;
}

double
bitsToDouble(uint64_t bits)
{
    double d;
    std::memcpy(&d, &bits, 8);
    return d;
}

uint64_t
doubleToBits(double d)
{
    if (d != d)
        return 0x7FF8000000000000ULL;  // canonical NaN (never box-aliased)
    uint64_t bits;
    std::memcpy(&bits, &d, 8);
    return bits;
}

/** Number view of a value (int or double); fatal otherwise. */
double
toDouble(uint64_t v, const char *what)
{
    if (!isBoxed(v))
        return bitsToDouble(v);
    if (tagOf(v) == kTagInt)
        return static_cast<double>(static_cast<int32_t>(v));
    tarch_fatal("js runtime: %s expects a number (tag %u)", what, tagOf(v));
}

/** Integer view of a key (int tag or integral double). */
bool
keyAsInt(uint64_t v, int64_t &out)
{
    if (isBoxed(v)) {
        if (tagOf(v) != kTagInt)
            return false;
        out = static_cast<int32_t>(v);
        return true;
    }
    const double d = bitsToDouble(v);
    if (d == std::floor(d) && d >= -9.2e18 && d <= 9.2e18) {
        out = static_cast<int64_t>(d);
        return true;
    }
    return false;
}

/** Box an int64 as Int when it fits int32, else as a double. */
uint64_t
boxNumber(int64_t v)
{
    if (v >= INT32_MIN && v <= INT32_MAX)
        return boxInt(static_cast<int32_t>(v));
    return doubleToBits(static_cast<double>(v));
}

} // namespace

JsVm::JsVm(const std::string &source) : JsVm(source, Options()) {}

JsVm::JsVm(const std::string &source, const Options &opts)
    : opts_(opts)
{
    module_ = compile(script::parse(source));
    if (opts_.elide)
        analysis::elide::rewriteJs(module_);
    registerHostcalls();

    core::CoreConfig cfg = opts_.coreConfig;
    cfg.overflowMode = core::OverflowMode::Int32;  // NaN boxing, §4.2
    cfg.heapBase = opts_.layout.heap;
    core_ = std::make_unique<core::Core>(cfg, &hostcalls_);

    buildImage();
}

void
JsVm::buildImage()
{
    const GuestLayout &lay = opts_.layout;

    std::vector<uint64_t> code_addr(module_.protos.size());
    std::vector<uint64_t> const_addr(module_.protos.size());
    uint64_t code_cursor = lay.code;
    uint64_t const_cursor = lay.consts;
    for (size_t i = 0; i < module_.protos.size(); ++i) {
        code_addr[i] = code_cursor;
        code_cursor =
            alignUp(code_cursor + module_.protos[i].code.size() * 4, 8);
        const_addr[i] = const_cursor;
        const_cursor += module_.protos[i].consts.size() * 8;
    }

    const InterpResult interp =
        generateInterp(opts_.variant, lay, code_addr[0], const_addr[0],
                       module_.protos[0].nlocals);
    assembler::AsmOptions asm_opts;
    asm_opts.textBase = lay.interpText;
    asm_opts.dataBase = lay.interpData;
    program_ = assembler::assemble(interp.asmText, asm_opts);
    const assembler::Program &program = program_;

    for (const auto &[symbol, marker] : interp.markers)
        core_->markers().add(program.symbol(symbol), marker);
    for (const std::string &symbol : interp.guardLabels)
        guardPcs_.push_back(program.symbol(symbol));
    core_->loadProgram(program);

    mem::MainMemory &memory = core_->memory();
    for (size_t i = 0; i < module_.protos.size(); ++i) {
        const Proto &proto = module_.protos[i];
        const uint64_t desc = lay.protos + i * kProtoBytes;
        memory.write64(desc + kProtoCodePtr, code_addr[i]);
        memory.write64(desc + kProtoConstPtr, const_addr[i]);
        memory.write64(desc + kProtoNParams, proto.nparams);
        memory.write64(desc + kProtoNRegs, proto.nlocals);
        for (size_t j = 0; j < proto.code.size(); ++j)
            memory.write32(code_addr[i] + 4 * j, proto.code[j]);
        for (size_t j = 0; j < proto.consts.size(); ++j) {
            const Const &k = proto.consts[j];
            const uint64_t bits =
                k.kind == Const::Kind::Str
                    ? box(kTagStr, interner_.intern(*core_, k.sval))
                    : k.bits;
            memory.write64(const_addr[i] + 8 * j, bits);
        }
    }
    for (const auto &[global, proto_idx] : module_.functionGlobals)
        memory.write64(lay.globals + global * 8, box(kTagFun, proto_idx));
    // Unset globals read as undefined, not +0.0.
    for (size_t g = 0; g < module_.globalNames.size(); ++g) {
        const uint64_t addr = lay.globals + g * 8;
        if (memory.read64(addr) == 0)
            memory.write64(addr, box(kTagUndef, 0));
    }

    codeCursor_ = code_cursor;
    constCursor_ = const_cursor;
}

// ---------------------------------------------------------------------
// Stateful sessions (the MiniJS mirror of the LuaVm session API).

JsVm::StagedChunk
JsVm::prepareChunk(const std::string &source) const
{
    const GuestLayout &lay = opts_.layout;

    ChunkSeed seed;
    seed.globalNames = module_.globalNames;
    for (const auto &[global, proto_idx] : module_.functionGlobals)
        seed.functionArity.emplace_back(module_.globalNames[global],
                                        module_.protos[proto_idx].nparams);

    StagedChunk staged;
    staged.module = compile(script::parse(source), seed);
    staged.baseCode = codeCursor_;
    staged.baseConst = constCursor_;
    staged.baseProtos = module_.protos.size();

    uint64_t code_cursor = codeCursor_;
    uint64_t const_cursor = constCursor_;
    staged.codeAddr.resize(staged.module.protos.size());
    staged.constAddr.resize(staged.module.protos.size());
    for (size_t i = 0; i < staged.module.protos.size(); ++i) {
        staged.codeAddr[i] = code_cursor;
        code_cursor = alignUp(
            code_cursor + staged.module.protos[i].code.size() * 4, 8);
        staged.constAddr[i] = const_cursor;
        const_cursor += staged.module.protos[i].consts.size() * 8;
    }
    staged.codeEnd = code_cursor;
    staged.constEnd = const_cursor;

    const InterpResult interp = generateInterp(
        opts_.variant, lay, staged.codeAddr[0], staged.constAddr[0],
        staged.module.protos[0].nlocals);
    assembler::AsmOptions asm_opts;
    asm_opts.textBase = lay.interpText;
    asm_opts.dataBase = lay.interpData;
    staged.program = assembler::assemble(interp.asmText, asm_opts);
    staged.markers = interp.markers;
    staged.guardLabels = interp.guardLabels;
    return staged;
}

bool
JsVm::commitChunk(const StagedChunk &staged, std::string &error)
{
    const GuestLayout &lay = opts_.layout;
    if (staged.baseCode != codeCursor_ || staged.baseConst != constCursor_ ||
        staged.baseProtos != module_.protos.size()) {
        error = "stale staged chunk (prepared against other session state)";
        return false;
    }
    if (staged.codeEnd > lay.consts || staged.constEnd > lay.valueStack ||
        lay.protos +
                (staged.baseProtos + staged.module.protos.size()) *
                    kProtoBytes >
            lay.code) {
        error = "session image full";
        return false;
    }

    const unsigned proto_base = static_cast<unsigned>(staged.baseProtos);
    const size_t prev_globals = module_.globalNames.size();
    module_.globalNames = staged.module.globalNames;
    for (const Proto &proto : staged.module.protos)
        module_.protos.push_back(proto);
    for (const auto &[global, proto_idx] : staged.module.functionGlobals)
        module_.functionGlobals.emplace_back(global,
                                             proto_base + proto_idx);

    program_ = staged.program;
    guardPcs_.clear();
    core_->markers().clear();
    for (const auto &[symbol, marker] : staged.markers)
        core_->markers().add(program_.symbol(symbol), marker);
    for (const std::string &symbol : staged.guardLabels)
        guardPcs_.push_back(program_.symbol(symbol));
    core_->loadProgram(program_);

    mem::MainMemory &memory = core_->memory();
    for (size_t i = 0; i < staged.module.protos.size(); ++i) {
        const Proto &proto = staged.module.protos[i];
        const uint64_t desc =
            lay.protos + (proto_base + i) * kProtoBytes;
        memory.write64(desc + kProtoCodePtr, staged.codeAddr[i]);
        memory.write64(desc + kProtoConstPtr, staged.constAddr[i]);
        memory.write64(desc + kProtoNParams, proto.nparams);
        memory.write64(desc + kProtoNRegs, proto.nlocals);
        for (size_t j = 0; j < proto.code.size(); ++j)
            memory.write32(staged.codeAddr[i] + 4 * j, proto.code[j]);
        for (size_t j = 0; j < proto.consts.size(); ++j) {
            const Const &k = proto.consts[j];
            const uint64_t bits =
                k.kind == Const::Kind::Str
                    ? box(kTagStr, interner_.intern(*core_, k.sval))
                    : k.bits;
            memory.write64(staged.constAddr[i] + 8 * j, bits);
        }
    }
    for (const auto &[global, proto_idx] : staged.module.functionGlobals)
        memory.write64(lay.globals + global * 8,
                       box(kTagFun, proto_base + proto_idx));
    // Globals introduced by this chunk read as undefined until set;
    // earlier slots hold live session values and are left alone.
    for (size_t g = prev_globals; g < module_.globalNames.size(); ++g) {
        const uint64_t addr = lay.globals + g * 8;
        if (memory.read64(addr) == 0)
            memory.write64(addr, box(kTagUndef, 0));
    }

    core_->regs().writeGpr(isa::reg::sp, core_->config().stackTop);
    core_->trt().flush();

    codeCursor_ = staged.codeEnd;
    constCursor_ = staged.constEnd;
    ++chunkCount_;
    return true;
}

// ---------------------------------------------------------------------
// Snapshots.

void
JsVm::saveState(VmState &out) const
{
    core_->saveMachine(out.machine);
    interner_.exportTable(out.interns);
    shadow_.exportEntries(out.shadow);
    out.codeCursor = codeCursor_;
    out.constCursor = constCursor_;
    out.protoCount = module_.protos.size();
    out.chunkCount = chunkCount_;
}

bool
JsVm::restoreState(const VmState &in)
{
    if (in.protoCount != module_.protos.size() ||
        in.chunkCount != chunkCount_)
        return false;
    if (!core_->restoreMachine(in.machine))
        return false;
    interner_.importTable(in.interns);
    shadow_.importEntries(in.shadow);
    codeCursor_ = in.codeCursor;
    constCursor_ = in.constCursor;
    return true;
}

int
JsVm::run()
{
    return core_->run();
}

std::map<std::string, uint64_t>
JsVm::bytecodeProfile() const
{
    std::map<std::string, uint64_t> profile;
    const core::Markers &markers = core_->markers();
    for (size_t i = 0; i < markers.count(); ++i) {
        const std::string &name = markers.name(i);
        if (startsWith(name, "op:") &&
            name.find(":flt") == std::string::npos)
            profile[name.substr(3)] += markers.hits(i);
    }
    return profile;
}

uint64_t
JsVm::dynamicBytecodes() const
{
    return core_->markers().hitsByName("dispatch");
}

// ---------------------------------------------------------------------

void
JsVm::registerHostcalls()
{
    const auto bind = [this](unsigned id, const char *name,
                             core::HcallCost cost,
                             void (JsVm::*fn)(core::HostEnv &)) {
        hostcalls_.add(id, name, cost,
                       [this, fn](core::HostEnv &env) { (this->*fn)(env); });
    };
    bind(kHcPrint, "js.print", {100, 150}, &JsVm::hcPrint);
    bind(kHcNewArray, "js.newarray", {80, 120}, &JsVm::hcNewArray);
    bind(kHcElemGetSlow, "js.elemget", {50, 80}, &JsVm::hcElemGetSlow);
    bind(kHcElemSetSlow, "js.elemset", {60, 100}, &JsVm::hcElemSetSlow);
    bind(kHcConcat, "js.concat", {80, 120}, &JsVm::hcConcat);
    bind(kHcFloor, "js.floor", {20, 30}, &JsVm::hcFloor);
    bind(kHcSubstr, "js.substr", {60, 90}, &JsVm::hcSubstr);
    bind(kHcStrChar, "js.strchar", {40, 60}, &JsVm::hcStrChar);
    bind(kHcAbs, "js.abs", {20, 30}, &JsVm::hcAbs);
    bind(kHcFmod, "js.fmod", {30, 45}, &JsVm::hcFmod);
    hostcalls_.add(kHcError, "js.error", {1, 1}, [](core::HostEnv &env) {
        tarch_fatal("js runtime error %llu",
                    static_cast<unsigned long long>(
                        env.regs.gpr(isa::reg::a0).v));
    });
}

void
JsVm::hcPrint(core::HostEnv &env)
{
    const uint64_t v = env.memory.read64(env.regs.gpr(isa::reg::a0).v);
    std::string text;
    if (!isBoxed(v)) {
        text = strformat("%.14g", bitsToDouble(v));
    } else {
        switch (tagOf(v)) {
          case kTagInt:
            text = strformat("%d", static_cast<int32_t>(v));
            break;
          case kTagBool: text = payloadOf(v) ? "true" : "false"; break;
          case kTagNull: text = "null"; break;
          case kTagUndef: text = "undefined"; break;
          case kTagStr: text = Interner::read(*core_, payloadOf(v)); break;
          case kTagObj:
            text = strformat("[object Array 0x%llx]",
                             static_cast<unsigned long long>(payloadOf(v)));
            break;
          case kTagFun:
            text = strformat("function %llu",
                             static_cast<unsigned long long>(payloadOf(v)));
            break;
          default:
            text = strformat("<tag %u>", tagOf(v));
        }
    }
    env.output += text;
    env.output += '\n';
    // print() evaluates to undefined.
    env.memory.write64(env.regs.gpr(isa::reg::a0).v, box(kTagUndef, 0));
}

void
JsVm::hcNewArray(core::HostEnv &env)
{
    const uint64_t dst = env.regs.gpr(isa::reg::a0).v;
    const uint64_t hdr = core_->allocHeap(kArrHeaderBytes);
    env.memory.write64(dst, box(kTagObj, hdr));
}

namespace {

/** Grow an array to cover index @p want, filling new slots with
 *  undefined and migrating shadow keys that fall inside. */
void
growArray(core::Core &core, ShadowHash &shadow, uint64_t hdr, int64_t want)
{
    mem::MainMemory &memory = core.memory();
    const uint64_t old_cap = memory.read64(hdr + kArrCap);
    uint64_t new_cap = old_cap ? old_cap : 8;
    while (new_cap <= static_cast<uint64_t>(want))
        new_cap *= 2;
    const uint64_t new_elems = core.allocHeap(new_cap * 8);
    const uint64_t old_elems = memory.read64(hdr + kArrElemsPtr);
    for (uint64_t i = 0; i < new_cap; ++i) {
        const uint64_t value = i < old_cap
                                   ? memory.read64(old_elems + i * 8)
                                   : box(kTagUndef, 0);
        memory.write64(new_elems + i * 8, value);
    }
    memory.write64(hdr + kArrElemsPtr, new_elems);
    memory.write64(hdr + kArrCap, new_cap);
    for (int64_t k = static_cast<int64_t>(old_cap);
         k < static_cast<int64_t>(new_cap); ++k) {
        const ShadowHash::Slot s =
            shadow.get(hdr, false, static_cast<uint64_t>(k));
        if (s.tag != 0) {
            memory.write64(new_elems + k * 8, s.value);
            shadow.set(hdr, false, static_cast<uint64_t>(k), {});
            const uint64_t len = memory.read64(hdr + kArrLen);
            if (static_cast<uint64_t>(k) > len)
                memory.write64(hdr + kArrLen, k);
        }
    }
}

} // namespace

void
JsVm::hcElemGetSlow(core::HostEnv &env)
{
    const uint64_t sp = env.regs.gpr(isa::reg::a0).v;
    const uint64_t obj = env.memory.read64(sp - 8);
    const uint64_t key = env.memory.read64(sp);
    const uint64_t hdr = payloadOf(obj);
    int64_t ikey;
    uint64_t result;
    if (keyAsInt(key, ikey)) {
        const uint64_t cap = env.memory.read64(hdr + kArrCap);
        if (ikey >= 0 && static_cast<uint64_t>(ikey) < cap) {
            result = env.memory.read64(
                env.memory.read64(hdr + kArrElemsPtr) + ikey * 8);
        } else {
            const ShadowHash::Slot s =
                shadow_.get(hdr, false, static_cast<uint64_t>(ikey));
            result = s.tag ? s.value : box(kTagUndef, 0);
        }
    } else if (isBoxed(key) && tagOf(key) == kTagStr) {
        const ShadowHash::Slot s = shadow_.get(hdr, true, payloadOf(key));
        result = s.tag ? s.value : box(kTagUndef, 0);
    } else {
        tarch_fatal("js runtime: invalid element key");
    }
    env.memory.write64(sp - 8, result);
}

void
JsVm::hcElemSetSlow(core::HostEnv &env)
{
    const uint64_t sp = env.regs.gpr(isa::reg::a0).v;
    const uint64_t obj = env.memory.read64(sp - 16);
    const uint64_t key = env.memory.read64(sp - 8);
    const uint64_t val = env.memory.read64(sp);
    const uint64_t hdr = payloadOf(obj);
    int64_t ikey;
    if (keyAsInt(key, ikey)) {
        const uint64_t cap = env.memory.read64(hdr + kArrCap);
        if (ikey >= 0 && static_cast<uint64_t>(ikey) <= 2 * cap + 8) {
            if (static_cast<uint64_t>(ikey) >= cap)
                growArray(*core_, shadow_, hdr, ikey);
            env.memory.write64(
                env.memory.read64(hdr + kArrElemsPtr) + ikey * 8, val);
            const uint64_t len = env.memory.read64(hdr + kArrLen);
            if (static_cast<uint64_t>(ikey) > len)
                env.memory.write64(hdr + kArrLen, ikey);
            return;
        }
        shadow_.set(hdr, false, static_cast<uint64_t>(ikey), {val, 1});
        return;
    }
    if (isBoxed(key) && tagOf(key) == kTagStr) {
        shadow_.set(hdr, true, payloadOf(key), {val, 1});
        return;
    }
    tarch_fatal("js runtime: invalid element key");
}

void
JsVm::hcConcat(core::HostEnv &env)
{
    const uint64_t sp = env.regs.gpr(isa::reg::a0).v;
    const auto stringify = [&](uint64_t v) -> std::string {
        if (!isBoxed(v))
            return strformat("%.14g", bitsToDouble(v));
        switch (tagOf(v)) {
          case kTagStr: return Interner::read(*core_, payloadOf(v));
          case kTagInt:
            return strformat("%d", static_cast<int32_t>(v));
          default:
            tarch_fatal("js runtime: cannot concatenate tag %u", tagOf(v));
        }
    };
    const std::string text = stringify(env.memory.read64(sp - 8)) +
                             stringify(env.memory.read64(sp));
    env.memory.write64(sp - 8,
                       box(kTagStr, interner_.intern(*core_, text)));
}

void
JsVm::hcFloor(core::HostEnv &env)
{
    const uint64_t sp = env.regs.gpr(isa::reg::a0).v;
    const uint64_t v = env.memory.read64(sp);
    uint64_t result;
    if (isBoxed(v) && tagOf(v) == kTagInt) {
        result = v;
    } else {
        const double d = std::floor(toDouble(v, "floor"));
        result = (d >= INT32_MIN && d <= INT32_MAX)
                     ? boxInt(static_cast<int32_t>(d))
                     : doubleToBits(d);
    }
    env.memory.write64(sp, result);
}

void
JsVm::hcSubstr(core::HostEnv &env)
{
    const uint64_t sp = env.regs.gpr(isa::reg::a0).v;
    const uint64_t sv = env.memory.read64(sp - 16);
    const uint64_t iv = env.memory.read64(sp - 8);
    const uint64_t jv = env.memory.read64(sp);
    if (!isBoxed(sv) || tagOf(sv) != kTagStr)
        tarch_fatal("js runtime: substr expects a string");
    int64_t i, j;
    if (!keyAsInt(iv, i) || !keyAsInt(jv, j))
        tarch_fatal("js runtime: substr expects integer indexes");
    const std::string text = Interner::read(*core_, payloadOf(sv));
    const int64_t len = static_cast<int64_t>(text.size());
    if (i < 0)
        i = len + i + 1;
    if (j < 0)
        j = len + j + 1;
    if (i < 1)
        i = 1;
    if (j > len)
        j = len;
    std::string sub;
    if (i <= j)
        sub = text.substr(i - 1, j - i + 1);
    env.memory.write64(sp - 16,
                       box(kTagStr, interner_.intern(*core_, sub)));
}

void
JsVm::hcStrChar(core::HostEnv &env)
{
    const uint64_t sp = env.regs.gpr(isa::reg::a0).v;
    int64_t c;
    if (!keyAsInt(env.memory.read64(sp), c))
        tarch_fatal("js runtime: strchar expects an integer");
    const std::string text(1, static_cast<char>(c));
    env.memory.write64(sp, box(kTagStr, interner_.intern(*core_, text)));
}

void
JsVm::hcAbs(core::HostEnv &env)
{
    const uint64_t sp = env.regs.gpr(isa::reg::a0).v;
    const uint64_t v = env.memory.read64(sp);
    uint64_t result;
    if (isBoxed(v) && tagOf(v) == kTagInt) {
        const int64_t x = static_cast<int32_t>(v);
        result = boxNumber(x < 0 ? -x : x);
    } else {
        result = doubleToBits(std::fabs(toDouble(v, "abs")));
    }
    env.memory.write64(sp, result);
}

void
JsVm::hcFmod(core::HostEnv &env)
{
    const uint64_t sp = env.regs.gpr(isa::reg::a0).v;
    const double a = toDouble(env.memory.read64(sp - 8), "%");
    const double b = toDouble(env.memory.read64(sp), "%");
    double r = std::fmod(a, b);
    if (r != 0.0 && ((r < 0.0) != (b < 0.0)))
        r += b;  // floored modulo (MiniScript semantics)
    env.memory.write64(sp - 8, doubleToBits(r));
}

} // namespace tarch::vm::js
