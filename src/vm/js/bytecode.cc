#include "vm/js/bytecode.h"

#include "common/strutil.h"

namespace tarch::vm::js {

namespace {

constexpr std::string_view kNames[kNumOps] = {
    "PUSHK",    "PUSHINT",  "PUSHUNDEF", "DUP",       "POP",
    "GETLOCAL", "SETLOCAL", "GETGLOBAL", "SETGLOBAL", "GETELEM",
    "SETELEM",  "NEWARRAY", "ADD",       "SUB",       "MUL",
    "DIV",      "IDIV",     "MOD",       "NEG",       "NOT",
    "LEN",      "CONCAT",   "EQ",        "NE",        "LT",
    "LE",       "JUMP",     "JUMPF",     "JUMPT",     "CALL",
    "RETURN",   "BUILTIN",  "NOP",       "ADD_II",    "SUB_II",
    "MUL_II",   "ADD_DD",   "SUB_DD",    "MUL_DD",    "GETELEM_E",
    "SETELEM_E",
};

} // namespace

std::string_view
opName(Op op)
{
    return kNames[static_cast<unsigned>(op)];
}

std::string
disassemble(const std::vector<uint32_t> &code)
{
    std::string out;
    for (size_t i = 0; i < code.size(); ++i) {
        const uint32_t w = code[i];
        const Op op = static_cast<Op>(w & 0xFF);
        const int32_t imm = static_cast<int32_t>(w) >> 8;
        switch (op) {
          case Op::JUMP:
          case Op::JUMPF:
          case Op::JUMPT:
            out += strformat("%4zu  %-10s %d -> %zu\n", i,
                             std::string(opName(op)).c_str(),
                             static_cast<int>(imm),
                             i + 1 + static_cast<int64_t>(imm));
            break;
          default:
            out += strformat("%4zu  %-10s %d\n", i,
                             std::string(opName(op)).c_str(),
                             static_cast<int>(imm));
        }
    }
    return out;
}

} // namespace tarch::vm::js
