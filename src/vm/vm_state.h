/**
 * @file
 * Complete VM state captured by the snapshot subsystem (docs/SNAPSHOT.md):
 * the simulated machine plus the host-side runtime services (string
 * interner, shadow hash tables) and the session image cursors.
 *
 * A VmState is only meaningful against a VM rebuilt from the same compile
 * inputs (source chunks, variant, layout, core configuration): the
 * program-derived structures are reconstructed by the rebuild, then
 * restoreState() overwrites every piece of mutable state, after which
 * continuing the run is bit-identical to never having snapshotted.
 */

#ifndef TARCH_VM_VM_STATE_H
#define TARCH_VM_VM_STATE_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/core.h"
#include "vm/runtime.h"

namespace tarch::vm {

struct VmState {
    core::MachineState machine;
    std::vector<std::pair<std::string, uint64_t>> interns;
    std::vector<ShadowHash::Entry> shadow;
    /** Session image cursors (next free bytecode / constant byte). */
    uint64_t codeCursor = 0;
    uint64_t constCursor = 0;
    /** Shape checks for restoreState: the rebuilt VM must have replayed
        the same chunk sequence. */
    uint64_t protoCount = 0;
    uint64_t chunkCount = 0;
};

} // namespace tarch::vm

#endif // TARCH_VM_VM_STATE_H
