/**
 * @file
 * Tiny assembly-text emitter shared by the interpreter generators.
 */

#ifndef TARCH_VM_ASM_EMITTER_H
#define TARCH_VM_ASM_EMITTER_H

#include <cstdarg>
#include <string>

#include "common/strutil.h"

namespace tarch::vm {

class AsmEmitter
{
  public:
    /** Emit one indented instruction line (printf-style). */
    void
    o(const char *fmt, ...) __attribute__((format(printf, 2, 3)))
    {
        va_list ap;
        va_start(ap, fmt);
        out_ += "    " + vstrformat(fmt, ap) + "\n";
        va_end(ap);
    }

    void l(const std::string &label) { out_ += label + ":\n"; }
    void raw(const std::string &text) { out_ += text; }

    /** A program-unique label built from @p stem. */
    std::string
    fresh(const char *stem)
    {
        return strformat("L%s_%d", stem, counter_++);
    }

    std::string take() { return std::move(out_); }

  private:
    std::string out_;
    int counter_ = 0;
};

} // namespace tarch::vm

#endif // TARCH_VM_ASM_EMITTER_H
