#include "vm/runtime.h"

#include "common/bitops.h"
#include "common/strutil.h"

namespace tarch::vm {

uint64_t
allocGuest(core::Core &core, uint64_t bytes)
{
    return core.allocHeap(bytes);
}

std::string
formatDouble(double value)
{
    return strformat("%.14g", value);
}

uint64_t
Interner::intern(core::Core &core, const std::string &text)
{
    const auto it = table_.find(text);
    if (it != table_.end())
        return it->second;
    const uint64_t addr = allocGuest(core, 8 + text.size() + 1);
    core.memory().write64(addr, text.size());
    if (!text.empty())
        core.memory().writeBlock(addr + 8, text.data(), text.size());
    core.memory().write8(addr + 8 + text.size(), 0);
    table_[text] = addr;
    return addr;
}

std::string
Interner::read(core::Core &core, uint64_t addr)
{
    const uint64_t len = core.memory().read64(addr);
    std::string out(len, '\0');
    if (len)
        core.memory().readBlock(addr + 8, out.data(), len);
    return out;
}

} // namespace tarch::vm
