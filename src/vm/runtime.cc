#include "vm/runtime.h"

#include <algorithm>

#include "common/bitops.h"
#include "common/strutil.h"

namespace tarch::vm {

uint64_t
allocGuest(core::Core &core, uint64_t bytes)
{
    return core.allocHeap(bytes);
}

std::string
formatDouble(double value)
{
    return strformat("%.14g", value);
}

uint64_t
Interner::intern(core::Core &core, const std::string &text)
{
    const auto it = table_.find(text);
    if (it != table_.end())
        return it->second;
    const uint64_t addr = allocGuest(core, 8 + text.size() + 1);
    core.memory().write64(addr, text.size());
    if (!text.empty())
        core.memory().writeBlock(addr + 8, text.data(), text.size());
    core.memory().write8(addr + 8 + text.size(), 0);
    table_[text] = addr;
    return addr;
}

std::string
Interner::read(core::Core &core, uint64_t addr)
{
    const uint64_t len = core.memory().read64(addr);
    std::string out(len, '\0');
    if (len)
        core.memory().readBlock(addr + 8, out.data(), len);
    return out;
}

void
Interner::exportTable(
    std::vector<std::pair<std::string, uint64_t>> &out) const
{
    out.assign(table_.begin(), table_.end());
    std::sort(out.begin(), out.end());
}

void
Interner::importTable(
    const std::vector<std::pair<std::string, uint64_t>> &in)
{
    table_.clear();
    table_.insert(in.begin(), in.end());
}

void
ShadowHash::exportEntries(std::vector<Entry> &out) const
{
    out.clear();
    out.reserve(map_.size());
    for (const auto &[key, slot] : map_)
        out.push_back({key.first, key.second, slot.value, slot.tag});
    std::sort(out.begin(), out.end(), [](const Entry &a, const Entry &b) {
        return a.packedTable != b.packedTable ? a.packedTable < b.packedTable
                                              : a.key < b.key;
    });
}

void
ShadowHash::importEntries(const std::vector<Entry> &in)
{
    map_.clear();
    for (const Entry &e : in)
        map_[{e.packedTable, e.key}] = {e.value, e.tag};
}

} // namespace tarch::vm
