/**
 * @file
 * The three ISA variants every interpreter is generated for.
 */

#ifndef TARCH_VM_VARIANT_H
#define TARCH_VM_VARIANT_H

#include <string_view>

namespace tarch::vm {

enum class Variant {
    Baseline,     ///< software type guards (paper Figure 1c)
    Typed,        ///< Typed Architecture instructions (paper Figure 3)
    CheckedLoad,  ///< settype/chklb adaptation (paper Section 7.1)
};

constexpr std::string_view
variantName(Variant v)
{
    switch (v) {
      case Variant::Baseline: return "baseline";
      case Variant::Typed: return "typed";
      case Variant::CheckedLoad: return "checked-load";
    }
    return "?";
}

} // namespace tarch::vm

#endif // TARCH_VM_VARIANT_H
