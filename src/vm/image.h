/**
 * @file
 * Guest memory layout shared by the VM image builders.  The interpreter
 * text sits at the bottom; its private data (dispatch tables) below the
 * VM structures; the script-visible structures in fixed regions above;
 * the host bump allocator serves tables and strings from the heap.
 */

#ifndef TARCH_VM_IMAGE_H
#define TARCH_VM_IMAGE_H

#include <cstdint>

namespace tarch::vm {

struct GuestLayout {
    uint64_t interpText = 0x0000'1000;   ///< assembler textBase
    uint64_t interpData = 0x0005'0000;   ///< assembler dataBase
    uint64_t globals = 0x0010'0000;      ///< global variable slots
    uint64_t protos = 0x0020'0000;       ///< function descriptors
    uint64_t code = 0x0030'0000;         ///< bytecode arrays
    uint64_t consts = 0x0050'0000;       ///< constant pools
    uint64_t valueStack = 0x0080'0000;   ///< VM value stack
    uint64_t callStack = 0x00F0'0000;    ///< call-info frames
    uint64_t heap = 0x0100'0000;         ///< tables, strings (bump)
};

/** Per-proto descriptor as stored in guest memory at layout.protos. */
constexpr unsigned kProtoCodePtr = 0;
constexpr unsigned kProtoConstPtr = 8;
constexpr unsigned kProtoNParams = 16;
constexpr unsigned kProtoNRegs = 24;
constexpr unsigned kProtoBytes = 32;

} // namespace tarch::vm

#endif // TARCH_VM_IMAGE_H
