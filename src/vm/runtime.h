/**
 * @file
 * Host-side VM runtime services shared by MiniLua and MiniJS: the guest
 * bump allocator, the string interner, and the shadow hash tables used
 * for string-keyed table parts.
 *
 * Design note (see DESIGN.md): these model the native C runtime the
 * paper's interpreters link against.  All are invoked through hcall with
 * a fixed charged cost that is identical in every ISA variant, so they
 * only contribute a variant-independent serial fraction.
 */

#ifndef TARCH_VM_RUNTIME_H
#define TARCH_VM_RUNTIME_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/core.h"
#include "vm/image.h"

namespace tarch::vm {

/** Guest-heap string object: {len: u64, bytes..., NUL}. */
class Interner
{
  public:
    /**
     * Intern @p text into the guest heap (idempotent).
     * @return guest address of the string object
     */
    uint64_t intern(core::Core &core, const std::string &text);

    /** Read back the body of a string object at @p addr. */
    static std::string read(core::Core &core, uint64_t addr);

    /** (text, guest address) pairs sorted by text, for VM snapshots. */
    void exportTable(
        std::vector<std::pair<std::string, uint64_t>> &out) const;

    /** Replace the table with previously exported contents. */
    void
    importTable(const std::vector<std::pair<std::string, uint64_t>> &in);

  private:
    std::unordered_map<std::string, uint64_t> table_;
};

/** Bump-allocate @p bytes of zeroed guest heap (8-byte aligned). */
uint64_t allocGuest(core::Core &core, uint64_t bytes);

/**
 * Shadow storage for the hash parts of guest tables: maps
 * (table address, key) -> 16 bytes of (value, tag).  Integer and
 * string-pointer keys live in disjoint key spaces.
 */
class ShadowHash
{
  public:
    struct Slot {
        uint64_t value = 0;
        uint8_t tag = 0;
    };

    void
    set(uint64_t table, bool str_key, uint64_t key, Slot slot)
    {
        map_[pack(table, str_key, key)] = slot;
    }

    Slot
    get(uint64_t table, bool str_key, uint64_t key) const
    {
        const auto it = map_.find(pack(table, str_key, key));
        return it == map_.end() ? Slot{} : it->second;
    }

    size_t size() const { return map_.size(); }

    /** One exported hash slot; packedTable is table*2 + strKey. */
    struct Entry {
        uint64_t packedTable = 0;
        uint64_t key = 0;
        uint64_t value = 0;
        uint8_t tag = 0;
    };

    /** Entries sorted by (packedTable, key), for VM snapshots. */
    void exportEntries(std::vector<Entry> &out) const;

    /** Replace the map with previously exported contents. */
    void importEntries(const std::vector<Entry> &in);

  private:
    struct KeyHash {
        size_t
        operator()(const std::pair<uint64_t, uint64_t> &k) const
        {
            return std::hash<uint64_t>()(k.first * 0x9E3779B97F4A7C15ULL ^
                                         k.second);
        }
    };

    static std::pair<uint64_t, uint64_t>
    pack(uint64_t table, bool str_key, uint64_t key)
    {
        return {table * 2 + (str_key ? 1 : 0), key};
    }

    std::unordered_map<std::pair<uint64_t, uint64_t>, Slot, KeyHash> map_;
};

/** Format a double the way Lua's "%.14g" does. */
std::string formatDouble(double value);

} // namespace tarch::vm

#endif // TARCH_VM_RUNTIME_H
