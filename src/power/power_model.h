/**
 * @file
 * Analytic area/power model reproducing the structure of paper Table 8
 * (Synopsys DC + TSMC 40nm synthesis of Rocket with and without the
 * Typed Architecture extension).
 *
 * We do not have the TSMC libraries or the RTL, so the *baseline* module
 * breakdown is taken from the paper's published baseline column (it
 * characterizes Rocket, not the contribution).  The *added* structures
 * are estimated from first principles at a 40nm node and reported the
 * same way the paper reports them: per-module area/power for baseline
 * vs. Typed Architecture, plus EDP computed from measured cycle counts.
 */

#ifndef TARCH_POWER_POWER_MODEL_H
#define TARCH_POWER_POWER_MODEL_H

#include <string>
#include <vector>

namespace tarch::power {

struct ModuleCost {
    std::string name;
    int depth = 0;        ///< indentation level in the hierarchy
    double areaMm2 = 0.0;
    double powerMw = 0.0;
};

struct SynthesisReport {
    std::vector<ModuleCost> baseline;
    std::vector<ModuleCost> typedArch;

    double totalArea(bool typed_arch) const;
    double totalPower(bool typed_arch) const;
    double areaOverhead() const;   ///< fractional increase
    double powerOverhead() const;
};

/** 40nm per-structure cost assumptions for the added hardware. */
struct TypedHardwareCosts {
    // Unified RF: 32 registers x (8-bit tag + F/I bit) flip-flops.
    double rfTagBits = 32 * 9;
    double areaPerFfBitMm2 = 3.2e-6;   ///< FF + local routing, 40nm
    // Type Rule Table: 8-entry CAM, 26-bit key+data per entry.
    double trtEntries = 8;
    double trtBitsPerEntry = 26;
    double areaPerCamBitMm2 = 6.0e-6;
    // Tag extract/insert: 64-bit shifter + mask + NaN detect + muxes.
    double extractorGates = 4200;
    double areaPerGateMm2 = 0.9e-6;
    // Control/special registers and pipeline plumbing.
    double plumbingAreaMm2 = 0.0035;
    // Power scales with area at the core's baseline power density,
    // plus switching activity on the tag datapath.
    double activityFactor = 0.95;
};

/**
 * Build the Table 8 report.
 * @param costs structure-cost assumptions (defaults approximate 40nm)
 */
SynthesisReport buildTable8(const TypedHardwareCosts &costs = {});

/**
 * Energy-delay-product improvement from a speedup and a power overhead:
 * EDP' / EDP = (P'/P) / speedup^2; returns 1 - that ratio.
 */
double edpImprovement(double speedup, double power_ratio);

} // namespace tarch::power

#endif // TARCH_POWER_POWER_MODEL_H
