#include "power/power_model.h"

namespace tarch::power {

namespace {

/** Rocket baseline breakdown (paper Table 8, baseline columns). */
const ModuleCost kBaseline[] = {
    {"Top", 0, 0.684, 18.72},
    {"Tile", 1, 0.627, 12.60},
    {"Core", 2, 0.038, 2.22},
    {"CSR", 3, 0.008, 0.57},
    {"Div", 3, 0.006, 0.17},
    {"FPU", 2, 0.089, 3.18},
    {"ICache", 2, 0.251, 3.49},
    {"DCache", 2, 0.249, 3.71},
    {"Uncore", 1, 0.046, 4.75},
    {"Wrapping", 1, 0.011, 1.38},
};

} // namespace

double
SynthesisReport::totalArea(bool typed_arch) const
{
    const auto &modules = typed_arch ? typedArch : baseline;
    return modules.empty() ? 0.0 : modules.front().areaMm2;
}

double
SynthesisReport::totalPower(bool typed_arch) const
{
    const auto &modules = typed_arch ? typedArch : baseline;
    return modules.empty() ? 0.0 : modules.front().powerMw;
}

double
SynthesisReport::areaOverhead() const
{
    return totalArea(true) / totalArea(false) - 1.0;
}

double
SynthesisReport::powerOverhead() const
{
    return totalPower(true) / totalPower(false) - 1.0;
}

SynthesisReport
buildTable8(const TypedHardwareCosts &costs)
{
    SynthesisReport report;
    for (const ModuleCost &m : kBaseline)
        report.baseline.push_back(m);

    // Added structures, all inside the Core module.
    const double rf_area = costs.rfTagBits * costs.areaPerFfBitMm2;
    const double trt_area = costs.trtEntries * costs.trtBitsPerEntry *
                            costs.areaPerCamBitMm2;
    const double extract_area = costs.extractorGates * costs.areaPerGateMm2;
    const double added_core_area =
        rf_area + trt_area + extract_area + costs.plumbingAreaMm2;

    // Power: added area switching at the core's power density times an
    // activity factor (tags toggle with the datapath).
    const double core_density = 2.22 / 0.038;  // mW per mm^2 (baseline)
    const double added_core_power =
        added_core_area * core_density * costs.activityFactor;

    // Small secondary effects mirrored from the paper's typed column:
    // CSR grows slightly (new special registers); the D-cache write path
    // widens marginally; FPU power shifts with the shared datapath.
    const double csr_area_delta = 0.001;
    const double csr_power_delta = 0.03;
    const double dcache_area_delta = 0.001;
    const double dcache_power_delta = 0.11;
    const double fpu_power_delta = 0.05;

    for (const ModuleCost &m : kBaseline) {
        ModuleCost t = m;
        if (t.name == "Core") {
            t.areaMm2 += added_core_area;
            t.powerMw += added_core_power;
        } else if (t.name == "CSR") {
            t.areaMm2 += csr_area_delta;
            t.powerMw += csr_power_delta;
        } else if (t.name == "DCache") {
            t.areaMm2 += dcache_area_delta;
            t.powerMw += dcache_power_delta;
        } else if (t.name == "FPU") {
            t.powerMw += fpu_power_delta;
        }
        report.typedArch.push_back(t);
    }
    // Roll the deltas up the hierarchy (Core/CSR/Div under Tile; Tile,
    // Uncore, Wrapping under Top).
    const double tile_area_delta =
        added_core_area + csr_area_delta + dcache_area_delta;
    const double tile_power_delta = added_core_power + csr_power_delta +
                                    dcache_power_delta + fpu_power_delta;
    for (ModuleCost &t : report.typedArch) {
        if (t.name == "Tile") {
            t.areaMm2 += tile_area_delta;
            t.powerMw += tile_power_delta;
        } else if (t.name == "Top") {
            t.areaMm2 += tile_area_delta;
            t.powerMw += tile_power_delta;
        }
    }
    return report;
}

double
edpImprovement(double speedup, double power_ratio)
{
    return 1.0 - power_ratio / (speedup * speedup);
}

} // namespace tarch::power
