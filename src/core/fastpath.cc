/**
 * @file
 * The predecoded fast path: block builder, per-opcode handlers, and the
 * block executor Core::stepBlock (docs/FASTPATH.md).
 *
 * BIT-IDENTITY CONTRACT: every handler body below mirrors the matching
 * case of Core::step() in core.cc — same state writes, same emit()
 * sites, same timing calls, in the same order.  Any change to a step()
 * case must be replayed here; tests/test_fastpath.cc and the fuzz
 * oracle's exec-mode axis enforce the contract over all 26 CoreStats
 * counters and the final architectural state.
 */

#include <array>
#include <cmath>
#include <cstring>
#include <utility>

#include "common/log.h"
#include "core/core.h"

namespace tarch::core {

using isa::Instr;
using isa::Opcode;

namespace {

// Mirrors of the helpers in core.cc's anonymous namespace.

double
asDouble(uint64_t bits)
{
    double d;
    std::memcpy(&d, &bits, 8);
    return d;
}

uint64_t
asBits(double d)
{
    if (d != d)
        return 0x7FF8000000000000ULL;
    uint64_t bits;
    std::memcpy(&bits, &d, 8);
    return bits;
}

int64_t
sext32(uint64_t v)
{
    return static_cast<int64_t>(static_cast<int32_t>(v));
}

constexpr typed::RuleOp
ruleOpFor(Opcode op)
{
    switch (op) {
      case Opcode::XADD: return typed::RuleOp::Add;
      case Opcode::XSUB: return typed::RuleOp::Sub;
      case Opcode::XMUL: return typed::RuleOp::Mul;
      default: return typed::RuleOp::Chk;
    }
}

/** True for opcodes that end a straight-line decoded run: control flow,
    type checks that can redirect, typed-config writes, and services. */
constexpr bool
endsBlock(Opcode op)
{
    switch (op) {
      case Opcode::BEQ:
      case Opcode::BNE:
      case Opcode::BLT:
      case Opcode::BGE:
      case Opcode::BLTU:
      case Opcode::BGEU:
      case Opcode::JAL:
      case Opcode::JALR:
      case Opcode::XADD:
      case Opcode::XSUB:
      case Opcode::XMUL:
      case Opcode::TCHK:
      case Opcode::THDL:
      case Opcode::CHKLB:
      case Opcode::CHKLH:
      case Opcode::CHKLD:
      case Opcode::SETOFFSET:
      case Opcode::SETMASK:
      case Opcode::SETSHIFT:
      case Opcode::SET_TRT:
      case Opcode::FLUSH_TRT:
      case Opcode::SYS:
      case Opcode::HCALL:
      case Opcode::HALT:
        return true;
      default:
        return false;
    }
}

} // namespace

/** Friend of Core: the per-opcode handler bodies. */
struct FastPathExec {
    template <Opcode OP>
    static void
    exec(Core &c, const fastpath::DecodedInstr &r, uint64_t &next_pc)
    {
        const Instr &instr = r.instr;
        [[maybe_unused]] const uint64_t a = c.regs_.gpr(instr.rs1).v;
        [[maybe_unused]] const uint64_t b = c.regs_.gpr(instr.rs2).v;
        [[maybe_unused]] const int64_t sa = static_cast<int64_t>(a);
        [[maybe_unused]] const int64_t sb = static_cast<int64_t>(b);

        if constexpr (OP == Opcode::ADD) {
            c.regs_.writeGpr(instr.rd, a + b);
        } else if constexpr (OP == Opcode::SUB) {
            c.regs_.writeGpr(instr.rd, a - b);
        } else if constexpr (OP == Opcode::MUL) {
            c.regs_.writeGpr(instr.rd, a * b);
        } else if constexpr (OP == Opcode::MULH) {
            c.regs_.writeGpr(instr.rd,
                             static_cast<uint64_t>(
                                 (static_cast<__int128>(sa) * sb) >> 64));
        } else if constexpr (OP == Opcode::DIV) {
            c.regs_.writeGpr(instr.rd,
                             b == 0 ? ~0ULL
                             : (sa == INT64_MIN && sb == -1)
                                 ? static_cast<uint64_t>(INT64_MIN)
                                 : static_cast<uint64_t>(sa / sb));
        } else if constexpr (OP == Opcode::DIVU) {
            c.regs_.writeGpr(instr.rd, b == 0 ? ~0ULL : a / b);
        } else if constexpr (OP == Opcode::REM) {
            c.regs_.writeGpr(instr.rd,
                             b == 0 ? a
                             : (sa == INT64_MIN && sb == -1)
                                 ? 0
                                 : static_cast<uint64_t>(sa % sb));
        } else if constexpr (OP == Opcode::REMU) {
            c.regs_.writeGpr(instr.rd, b == 0 ? a : a % b);
        } else if constexpr (OP == Opcode::AND) {
            c.regs_.writeGpr(instr.rd, a & b);
        } else if constexpr (OP == Opcode::OR) {
            c.regs_.writeGpr(instr.rd, a | b);
        } else if constexpr (OP == Opcode::XOR) {
            c.regs_.writeGpr(instr.rd, a ^ b);
        } else if constexpr (OP == Opcode::SLL) {
            c.regs_.writeGpr(instr.rd, a << (b & 63));
        } else if constexpr (OP == Opcode::SRL) {
            c.regs_.writeGpr(instr.rd, a >> (b & 63));
        } else if constexpr (OP == Opcode::SRA) {
            c.regs_.writeGpr(instr.rd,
                             static_cast<uint64_t>(sa >> (b & 63)));
        } else if constexpr (OP == Opcode::SLT) {
            c.regs_.writeGpr(instr.rd, sa < sb ? 1 : 0);
        } else if constexpr (OP == Opcode::SLTU) {
            c.regs_.writeGpr(instr.rd, a < b ? 1 : 0);
        } else if constexpr (OP == Opcode::ADDW) {
            c.regs_.writeGpr(instr.rd,
                             static_cast<uint64_t>(sext32(a + b)));
        } else if constexpr (OP == Opcode::SUBW) {
            c.regs_.writeGpr(instr.rd,
                             static_cast<uint64_t>(sext32(a - b)));
        } else if constexpr (OP == Opcode::MULW) {
            c.regs_.writeGpr(instr.rd,
                             static_cast<uint64_t>(sext32(a * b)));
        } else if constexpr (OP == Opcode::DIVW) {
            const int32_t x = static_cast<int32_t>(a);
            const int32_t y = static_cast<int32_t>(b);
            int32_t q;
            if (y == 0)
                q = -1;
            else if (x == INT32_MIN && y == -1)
                q = INT32_MIN;
            else
                q = x / y;
            c.regs_.writeGpr(
                instr.rd, static_cast<uint64_t>(static_cast<int64_t>(q)));
        } else if constexpr (OP == Opcode::REMW) {
            const int32_t x = static_cast<int32_t>(a);
            const int32_t y = static_cast<int32_t>(b);
            int32_t rem;
            if (y == 0)
                rem = x;
            else if (x == INT32_MIN && y == -1)
                rem = 0;
            else
                rem = x % y;
            c.regs_.writeGpr(
                instr.rd,
                static_cast<uint64_t>(static_cast<int64_t>(rem)));
        } else if constexpr (OP == Opcode::ADDI) {
            c.regs_.writeGpr(instr.rd,
                             a + static_cast<uint64_t>(instr.imm));
        } else if constexpr (OP == Opcode::ANDI) {
            c.regs_.writeGpr(instr.rd,
                             a & static_cast<uint64_t>(instr.imm));
        } else if constexpr (OP == Opcode::ORI) {
            c.regs_.writeGpr(instr.rd,
                             a | static_cast<uint64_t>(instr.imm));
        } else if constexpr (OP == Opcode::XORI) {
            c.regs_.writeGpr(instr.rd,
                             a ^ static_cast<uint64_t>(instr.imm));
        } else if constexpr (OP == Opcode::SLLI) {
            c.regs_.writeGpr(instr.rd, a << (instr.imm & 63));
        } else if constexpr (OP == Opcode::SRLI) {
            c.regs_.writeGpr(instr.rd, a >> (instr.imm & 63));
        } else if constexpr (OP == Opcode::SRAI) {
            c.regs_.writeGpr(instr.rd,
                             static_cast<uint64_t>(sa >> (instr.imm & 63)));
        } else if constexpr (OP == Opcode::SLTI) {
            c.regs_.writeGpr(instr.rd, sa < instr.imm ? 1 : 0);
        } else if constexpr (OP == Opcode::SLTIU) {
            c.regs_.writeGpr(
                instr.rd, a < static_cast<uint64_t>(instr.imm) ? 1 : 0);
        } else if constexpr (OP == Opcode::ADDIW) {
            c.regs_.writeGpr(
                instr.rd,
                static_cast<uint64_t>(
                    sext32(a + static_cast<uint64_t>(instr.imm))));
        } else if constexpr (OP == Opcode::SLLIW) {
            c.regs_.writeGpr(
                instr.rd,
                static_cast<uint64_t>(sext32(a << (instr.imm & 31))));
        } else if constexpr (OP == Opcode::SRLIW) {
            c.regs_.writeGpr(
                instr.rd,
                static_cast<uint64_t>(sext32(static_cast<uint32_t>(a) >>
                                             (instr.imm & 31))));
        } else if constexpr (OP == Opcode::SRAIW) {
            c.regs_.writeGpr(
                instr.rd,
                static_cast<uint64_t>(static_cast<int64_t>(
                    static_cast<int32_t>(a) >> (instr.imm & 31))));
        } else if constexpr (OP == Opcode::LUI) {
            c.regs_.writeGpr(instr.rd,
                             static_cast<uint64_t>(instr.imm << 12));
        } else if constexpr (OP == Opcode::AUIPC) {
            c.regs_.writeGpr(
                instr.rd, c.pc_ + static_cast<uint64_t>(instr.imm << 12));
        } else if constexpr (OP == Opcode::LB || OP == Opcode::LBU ||
                             OP == Opcode::LH || OP == Opcode::LHU ||
                             OP == Opcode::LW || OP == Opcode::LWU ||
                             OP == Opcode::LD || OP == Opcode::FLD) {
            const uint64_t addr = a + static_cast<uint64_t>(instr.imm);
            c.timing_.memStall(c.dataAccessFast(addr, false));
            ++c.loads_;
            uint64_t value = 0;
            if constexpr (OP == Opcode::LB)
                value = static_cast<uint64_t>(static_cast<int64_t>(
                    static_cast<int8_t>(c.memory_.read8(addr))));
            else if constexpr (OP == Opcode::LBU)
                value = c.memory_.read8(addr);
            else if constexpr (OP == Opcode::LH)
                value = static_cast<uint64_t>(static_cast<int64_t>(
                    static_cast<int16_t>(c.memory_.read16(addr))));
            else if constexpr (OP == Opcode::LHU)
                value = c.memory_.read16(addr);
            else if constexpr (OP == Opcode::LW)
                value = static_cast<uint64_t>(static_cast<int64_t>(
                    static_cast<int32_t>(c.memory_.read32(addr))));
            else if constexpr (OP == Opcode::LWU)
                value = c.memory_.read32(addr);
            else
                value = c.memory_.read64(addr);
            if constexpr (OP == Opcode::FLD)
                c.regs_.writeFpr(instr.rd, value);
            else
                c.regs_.writeGpr(instr.rd, value);
        } else if constexpr (OP == Opcode::SB || OP == Opcode::SH ||
                             OP == Opcode::SW || OP == Opcode::SD ||
                             OP == Opcode::FSD) {
            const uint64_t addr = a + static_cast<uint64_t>(instr.imm);
            c.timing_.memStall(c.dataAccessFast(addr, true));
            ++c.stores_;
            const uint64_t value =
                OP == Opcode::FSD ? c.regs_.fpr(instr.rs2) : b;
            if constexpr (OP == Opcode::SB) {
                c.memory_.write8(addr, static_cast<uint8_t>(value));
                c.noteStore(addr, 1);
            } else if constexpr (OP == Opcode::SH) {
                c.memory_.write16(addr, static_cast<uint16_t>(value));
                c.noteStore(addr, 2);
            } else if constexpr (OP == Opcode::SW) {
                c.memory_.write32(addr, static_cast<uint32_t>(value));
                c.noteStore(addr, 4);
            } else {
                c.memory_.write64(addr, value);
                c.noteStore(addr, 8);
            }
        } else if constexpr (OP == Opcode::BEQ || OP == Opcode::BNE ||
                             OP == Opcode::BLT || OP == Opcode::BGE ||
                             OP == Opcode::BLTU || OP == Opcode::BGEU) {
            bool taken = false;
            if constexpr (OP == Opcode::BEQ)
                taken = a == b;
            else if constexpr (OP == Opcode::BNE)
                taken = a != b;
            else if constexpr (OP == Opcode::BLT)
                taken = sa < sb;
            else if constexpr (OP == Opcode::BGE)
                taken = sa >= sb;
            else if constexpr (OP == Opcode::BLTU)
                taken = a < b;
            else
                taken = a >= b;
            const uint64_t target = c.pc_ + static_cast<uint64_t>(instr.imm);
            if (taken)
                next_pc = target;
            const bool mispredict =
                c.branchUnit_.condBranch(c.pc_, taken, target);
            if (mispredict)
                c.timing_.redirect();
            c.emit(obs::EventKind::Branch, c.pc_, taken ? 1 : 0,
                   mispredict ? 1 : 0);
        } else if constexpr (OP == Opcode::JAL) {
            const uint64_t target = c.pc_ + static_cast<uint64_t>(instr.imm);
            c.regs_.writeGpr(instr.rd, c.pc_ + 4);
            next_pc = target;
            const bool mispredict = c.branchUnit_.directJump(
                c.pc_, target, instr.rd == isa::reg::ra, c.pc_ + 4);
            if (mispredict)
                c.timing_.redirect();
            c.emit(obs::EventKind::Jump, c.pc_, 0, mispredict ? 1 : 0);
        } else if constexpr (OP == Opcode::JALR) {
            const uint64_t target =
                (a + static_cast<uint64_t>(instr.imm)) & ~1ULL;
            const bool is_ret = instr.rd == 0 && instr.rs1 == isa::reg::ra;
            const bool is_call = instr.rd == isa::reg::ra;
            c.regs_.writeGpr(instr.rd, c.pc_ + 4);
            next_pc = target;
            const bool mispredict = c.branchUnit_.indirectJump(
                c.pc_, target, is_call, is_ret, c.pc_ + 4);
            if (mispredict)
                c.timing_.redirect();
            c.emit(obs::EventKind::Jump, c.pc_, 1, mispredict ? 1 : 0);
        } else if constexpr (OP == Opcode::FADD_D || OP == Opcode::FSUB_D ||
                             OP == Opcode::FMUL_D || OP == Opcode::FDIV_D ||
                             OP == Opcode::FSQRT_D ||
                             OP == Opcode::FSGNJ_D ||
                             OP == Opcode::FSGNJN_D ||
                             OP == Opcode::FSGNJX_D ||
                             OP == Opcode::FEQ_D || OP == Opcode::FLT_D ||
                             OP == Opcode::FLE_D ||
                             OP == Opcode::FCVT_D_L ||
                             OP == Opcode::FCVT_L_D ||
                             OP == Opcode::FMV_X_D ||
                             OP == Opcode::FMV_D_X) {
            c.execFp(instr);
        } else if constexpr (OP == Opcode::TLD) {
            const uint64_t addr = a + static_cast<uint64_t>(instr.imm);
            const int off = c.typedState_.tagConfig.tagDwordOffset();
            unsigned extra = c.dataAccessFast(addr, false);
            if (off != 0 && (addr + off) / c.dcache_.blockBytes() !=
                                addr / c.dcache_.blockBytes())
                extra += c.dataAccessFast(addr + off, false);
            c.timing_.memStall(extra);
            ++c.loads_;
            const uint64_t value_dword = c.memory_.read64(addr);
            const uint64_t tag_dword =
                off != 0 ? c.memory_.read64(addr + off) : value_dword;
            const typed::ExtractedTag e = typed::TagCodec::extract(
                c.typedState_.tagConfig, value_dword, tag_dword);
            c.regs_.writeGprTagged(instr.rd, e.value, e.tag, e.fp);
        } else if constexpr (OP == Opcode::TSD) {
            const uint64_t addr = a + static_cast<uint64_t>(instr.imm);
            const TaggedReg &srcreg = c.regs_.gpr(instr.rs2);
            const typed::InsertedTag ins = typed::TagCodec::insert(
                c.typedState_.tagConfig, srcreg.v, srcreg.t, srcreg.f);
            const int off = c.typedState_.tagConfig.tagDwordOffset();
            unsigned extra = c.dataAccessFast(addr, true);
            if (ins.writesTagDword &&
                (addr + off) / c.dcache_.blockBytes() !=
                    addr / c.dcache_.blockBytes())
                extra += c.dataAccessFast(addr + off, true);
            c.timing_.memStall(extra);
            ++c.stores_;
            c.memory_.write64(addr, ins.valueDword);
            c.noteStore(addr, 8);
            if (ins.writesTagDword) {
                c.memory_.write64(addr + off, ins.tagDword);
                c.noteStore(addr + off, 8);
            }
        } else if constexpr (OP == Opcode::XADD || OP == Opcode::XSUB ||
                             OP == Opcode::XMUL) {
            const TaggedReg &rb = c.regs_.gpr(instr.rs1);
            const TaggedReg &rc = c.regs_.gpr(instr.rs2);
            const auto out = c.trt_.lookup(ruleOpFor(OP), rb.t, rc.t);
            if (!out) {
                c.emit(obs::EventKind::TrtMiss, c.pc_, rb.t, rc.t);
                c.typeMissRedirect(next_pc);
                return;
            }
            c.emit(obs::EventKind::TrtHit, c.pc_, rb.t, rc.t);
            c.deoptHit();
            const uint8_t tag = *out;
            const bool fp = (tag & 0x80) != 0;
            if (fp) {
                const double x = asDouble(rb.v);
                const double y = asDouble(rc.v);
                double result;
                if constexpr (OP == Opcode::XADD)
                    result = x + y;
                else if constexpr (OP == Opcode::XSUB)
                    result = x - y;
                else
                    result = x * y;
                c.regs_.writeGprTagged(instr.rd, asBits(result), tag, true);
            } else if (c.config_.overflowMode == OverflowMode::Int32) {
                const int64_t x = sext32(rb.v);
                const int64_t y = sext32(rc.v);
                int64_t result;
                if constexpr (OP == Opcode::XADD)
                    result = x + y;
                else if constexpr (OP == Opcode::XSUB)
                    result = x - y;
                else
                    result = x * y;
                if (result != sext32(static_cast<uint64_t>(result))) {
                    ++c.typeOverflowMisses_;
                    c.emit(obs::EventKind::TypeOverflow, c.pc_, rb.t, rc.t);
                    c.typeMissRedirect(next_pc);
                    return;
                }
                c.regs_.writeGprTagged(
                    instr.rd, static_cast<uint32_t>(result), tag, false);
            } else {
                int64_t result;
                if constexpr (OP == Opcode::XADD)
                    result = sa + sb;
                else if constexpr (OP == Opcode::XSUB)
                    result = sa - sb;
                else
                    result = sa * sb;
                c.regs_.writeGprTagged(
                    instr.rd, static_cast<uint64_t>(result), tag, false);
            }
        } else if constexpr (OP == Opcode::SETOFFSET) {
            c.typedState_.tagConfig.offset = static_cast<uint8_t>(a & 0b111);
            c.noteTypedConfigWrite();
        } else if constexpr (OP == Opcode::SETMASK) {
            c.typedState_.tagConfig.mask = static_cast<uint8_t>(a & 0xFF);
            c.noteTypedConfigWrite();
        } else if constexpr (OP == Opcode::SETSHIFT) {
            c.typedState_.tagConfig.shift = static_cast<uint8_t>(a & 0x3F);
            c.noteTypedConfigWrite();
        } else if constexpr (OP == Opcode::SET_TRT) {
            c.trt_.pushEncoded(static_cast<uint32_t>(a));
            c.noteTypedConfigWrite();
        } else if constexpr (OP == Opcode::FLUSH_TRT) {
            c.trt_.flush();
            c.noteTypedConfigWrite();
        } else if constexpr (OP == Opcode::THDL) {
            c.typedState_.rhdl = c.pc_ + static_cast<uint64_t>(instr.imm);
            c.deoptSelect(next_pc);
        } else if constexpr (OP == Opcode::TCHK) {
            const TaggedReg &rb = c.regs_.gpr(instr.rs1);
            const TaggedReg &rc = c.regs_.gpr(instr.rs2);
            if (!c.trt_.lookup(typed::RuleOp::Chk, rb.t, rc.t)) {
                c.emit(obs::EventKind::TrtMiss, c.pc_, rb.t, rc.t);
                c.typeMissRedirect(next_pc);
            } else {
                c.emit(obs::EventKind::TrtHit, c.pc_, rb.t, rc.t);
                c.deoptHit();
            }
        } else if constexpr (OP == Opcode::TGET) {
            c.regs_.writeGpr(instr.rd, c.regs_.gpr(instr.rs1).t);
        } else if constexpr (OP == Opcode::TSET) {
            const uint8_t tag = static_cast<uint8_t>(a & 0xFF);
            c.regs_.writeGprTag(instr.rd, tag, (tag & 0x80) != 0);
        } else if constexpr (OP == Opcode::SETTYPE) {
            c.typedState_.chklbExpectedType =
                static_cast<uint16_t>(a & 0xFFFF);
        } else if constexpr (OP == Opcode::CHKLD) {
            const uint64_t addr = a + static_cast<uint64_t>(instr.imm);
            c.timing_.memStall(c.dataAccessFast(addr, false));
            ++c.loads_;
            ++c.chklbChecks_;
            const uint64_t value = c.memory_.read64(addr);
            c.regs_.writeGpr(instr.rd, value);
            if (static_cast<uint16_t>(value >> 48) !=
                c.typedState_.chklbExpectedType) {
                ++c.chklbMisses_;
                c.emit(obs::EventKind::ChklbMiss, c.pc_,
                       static_cast<uint16_t>(value >> 48),
                       c.typedState_.chklbExpectedType);
                next_pc = c.typedState_.rhdl;
                c.timing_.redirect();
            }
        } else if constexpr (OP == Opcode::CHKLB || OP == Opcode::CHKLH) {
            const uint64_t addr = a + static_cast<uint64_t>(instr.imm);
            c.timing_.memStall(c.dataAccessFast(addr, false));
            ++c.loads_;
            ++c.chklbChecks_;
            constexpr bool half = OP == Opcode::CHKLH;
            const uint16_t tag =
                half ? c.memory_.read16(addr) : c.memory_.read8(addr);
            const uint16_t expected =
                half ? c.typedState_.chklbExpectedType
                     : static_cast<uint16_t>(
                           c.typedState_.chklbExpectedType & 0xFF);
            c.regs_.writeGpr(instr.rd, tag);
            if (tag != expected) {
                ++c.chklbMisses_;
                c.emit(obs::EventKind::ChklbMiss, c.pc_, tag, expected);
                next_pc = c.typedState_.rhdl;
                c.timing_.redirect();
            }
        } else if constexpr (OP == Opcode::SYS || OP == Opcode::HCALL) {
            c.execSys(instr, next_pc);
        } else if constexpr (OP == Opcode::HALT) {
            c.doHalt(0);
        } else {
            tarch_panic("fastpath: invalid opcode");
        }
    }

    static const std::array<fastpath::Handler, isa::kNumOpcodes> &table();
};

namespace {

template <size_t... I>
constexpr std::array<fastpath::Handler, sizeof...(I)>
makeTable(std::index_sequence<I...>)
{
    return {&FastPathExec::exec<static_cast<Opcode>(I)>...};
}

} // namespace

const std::array<fastpath::Handler, isa::kNumOpcodes> &
FastPathExec::table()
{
    static const auto handlers =
        makeTable(std::make_index_sequence<isa::kNumOpcodes>{});
    return handlers;
}

const fastpath::DecodedBlock *
Core::buildBlock(size_t entry_idx)
{
    auto block = std::make_unique<fastpath::DecodedBlock>();
    block->entryPc = textBase_ + 4 * entry_idx;
    const unsigned cap = blockCache_.config().maxBlockInstrs;
    block->instrs.reserve(8);
    // Fetch-repeat batching requires the memo shortcuts to be exact:
    // the I-cache memo compares shifted block numbers (geometry must be
    // a power of two) and the I-TLB memo must be enabled at all.
    auto is_pow2 = [](uint64_t v) { return v != 0 && (v & (v - 1)) == 0; };
    const bool can_batch =
        is_pow2(config_.icache.blockBytes) && itlb_.repeatMemoActive();
    const uint64_t ic_block = config_.icache.blockBytes;
    const uint64_t it_page = config_.itlb.pageBytes;
    for (size_t idx = entry_idx;
         block->instrs.size() < cap && idx < text_.size(); ++idx) {
        const Instr &instr = text_[idx];
        if (instr.op == Opcode::NumOpcodes)
            break;  // undecodable word: the exact path fatals there
        fastpath::DecodedInstr rec;
        rec.instr = instr;
        rec.pc = textBase_ + 4 * idx;
        rec.marker = markerByIndex_[idx];
        if (can_batch && !block->instrs.empty()) {
            const uint64_t prev_pc = block->instrs.back().pc;
            rec.fetchRepeat = rec.pc / ic_block == prev_pc / ic_block &&
                              rec.pc / it_page == prev_pc / it_page;
        }
        rec.fn = FastPathExec::table()[static_cast<size_t>(instr.op)];
        const isa::OpcodeInfo &info = isa::opcodeInfo(instr.op);
        // Mirror of step()'s operand-hazard syntax switch (register
        // ids pre-adjusted: GPR 0-31, FPR 32-63; 0 = none, which is
        // exact because x0 never stalls).
        switch (info.syntax) {
          case isa::Syntax::R3:
          case isa::Syntax::Rs1Rs2:
          case isa::Syntax::Branch:
            rec.src1 = info.fpRs1 ? instr.rs1 + 32U : instr.rs1;
            rec.src2 = info.fpRs2 ? instr.rs2 + 32U : instr.rs2;
            break;
          case isa::Syntax::R2:
          case isa::Syntax::Rs1:
          case isa::Syntax::RegRegImm:
          case isa::Syntax::Load:
            rec.src1 = info.fpRs1 ? instr.rs1 + 32U : instr.rs1;
            break;
          case isa::Syntax::Store:
            rec.src1 = instr.rs1;
            rec.src2 = info.fpRs2 ? instr.rs2 + 32U : instr.rs2;
            break;
          default:
            break;
        }
        // Mirror of step()'s destination-ready switch.
        switch (info.syntax) {
          case isa::Syntax::R3:
          case isa::Syntax::R2:
          case isa::Syntax::RegRegImm:
          case isa::Syntax::Load:
          case isa::Syntax::UImm:
          case isa::Syntax::Jal:
            rec.dst = info.fpRd ? instr.rd + 32U : instr.rd;
            rec.dstLat =
                static_cast<uint16_t>(timing_.latencyFor(info.execClass));
            break;
          default:
            break;
        }
        block->instrs.push_back(rec);
        if (endsBlock(instr.op))
            break;
    }
    if (block->instrs.empty())
        return nullptr;
    ++fastStats_.blockBuilds;
    const fastpath::DecodedBlock *ptr = block.get();
    if (blockCache_.insert(entry_idx, std::move(block)))
        ++fastStats_.capacityFlushes;
    return ptr;
}

bool
Core::stepBlock()
{
    if (halted_)
        return false;
    if (fastFlushPending_) {
        blockCache_.flush();
        fastFlushPending_ = false;
    }
    if (pc_ < textBase_ || pc_ >= textEnd_ || (pc_ & 3) != 0)
        return step();  // out-of-text: identical fatal diagnostics
    const size_t idx = (pc_ - textBase_) / 4;
    const fastpath::DecodedBlock *blk = blockCache_.at(idx);
    if (blk) {
        ++fastStats_.blockHits;
    } else {
        blk = buildBlock(idx);
        if (!blk)
            return step();  // undecodable entry word: identical fatal
    }
    if (instructions_ + blk->instrs.size() > config_.maxInstructions)
        return step();  // let the exact guard trip at its precise pc
    const bool instrumented = bus_.active();
    // Repeat-fetch bookkeeping is accumulated in a register and flushed
    // at every fetch-run boundary, so within the I-cache and I-TLB all
    // updates still land in program order (LRU state stays
    // bit-identical).  The destructor flushes on every exit path —
    // including a FatalError unwind from a handler — so crash-state
    // stats match the exact engine too.
    struct FetchBatch {
        Core &c;
        unsigned pending = 0;
        explicit FetchBatch(Core &core) : c(core) {}
        ~FetchBatch() { flush(); }
        void
        flush()
        {
            if (pending) {
                c.itlb_.repeatBump(pending);
                c.icache_.repeatBump(pending);
                pending = 0;
            }
        }
    } batch(*this);
    for (const fastpath::DecodedInstr &r : blk->instrs) {
        // One decoded record == one step() iteration, same order:
        // fetch, marker, trace, hazards, body, dest-ready, retire.
        pc_ = r.pc;
        unsigned fetch_stall;
        if (instrumented) {
            fetch_stall = fetchStall(r.pc);
        } else if (r.fetchRepeat) {
            // Proven same-block, same-page fetch: guaranteed hit.
            ++batch.pending;
            fetch_stall = 0;
        } else {
            batch.flush();
            fetch_stall = fetchStallFast(r.pc);
        }
        timing_.startInstr(fetch_stall);
        if (r.marker >= 0) {
            currentRegion_ = r.marker;
            markers_.bump(static_cast<size_t>(currentRegion_));
            if (instrumented)
                emit(obs::EventKind::MarkerEnter, r.pc, currentRegion_);
        }
        if (currentRegion_ >= 0)
            markers_.bumpRegion(static_cast<size_t>(currentRegion_));
        if (tracer_)
            tracer_->record(r.pc, r.instr, instructions_);
        ++instructions_;
        timing_.useSrcs(r.src1, r.src2);
        uint64_t next_pc = r.pc + 4;
        r.fn(*this, r, next_pc);
        timing_.setRegReady(r.dst, r.dstLat);
        if (instrumented)
            emit(obs::EventKind::Retire, r.pc, currentRegion_);
        pc_ = next_pc;
        if (fastFlushPending_)
            break;  // a store hit text mid-block: successors are stale
    }
    return !halted_;
}

} // namespace tarch::core
