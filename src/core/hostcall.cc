#include "core/hostcall.h"

#include "common/log.h"

namespace tarch::core {

void
HostcallRegistry::add(unsigned id, std::string name, HcallCost cost, Fn fn)
{
    if (entries_.size() <= id)
        entries_.resize(id + 1);
    if (entries_[id].valid)
        tarch_fatal("hcall id %u already registered (%s)", id,
                    entries_[id].name.c_str());
    entries_[id] = {true, std::move(name), cost, std::move(fn)};
}

const HostcallRegistry::Entry &
HostcallRegistry::entry(unsigned id) const
{
    if (id >= entries_.size() || !entries_[id].valid)
        tarch_fatal("unregistered hcall id %u", id);
    return entries_[id];
}

bool
HostcallRegistry::has(unsigned id) const
{
    return id < entries_.size() && entries_[id].valid;
}

const std::string &
HostcallRegistry::name(unsigned id) const
{
    return entry(id).name;
}

const HcallCost &
HostcallRegistry::cost(unsigned id) const
{
    return entry(id).cost;
}

void
HostcallRegistry::invoke(unsigned id, HostEnv &env) const
{
    entry(id).fn(env);
}

} // namespace tarch::core
