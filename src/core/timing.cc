#include "core/timing.h"

namespace tarch::core {

TimingModel::TimingModel(const TimingConfig &config)
    : config_(config)
{
}

void
TimingModel::startInstr(unsigned fetch_stall)
{
    issue_ += 1 + fetch_stall + pendingRedirect_;
    pendingRedirect_ = 0;
}

void
TimingModel::useReg(unsigned reg)
{
    if (reg == 0)
        return;  // x0 is always ready
    if (regReady_[reg] > issue_)
        issue_ = regReady_[reg];
}

void
TimingModel::memStall(unsigned extra)
{
    issue_ += extra;
}

void
TimingModel::setRegReady(unsigned reg, unsigned latency)
{
    if (reg == 0)
        return;
    regReady_[reg] = issue_ + latency;
}

unsigned
TimingModel::latencyFor(isa::ExecClass klass) const
{
    using E = isa::ExecClass;
    switch (klass) {
      case E::IntAlu:
      case E::TypedCfg:
      case E::TypedChk:
      case E::Branch:
      case E::Jump:
      case E::Store:
      case E::Sys:
      case E::Halt:
        return config_.latIntAlu;
      case E::IntMul:
        return config_.latIntMul;
      case E::IntDiv:
        return config_.latIntDiv;
      case E::Load:
        return config_.latLoad;
      case E::FpAlu:
        return config_.latFpAlu;
      case E::FpMul:
        return config_.latFpMul;
      case E::FpDiv:
        return config_.latFpDiv;
      case E::FpSqrt:
        return config_.latFpSqrt;
    }
    return config_.latIntAlu;
}

void
TimingModel::redirect()
{
    pendingRedirect_ += config_.redirectPenalty;
}

void
TimingModel::flatCost(uint64_t cycles)
{
    issue_ += cycles;
}

} // namespace tarch::core
