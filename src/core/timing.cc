#include "core/timing.h"

namespace tarch::core {

TimingModel::TimingModel(const TimingConfig &config)
    : config_(config)
{
}

unsigned
TimingModel::latencyFor(isa::ExecClass klass) const
{
    using E = isa::ExecClass;
    switch (klass) {
      case E::IntAlu:
      case E::TypedCfg:
      case E::TypedChk:
      case E::Branch:
      case E::Jump:
      case E::Store:
      case E::Sys:
      case E::Halt:
        return config_.latIntAlu;
      case E::IntMul:
        return config_.latIntMul;
      case E::IntDiv:
        return config_.latIntDiv;
      case E::Load:
        return config_.latLoad;
      case E::FpAlu:
        return config_.latFpAlu;
      case E::FpMul:
        return config_.latFpMul;
      case E::FpDiv:
        return config_.latFpDiv;
      case E::FpSqrt:
        return config_.latFpSqrt;
    }
    return config_.latIntAlu;
}

} // namespace tarch::core
