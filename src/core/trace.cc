#include "core/trace.h"

#include "common/strutil.h"
#include "isa/disasm.h"

namespace tarch::core {

Tracer::Tracer(size_t capacity)
    : ring_(capacity ? capacity : 1)
{
}

void
Tracer::record(uint64_t pc, const isa::Instr &instr, uint64_t index)
{
    ring_[next_] = {pc, instr, index};
    next_ = (next_ + 1) % ring_.size();
    ++recorded_;
}

std::vector<Tracer::Entry>
Tracer::entries() const
{
    std::vector<Entry> out;
    const size_t count =
        recorded_ < ring_.size() ? static_cast<size_t>(recorded_)
                                 : ring_.size();
    const size_t start =
        recorded_ < ring_.size() ? 0 : next_;
    for (size_t i = 0; i < count; ++i)
        out.push_back(ring_[(start + i) % ring_.size()]);
    return out;
}

std::string
Tracer::dump() const
{
    std::string out;
    for (const Entry &entry : entries()) {
        std::string line = strformat("#%-8llu %06llx  %s",
                                     (unsigned long long)entry.index,
                                     (unsigned long long)entry.pc,
                                     isa::disassemble(entry.instr).c_str());
        if (labels_ && !labels_->empty()) {
            if (line.size() < 44)
                line.append(44 - line.size(), ' ');
            line += strformat("  ; %s", labels_->locate(entry.pc).c_str());
        }
        out += line;
        out += '\n';
    }
    return out;
}

void
Tracer::clear()
{
    next_ = 0;
    recorded_ = 0;
}

} // namespace tarch::core
