/**
 * @file
 * Execution tracer: a ring buffer of recently executed instructions,
 * attachable to a Core.  Used for debugging generated interpreters (the
 * dump is appended to fatal PC errors) and by the trace example.
 */

#ifndef TARCH_CORE_TRACE_H
#define TARCH_CORE_TRACE_H

#include <cstdint>
#include <string>
#include <vector>

#include "isa/instr.h"
#include "obs/labels.h"

namespace tarch::core {

class Tracer
{
  public:
    struct Entry {
        uint64_t pc = 0;
        isa::Instr instr;
        uint64_t index = 0;   ///< dynamic instruction number
    };

    explicit Tracer(size_t capacity = 64);

    void record(uint64_t pc, const isa::Instr &instr, uint64_t index);

    /** Entries in execution order (oldest first). */
    std::vector<Entry> entries() const;

    /** Disassembled dump of the captured window.  When a label map is
        attached each line is annotated with the nearest text label, the
        same lookup the static verifier uses for its diagnostics. */
    std::string dump() const;

    /** Attach the loaded image's labels (nullptr detaches).  Core does
        this automatically in setTracer()/loadProgram(). */
    void setLabels(const obs::LabelMap *labels) { labels_ = labels; }

    size_t capacity() const { return ring_.size(); }
    uint64_t recorded() const { return recorded_; }
    void clear();

  private:
    std::vector<Entry> ring_;
    size_t next_ = 0;
    uint64_t recorded_ = 0;
    const obs::LabelMap *labels_ = nullptr;
};

} // namespace tarch::core

#endif // TARCH_CORE_TRACE_H
