/**
 * @file
 * The simulated processor: a 64-bit in-order core implementing TRV64
 * with the Typed Architecture pipeline (unified register file, Type Rule
 * Table, tag extract/insert logic, handler register) and the Checked Load
 * comparison extension, attached to L1 I/D caches, TLBs and a DRAM model,
 * with a gshare/BTB/RAS front end (Table 6 parameters by default).
 */

#ifndef TARCH_CORE_CORE_H
#define TARCH_CORE_CORE_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "assembler/assembler.h"
#include "branch/branch_unit.h"
#include "core/exec_mode.h"
#include "core/fastpath.h"
#include "core/hostcall.h"
#include "core/markers.h"
#include "core/regfile.h"
#include "core/stats.h"
#include "core/timing.h"
#include "core/trace.h"
#include "mem/cache.h"
#include "mem/dram.h"
#include "mem/main_memory.h"
#include "mem/tlb.h"
#include "obs/event.h"
#include "obs/labels.h"
#include "typed/tag_codec.h"
#include "typed/type_rule_table.h"

namespace tarch::core {

/** Overflow policy of the polymorphic ALU instructions (Section 3.2). */
enum class OverflowMode : uint8_t {
    Off,    ///< tags live outside the value dword (MiniLua)
    Int32,  ///< NaN-boxed int32 payloads must not overflow (MiniJS)
};

/**
 * Fast-path deoptimization (paper Section 5, "Deoptimizing the fast
 * path"): the thdl instruction doubles as a path selector.  A small
 * direct-mapped table of saturating counters tracks type-miss density
 * per slow-path handler; when a handler's counter crosses the threshold,
 * thdl redirects straight to the slow path instead of falling through
 * to the doomed fast path.  Every 32nd deopt probes the fast path again
 * so a phase change can re-optimize.
 */
struct DeoptConfig {
    bool enabled = false;
    unsigned tableEntries = 16;   ///< direct-mapped, power of two
    uint8_t threshold = 8;        ///< deopt when counter >= threshold
    uint8_t missBump = 4;         ///< counter += on a type miss
    uint8_t probeInterval = 32;   ///< probe the fast path periodically
};

struct CoreConfig {
    TimingConfig timing;
    mem::CacheConfig icache{"icache", 16 * 1024, 4, 64, 1};
    mem::CacheConfig dcache{"dcache", 16 * 1024, 4, 64, 1};
    mem::TlbConfig itlb;
    mem::TlbConfig dtlb;
    mem::DramConfig dram;
    branch::BranchUnitConfig branch;
    unsigned trtCapacity = 8;
    DeoptConfig deopt;
    OverflowMode overflowMode = OverflowMode::Off;
    /** Exact per-cycle interpreter vs. the bit-identical predecoded
        basic-block fast path (docs/FASTPATH.md).  Defaults to the
        TARCH_EXEC_MODE environment override, else Exact. */
    ExecMode execMode = defaultExecMode();
    fastpath::FastPathConfig fastPath;
    uint64_t maxInstructions = 4'000'000'000ULL; ///< runaway guard
    uint64_t heapBase = 0x0100'0000;             ///< bump allocator start
    uint64_t stackTop = 0x7FFF'F000;
};

/** Typed-extension special registers (Sections 3.1 and 3.3). */
struct TypedState {
    typed::TagConfig tagConfig;
    uint64_t rhdl = 0;
    uint16_t chklbExpectedType = 0; ///< Checked Load settype register
};

/**
 * Everything the OS must preserve across a context switch when Typed
 * Architecture processes coexist (paper Section 5, "OS interactions"):
 * the special registers, the Type Rule Table contents, and the per-
 * register tag/F-I extension of the architectural register file.
 */
struct TypedContext {
    TypedState state;
    std::vector<typed::TypeRule> trtRules;
    std::array<uint8_t, isa::kNumGprs> tags{};
    std::array<bool, isa::kNumGprs> fpFlags{};
};

/**
 * The complete simulated machine captured by the snapshot subsystem
 * (docs/SNAPSHOT.md): registers, typed special state, PC/halt/exit,
 * guest output, every statistics counter, the timing / branch-predictor
 * / cache / TLB / DRAM model state, the deopt selector tables, marker
 * counters, and the full memory image.  Program-derived structures
 * (decoded text, the marker pc map, the predecoded block cache) are
 * rebuilt on restore, so restore-then-continue is bit-identical to an
 * uninterrupted run in BOTH execution modes.
 */
struct MachineState {
    // Architectural state.
    uint64_t pc = 0;
    bool halted = false;
    int exitCode = 0;
    uint64_t heapBreak = 0;
    int32_t currentRegion = -1;
    std::string output;
    TypedState typedState;
    RegFile::Snapshot regs;

    // Core-owned counters.
    uint64_t instructions = 0;
    uint64_t loads = 0;
    uint64_t stores = 0;
    uint64_t typeOverflowMisses = 0;
    uint64_t deoptRedirects = 0;
    uint64_t deoptProbes = 0;
    uint64_t chklbChecks = 0;
    uint64_t chklbMisses = 0;
    uint64_t hostcallCount = 0;
    std::vector<uint8_t> deoptCounters;
    std::vector<uint64_t> deoptTags;

    // Component state.
    TimingModel::Snapshot timing;
    Markers::Snapshot markers;
    typed::TypeRuleTable::Snapshot trt;
    branch::BranchUnit::Snapshot branch;
    mem::Cache::Snapshot icache;
    mem::Cache::Snapshot dcache;
    mem::Tlb::Snapshot itlb;
    mem::Tlb::Snapshot dtlb;
    mem::Dram::Snapshot dram;

    // Full guest memory image, sorted by page index.
    std::vector<mem::MainMemory::PageImage> pages;
};

class Core
{
  public:
    explicit Core(const CoreConfig &config = {},
                  const HostcallRegistry *hostcalls = nullptr);

    /** Load text and data into memory; resets PC to the entry point. */
    void loadProgram(const assembler::Program &program);

    /**
     * Run until halt / sys-exit (or fatal on the instruction guard).
     * Dispatches per CoreConfig::execMode; both modes are bit-identical.
     * @return the guest exit code
     */
    int run();

    /** Single-step one instruction exactly; returns false once halted. */
    bool step();

    /**
     * Advance through one predecoded basic block (or one exact step on
     * the rare paths that fall back); returns false once halted.
     * Bit-identical to the equivalent sequence of step() calls.
     */
    bool stepBlock();

    /** Block-cache counters for the fast path (zero in exact mode). */
    const fastpath::FastPathStats &fastPathStats() const
    {
        return fastStats_;
    }

    /** The predecoded block cache (exposed for tests). */
    const fastpath::BlockCache &blockCache() const { return blockCache_; }

    mem::MainMemory &memory() { return memory_; }
    RegFile &regs() { return regs_; }
    typed::TypeRuleTable &trt() { return trt_; }
    TypedState &typedState() { return typedState_; }
    Markers &markers() { return markers_; }
    const std::string &output() const { return output_; }
    uint64_t pc() const { return pc_; }
    void setPc(uint64_t pc) { pc_ = pc; }
    bool halted() const { return halted_; }
    int exitCode() const { return exitCode_; }
    uint64_t heapBreak() const { return heapBreak_; }

    /** Bump-allocate zeroed guest heap (8-byte aligned). */
    uint64_t
    allocHeap(uint64_t bytes)
    {
        heapBreak_ = (heapBreak_ + 7) & ~7ULL;
        const uint64_t addr = heapBreak_;
        heapBreak_ += bytes;
        return addr;
    }

    const CoreConfig &config() const { return config_; }

    /** Aggregate statistics from all components. */
    CoreStats collectStats() const;

    /** Capture the typed machine state an OS must save (Section 5). */
    TypedContext saveTypedContext() const;

    /** Restore a previously saved typed context (flushes the TRT). */
    void restoreTypedContext(const TypedContext &context);

    /** Capture the complete machine (snapshot subsystem). */
    void saveMachine(MachineState &out) const;

    /**
     * Overwrite the machine with @p in.  The same program must already
     * be loaded (loadProgram with an identical layout); the decoded
     * text is refreshed from the restored memory image, so stores into
     * the text segment survive the round trip.  False on any shape
     * mismatch against the current configuration — the machine may then
     * be half-restored, so callers must discard it, not reuse it.
     */
    bool restoreMachine(const MachineState &in);

    /**
     * Run until at least @p target instructions have retired (or the
     * guest halts).  Exact mode stops at exactly @p target; Predecoded
     * mode advances whole blocks and may overshoot.  Either stopping
     * point is an architecturally exact state, fit for saveMachine.
     */
    void runUntilInstructions(uint64_t target);

    /** Attach an execution tracer (nullptr detaches). */
    void
    setTracer(Tracer *tracer)
    {
        tracer_ = tracer;
        if (tracer_)
            tracer_->setLabels(&labels_);
    }

    /**
     * The event probe bus.  Attach a sink (obs::Profiler,
     * obs::IntervalSampler, obs::ChromeTraceSink, ...) to observe the
     * run; with no sinks attached every emission site reduces to one
     * predictable branch and the simulation is bit-identical.
     */
    obs::ProbeBus &probeBus() { return bus_; }
    const obs::ProbeBus &probeBus() const { return bus_; }

    /** Text labels of the loaded program (empty before loadProgram). */
    const obs::LabelMap &labels() const { return labels_; }

    /** Pause run() whenever @p pc is about to execute. */
    void addBreakpoint(uint64_t pc) { breakpoints_.push_back(pc); }
    void clearBreakpoints() { breakpoints_.clear(); }

    enum class StopReason { Halted, Breakpoint };

    /**
     * Run until halt or a breakpoint PC is reached (the instruction at
     * the breakpoint has NOT executed yet when this returns).
     */
    StopReason runToBreakpoint();

  private:
    friend struct FastPathExec;

    struct ExecResult {
        uint64_t nextPc;
    };

    unsigned fetchStall(uint64_t pc);
    unsigned dataAccess(uint64_t addr, bool is_write);

    // Uninstrumented fetch/data paths using the repeat-access memo
    // (bit-identical; the instrumented paths emit miss events).  Inline:
    // the block executor calls these for every fetch and memory op.

    unsigned
    fetchStallFast(uint64_t pc)
    {
        unsigned extra = itlb_.accessRepeat(pc);
        extra += icache_.accessRepeat(pc, false) - config_.icache.hitLatency;
        return extra;
    }

    unsigned
    dataAccessFast(uint64_t addr, bool is_write)
    {
        if (bus_.active())
            return dataAccess(addr, is_write);
        unsigned extra = dtlb_.accessRepeat(addr);
        extra +=
            dcache_.accessRepeat(addr, is_write) - config_.dcache.hitLatency;
        return extra;
    }

    /**
     * Every datapath store funnels through here: a store overlapping
     * the text segment re-decodes the clobbered words (so the very next
     * fetch observes it in BOTH exec modes) and invalidates the block
     * cache.
     */
    void
    noteStore(uint64_t addr, unsigned len)
    {
        if (addr < textEnd_ && addr + len > textBase_)
            textStoreSlow(addr, len);
    }
    void textStoreSlow(uint64_t addr, unsigned len);

    /** A typed-config/TRT write: flush predecoded blocks (defensive —
        records never cache typed-config state, see docs/FASTPATH.md). */
    void
    noteTypedConfigWrite()
    {
        fastFlushPending_ = true;
        ++fastStats_.configInvalidations;
    }

    const fastpath::DecodedBlock *buildBlock(size_t entry_idx);

    /** Publish an event iff a sink is listening (the zero-cost gate). */
    void
    emit(obs::EventKind kind, uint64_t pc, int64_t a = 0, int64_t b = 0)
    {
        if (bus_.active())
            bus_.emit({kind, pc, timing_.cycles(), a, b});
    }

    void execTyped(const isa::Instr &instr, uint64_t &next_pc);
    void execFp(const isa::Instr &instr);
    void execSys(const isa::Instr &instr, uint64_t &next_pc);
    void doHalt(int code);
    void typeMissRedirect(uint64_t &next_pc);
    uint8_t &deoptCounter(uint64_t handler);
    void deoptHit();
    bool deoptSelect(uint64_t &next_pc);

    CoreConfig config_;
    const HostcallRegistry *hostcalls_;

    mem::MainMemory memory_;
    mem::Dram dram_;
    mem::Cache icache_;
    mem::Cache dcache_;
    mem::Tlb itlb_;
    mem::Tlb dtlb_;
    branch::BranchUnit branchUnit_;
    typed::TypeRuleTable trt_;
    TypedState typedState_;
    RegFile regs_;
    TimingModel timing_;
    Markers markers_;

    // Loaded program.
    uint64_t textBase_ = 0;
    uint64_t textEnd_ = 0;  ///< textBase_ + 4 * text_.size()
    std::vector<isa::Instr> text_;
    std::vector<int32_t> markerByIndex_;  ///< -1 = no marker

    // Predecoded fast path (fastpath.cc).
    fastpath::BlockCache blockCache_;
    fastpath::FastPathStats fastStats_;
    bool fastFlushPending_ = false;  ///< applied at the next stepBlock()

    uint64_t pc_ = 0;
    int32_t currentRegion_ = -1;  ///< marker region for instr attribution
    bool halted_ = false;
    int exitCode_ = 0;
    std::string output_;
    uint64_t heapBreak_ = 0;

    uint64_t instructions_ = 0;
    uint64_t loads_ = 0;
    uint64_t stores_ = 0;
    uint64_t typeOverflowMisses_ = 0;
    std::vector<uint8_t> deoptCounters_;
    std::vector<uint64_t> deoptTags_;
    uint64_t deoptRedirects_ = 0;
    uint64_t deoptProbes_ = 0;
    uint64_t chklbChecks_ = 0;
    uint64_t chklbMisses_ = 0;
    uint64_t hostcallCount_ = 0;

    Tracer *tracer_ = nullptr;
    std::vector<uint64_t> breakpoints_;
    obs::ProbeBus bus_;
    obs::LabelMap labels_;
};

} // namespace tarch::core

#endif // TARCH_CORE_CORE_H
