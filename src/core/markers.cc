#include "core/markers.h"

#include "common/log.h"

namespace tarch::core {

size_t
Markers::add(uint64_t pc, std::string name)
{
    const size_t id = names_.size();
    if (!byPc_.emplace(pc, id).second)
        tarch_fatal("duplicate marker at pc 0x%llx",
                    static_cast<unsigned long long>(pc));
    names_.push_back(std::move(name));
    hits_.push_back(0);
    regionInstrs_.push_back(0);
    return id;
}

uint64_t
Markers::hitsByName(const std::string &name) const
{
    uint64_t total = 0;
    for (size_t i = 0; i < names_.size(); ++i) {
        if (names_[i] == name)
            total += hits_[i];
    }
    return total;
}

uint64_t
Markers::regionInstrsByName(const std::string &name) const
{
    uint64_t total = 0;
    for (size_t i = 0; i < names_.size(); ++i) {
        if (names_[i] == name)
            total += regionInstrs_[i];
    }
    return total;
}

void
Markers::resetHits()
{
    for (auto &h : hits_)
        h = 0;
    for (auto &r : regionInstrs_)
        r = 0;
}

void
Markers::clear()
{
    byPc_.clear();
    names_.clear();
    hits_.clear();
    regionInstrs_.clear();
}

} // namespace tarch::core
