/**
 * @file
 * Zero-cost PC markers: the harness registers interesting guest PCs
 * (bytecode handler entries, slow-path entries) and the core bumps a
 * counter whenever one is fetched.  This is how per-bytecode execution
 * profiles (paper Figures 2 and 9) are collected without perturbing the
 * measured instruction stream.
 */

#ifndef TARCH_CORE_MARKERS_H
#define TARCH_CORE_MARKERS_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace tarch::core {

class Markers
{
  public:
    /** Register a counter for @p pc; returns its id.  One marker per PC. */
    size_t add(uint64_t pc, std::string name);

    size_t count() const { return names_.size(); }
    const std::string &name(size_t id) const { return names_[id]; }
    uint64_t hits(size_t id) const { return hits_[id]; }

    /** Total hits across all markers whose name equals @p name. */
    uint64_t hitsByName(const std::string &name) const;

    const std::unordered_map<uint64_t, size_t> &byPc() const { return byPc_; }
    void bump(size_t id) { ++hits_[id]; }
    void resetHits();

    /**
     * Region accounting: every instruction executed after marker @p id
     * (until the next marker) is attributed to that marker's region.
     * Gives per-handler dynamic instruction counts (paper Figure 2b).
     */
    void bumpRegion(size_t id) { ++regionInstrs_[id]; }

    /** Charge @p n extra instructions to region @p id in one step (the
        host-call instruction lump lands on the region active at the
        hcall). */
    void bumpRegionBy(size_t id, uint64_t n) { regionInstrs_[id] += n; }
    uint64_t regionInstrs(size_t id) const { return regionInstrs_[id]; }
    uint64_t regionInstrsByName(const std::string &name) const;

    /**
     * Drop every registered marker (sessions re-lay the interpreter per
     * submitted chunk and re-register the new image's markers from
     * scratch; loadProgram rebuilds the pc -> index map afterwards).
     */
    void clear();

    /** Hit/region counters for machine snapshots.  The pc -> id map and
        names are derived from the program image and are rebuilt by the
        owning VM before counters are restored. */
    struct Snapshot {
        std::vector<uint64_t> hits;
        std::vector<uint64_t> regionInstrs;
    };

    void
    saveState(Snapshot &out) const
    {
        out.hits = hits_;
        out.regionInstrs = regionInstrs_;
    }

    /** False (counters unchanged) unless the snapshot covers exactly
        the markers currently registered. */
    bool
    restoreState(const Snapshot &in)
    {
        if (in.hits.size() != hits_.size() ||
            in.regionInstrs.size() != regionInstrs_.size())
            return false;
        hits_ = in.hits;
        regionInstrs_ = in.regionInstrs;
        return true;
    }

  private:
    std::unordered_map<uint64_t, size_t> byPc_;
    std::vector<std::string> names_;
    std::vector<uint64_t> hits_;
    std::vector<uint64_t> regionInstrs_;
};

} // namespace tarch::core

#endif // TARCH_CORE_MARKERS_H
