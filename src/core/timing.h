/**
 * @file
 * In-order single-issue 5-stage pipeline timing model (Table 6).
 *
 * Rather than simulating stage latches, the model performs exact
 * per-instruction cycle accounting for a fully-bypassed in-order pipe:
 *
 *   issue(i) = issue(i-1) + 1 + fetch stalls (I-cache / I-TLB misses)
 *            + redirect penalty left by a mispredicted control transfer
 *            + operand stalls (producer latency not yet elapsed)
 *            + structural stalls from blocking D-cache misses.
 *
 * Producer-ready bookkeeping:  a result of latency L issued at cycle C is
 * bypassable at cycle C+L; a consumer issued at cycle X reads operands at
 * X, so it stalls max(0, C+L-X).  Single-cycle ALU results (L=1) reach
 * the next instruction with no stall; loads have L=2 (1-cycle D-cache,
 * one load-use bubble); FP and mul/div units are longer but pipelined.
 * This is cycle-exact for an in-order, single-issue, blocking-miss core
 * of the Rocket class.
 */

#ifndef TARCH_CORE_TIMING_H
#define TARCH_CORE_TIMING_H

#include <array>
#include <cstdint>

#include "isa/opcode.h"

namespace tarch::core {

struct TimingConfig {
    unsigned redirectPenalty = 2;  ///< Table 6: 2-cycle branch miss penalty
    unsigned latIntAlu = 1;
    unsigned latIntMul = 4;
    unsigned latIntDiv = 33;
    unsigned latLoad = 2;          ///< 1-cycle D-cache + load-use bubble
    unsigned latFpAlu = 4;
    unsigned latFpMul = 4;
    unsigned latFpDiv = 20;
    unsigned latFpSqrt = 25;
    unsigned drainCycles = 4;      ///< pipeline drain at halt
};

class TimingModel
{
  public:
    explicit TimingModel(const TimingConfig &config = {});

    /** Begin the next instruction; @p fetch_stall is extra fetch latency. */
    void startInstr(unsigned fetch_stall);

    /** Declare a source register (0-31 GPR, 32-63 FPR); stalls if needed. */
    void useReg(unsigned reg);

    /** Extra cycles from a blocking D-cache / D-TLB event. */
    void memStall(unsigned extra);

    /** Declare the destination register with the producing latency. */
    void setRegReady(unsigned reg, unsigned latency);

    /** Latency for an execution class (dest-ready delta from issue). */
    unsigned latencyFor(isa::ExecClass klass) const;

    /** Charge the redirect penalty to the next instruction. */
    void redirect();

    /** Charge a flat lump (host-call models). */
    void flatCost(uint64_t cycles);

    /** Cycles elapsed including the final drain. */
    uint64_t cycles() const { return issue_ + config_.drainCycles; }

    const TimingConfig &config() const { return config_; }

  private:
    TimingConfig config_;
    uint64_t issue_ = 0;
    unsigned pendingRedirect_ = 0;
    std::array<uint64_t, 64> regReady_{};
};

} // namespace tarch::core

#endif // TARCH_CORE_TIMING_H
