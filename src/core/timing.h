/**
 * @file
 * In-order single-issue 5-stage pipeline timing model (Table 6).
 *
 * Rather than simulating stage latches, the model performs exact
 * per-instruction cycle accounting for a fully-bypassed in-order pipe:
 *
 *   issue(i) = issue(i-1) + 1 + fetch stalls (I-cache / I-TLB misses)
 *            + redirect penalty left by a mispredicted control transfer
 *            + operand stalls (producer latency not yet elapsed)
 *            + structural stalls from blocking D-cache misses.
 *
 * Producer-ready bookkeeping:  a result of latency L issued at cycle C is
 * bypassable at cycle C+L; a consumer issued at cycle X reads operands at
 * X, so it stalls max(0, C+L-X).  Single-cycle ALU results (L=1) reach
 * the next instruction with no stall; loads have L=2 (1-cycle D-cache,
 * one load-use bubble); FP and mul/div units are longer but pipelined.
 * This is cycle-exact for an in-order, single-issue, blocking-miss core
 * of the Rocket class.
 */

#ifndef TARCH_CORE_TIMING_H
#define TARCH_CORE_TIMING_H

#include <array>
#include <cstdint>

#include "isa/opcode.h"

namespace tarch::core {

struct TimingConfig {
    unsigned redirectPenalty = 2;  ///< Table 6: 2-cycle branch miss penalty
    unsigned latIntAlu = 1;
    unsigned latIntMul = 4;
    unsigned latIntDiv = 33;
    unsigned latLoad = 2;          ///< 1-cycle D-cache + load-use bubble
    unsigned latFpAlu = 4;
    unsigned latFpMul = 4;
    unsigned latFpDiv = 20;
    unsigned latFpSqrt = 25;
    unsigned drainCycles = 4;      ///< pipeline drain at halt
};

class TimingModel
{
  public:
    explicit TimingModel(const TimingConfig &config = {});

    // The per-instruction mutators are inline: both execution engines
    // call them for every retired instruction (the fast-path block
    // executor several times per record), so they must not cost a
    // cross-TU call each.

    /** Begin the next instruction; @p fetch_stall is extra fetch latency. */
    void
    startInstr(unsigned fetch_stall)
    {
        issue_ += 1 + fetch_stall + pendingRedirect_;
        pendingRedirect_ = 0;
    }

    /** Declare a source register (0-31 GPR, 32-63 FPR); stalls if needed. */
    void
    useReg(unsigned reg)
    {
        if (reg == 0)
            return;  // x0 is always ready
        if (regReady_[reg] > issue_)
            issue_ = regReady_[reg];
    }

    /**
     * Hazard-check two source registers at once, branch-free (the block
     * executor's pre-validated records use 0 for "no source").
     * Bit-identical to useReg(s1); useReg(s2): max is associative,
     * regReady_[0] is pinned at 0 (useReg/setRegReady skip reg 0) and
     * issue_ is positive once any instruction has started, so a 0
     * source can never raise issue_.
     */
    void
    useSrcs(unsigned s1, unsigned s2)
    {
        const uint64_t r1 = regReady_[s1];
        const uint64_t r2 = regReady_[s2];
        const uint64_t limit = r1 > r2 ? r1 : r2;
        if (limit > issue_)
            issue_ = limit;
    }

    /** Extra cycles from a blocking D-cache / D-TLB event. */
    void memStall(unsigned extra) { issue_ += extra; }

    /** Declare the destination register with the producing latency. */
    void
    setRegReady(unsigned reg, unsigned latency)
    {
        if (reg == 0)
            return;
        regReady_[reg] = issue_ + latency;
    }

    /** Latency for an execution class (dest-ready delta from issue). */
    unsigned latencyFor(isa::ExecClass klass) const;

    /** Charge the redirect penalty to the next instruction. */
    void redirect() { pendingRedirect_ += config_.redirectPenalty; }

    /** Charge a flat lump (host-call models). */
    void flatCost(uint64_t cycles) { issue_ += cycles; }

    /** Cycles elapsed including the final drain. */
    uint64_t cycles() const { return issue_ + config_.drainCycles; }

    const TimingConfig &config() const { return config_; }

    /** Complete pipeline accounting state for machine snapshots. */
    struct Snapshot {
        uint64_t issue = 0;
        unsigned pendingRedirect = 0;
        std::array<uint64_t, 64> regReady{};
    };

    void
    saveState(Snapshot &out) const
    {
        out.issue = issue_;
        out.pendingRedirect = pendingRedirect_;
        out.regReady = regReady_;
    }

    void
    restoreState(const Snapshot &in)
    {
        issue_ = in.issue;
        pendingRedirect_ = in.pendingRedirect;
        regReady_ = in.regReady;
    }

  private:
    TimingConfig config_;
    uint64_t issue_ = 0;
    unsigned pendingRedirect_ = 0;
    std::array<uint64_t, 64> regReady_{};
};

} // namespace tarch::core

#endif // TARCH_CORE_TIMING_H
