/**
 * @file
 * Aggregated per-run statistics, mirroring the custom performance
 * counters the paper added to Rocket (Section 6).
 */

#ifndef TARCH_CORE_STATS_H
#define TARCH_CORE_STATS_H

#include <cstdint>

#include "branch/branch_unit.h"
#include "mem/cache.h"
#include "mem/tlb.h"
#include "typed/type_rule_table.h"

namespace tarch::core {

struct CoreStats {
    uint64_t instructions = 0;  ///< retired, including host-call charges
    uint64_t cycles = 0;
    uint64_t loads = 0;
    uint64_t stores = 0;

    branch::BranchUnitStats branches;
    mem::CacheStats icache;
    mem::CacheStats dcache;
    mem::TlbStats itlb;
    mem::TlbStats dtlb;

    typed::TrtStats trt;            ///< xadd/xsub/xmul/tchk lookups
    uint64_t typeOverflowMisses = 0; ///< fast-path aborts due to overflow
    uint64_t chklbChecks = 0;
    uint64_t chklbMisses = 0;
    uint64_t deoptRedirects = 0;  ///< thdl path-selector slow-path picks
    uint64_t deoptProbes = 0;
    uint64_t hostcalls = 0;

    double
    branchMpki() const
    {
        return instructions == 0
                   ? 0.0
                   : 1000.0 * static_cast<double>(branches.mispredicts()) /
                         static_cast<double>(instructions);
    }

    double
    icacheMpki() const
    {
        return instructions == 0
                   ? 0.0
                   : 1000.0 * static_cast<double>(icache.misses) /
                         static_cast<double>(instructions);
    }

    double
    dcacheMpki() const
    {
        return instructions == 0
                   ? 0.0
                   : 1000.0 * static_cast<double>(dcache.misses) /
                         static_cast<double>(instructions);
    }

    double
    ipc() const
    {
        return cycles == 0 ? 0.0
                           : static_cast<double>(instructions) /
                                 static_cast<double>(cycles);
    }
};

} // namespace tarch::core

#endif // TARCH_CORE_STATS_H
