/**
 * @file
 * Aggregated per-run statistics, mirroring the custom performance
 * counters the paper added to Rocket (Section 6).
 */

#ifndef TARCH_CORE_STATS_H
#define TARCH_CORE_STATS_H

#include <cstdint>
#include <string>

#include "branch/branch_unit.h"
#include "mem/cache.h"
#include "mem/tlb.h"
#include "typed/type_rule_table.h"

namespace tarch::core {

struct CoreStats {
    uint64_t instructions = 0;  ///< retired, including host-call charges
    uint64_t cycles = 0;
    uint64_t loads = 0;
    uint64_t stores = 0;

    branch::BranchUnitStats branches;
    mem::CacheStats icache;
    mem::CacheStats dcache;
    mem::TlbStats itlb;
    mem::TlbStats dtlb;

    typed::TrtStats trt;            ///< xadd/xsub/xmul/tchk lookups
    uint64_t typeOverflowMisses = 0; ///< fast-path aborts due to overflow
    uint64_t chklbChecks = 0;
    uint64_t chklbMisses = 0;
    uint64_t deoptRedirects = 0;  ///< thdl path-selector slow-path picks
    uint64_t deoptProbes = 0;
    uint64_t hostcalls = 0;

    double
    branchMpki() const
    {
        return instructions == 0
                   ? 0.0
                   : 1000.0 * static_cast<double>(branches.mispredicts()) /
                         static_cast<double>(instructions);
    }

    double
    icacheMpki() const
    {
        return instructions == 0
                   ? 0.0
                   : 1000.0 * static_cast<double>(icache.misses) /
                         static_cast<double>(instructions);
    }

    double
    dcacheMpki() const
    {
        return instructions == 0
                   ? 0.0
                   : 1000.0 * static_cast<double>(dcache.misses) /
                         static_cast<double>(instructions);
    }

    double
    ipc() const
    {
        return cycles == 0 ? 0.0
                           : static_cast<double>(instructions) /
                                 static_cast<double>(cycles);
    }
};

/**
 * Compare every one of the 26 counters; returns "" when bit-identical,
 * else one "name: a != b" line per differing counter (newline-joined).
 * This is the bit-identity contract checked between the exact and
 * predecoded execution engines (docs/FASTPATH.md) by test_fastpath and
 * the fuzz oracle's exec-mode axis.
 */
inline std::string
describeStatsDiff(const CoreStats &a, const CoreStats &b)
{
    std::string diff;
    const auto field = [&diff](const char *name, uint64_t x, uint64_t y) {
        if (x == y)
            return;
        if (!diff.empty())
            diff += '\n';
        diff += name;
        diff += ": " + std::to_string(x) + " != " + std::to_string(y);
    };
    field("instructions", a.instructions, b.instructions);
    field("cycles", a.cycles, b.cycles);
    field("loads", a.loads, b.loads);
    field("stores", a.stores, b.stores);
    field("branches.condBranches", a.branches.condBranches,
          b.branches.condBranches);
    field("branches.condMispredicts", a.branches.condMispredicts,
          b.branches.condMispredicts);
    field("branches.jumps", a.branches.jumps, b.branches.jumps);
    field("branches.jumpMispredicts", a.branches.jumpMispredicts,
          b.branches.jumpMispredicts);
    field("icache.accesses", a.icache.accesses, b.icache.accesses);
    field("icache.misses", a.icache.misses, b.icache.misses);
    field("icache.writebacks", a.icache.writebacks, b.icache.writebacks);
    field("dcache.accesses", a.dcache.accesses, b.dcache.accesses);
    field("dcache.misses", a.dcache.misses, b.dcache.misses);
    field("dcache.writebacks", a.dcache.writebacks, b.dcache.writebacks);
    field("itlb.accesses", a.itlb.accesses, b.itlb.accesses);
    field("itlb.misses", a.itlb.misses, b.itlb.misses);
    field("dtlb.accesses", a.dtlb.accesses, b.dtlb.accesses);
    field("dtlb.misses", a.dtlb.misses, b.dtlb.misses);
    field("trt.lookups", a.trt.lookups, b.trt.lookups);
    field("trt.hits", a.trt.hits, b.trt.hits);
    field("typeOverflowMisses", a.typeOverflowMisses,
          b.typeOverflowMisses);
    field("chklbChecks", a.chklbChecks, b.chklbChecks);
    field("chklbMisses", a.chklbMisses, b.chklbMisses);
    field("deoptRedirects", a.deoptRedirects, b.deoptRedirects);
    field("deoptProbes", a.deoptProbes, b.deoptProbes);
    field("hostcalls", a.hostcalls, b.hostcalls);
    return diff;
}

} // namespace tarch::core

#endif // TARCH_CORE_STATS_H
