/**
 * @file
 * Host-call (hcall) registry: native runtime intrinsics the guest VMs use
 * for cold services (allocation, string hashing, number formatting, I/O).
 *
 * These model the native C library / runtime code the paper's
 * interpreters call into.  Each intrinsic carries a fixed instruction and
 * cycle cost that is charged identically in every ISA variant, so host
 * calls contribute only an Amdahl's-law serial fraction, never a
 * cross-variant delta.  Arguments arrive in a0-a7, the result is returned
 * in a0 (and fa0 for FP results).
 */

#ifndef TARCH_CORE_HOSTCALL_H
#define TARCH_CORE_HOSTCALL_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/regfile.h"
#include "mem/main_memory.h"

namespace tarch::core {

/** Per-invocation charged cost. */
struct HcallCost {
    uint64_t instructions = 40;
    uint64_t cycles = 60;
};

/** Execution context handed to an intrinsic. */
struct HostEnv {
    RegFile &regs;
    mem::MainMemory &memory;
    std::string &output;    ///< guest stdout
    uint64_t &heapBreak;    ///< bump-allocator cursor in guest memory
};

class HostcallRegistry
{
  public:
    using Fn = std::function<void(HostEnv &)>;

    /** Register intrinsic @p id (the hcall immediate). */
    void add(unsigned id, std::string name, HcallCost cost, Fn fn);

    bool has(unsigned id) const;
    const std::string &name(unsigned id) const;
    const HcallCost &cost(unsigned id) const;
    void invoke(unsigned id, HostEnv &env) const;

  private:
    struct Entry {
        bool valid = false;
        std::string name;
        HcallCost cost;
        Fn fn;
    };

    const Entry &entry(unsigned id) const;

    std::vector<Entry> entries_;
};

} // namespace tarch::core

#endif // TARCH_CORE_HOSTCALL_H
