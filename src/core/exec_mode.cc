#include "core/exec_mode.h"

#include <cstdlib>

#include "common/log.h"

namespace tarch::core {

std::string_view
execModeName(ExecMode mode)
{
    return mode == ExecMode::Predecoded ? "predecoded" : "exact";
}

std::optional<ExecMode>
execModeFromName(std::string_view name)
{
    if (name == "exact")
        return ExecMode::Exact;
    if (name == "predecoded")
        return ExecMode::Predecoded;
    return std::nullopt;
}

ExecMode
defaultExecMode()
{
    static const ExecMode cached = [] {
        const char *env = std::getenv("TARCH_EXEC_MODE");
        if (!env || *env == '\0')
            return ExecMode::Exact;
        const auto mode = execModeFromName(env);
        if (!mode)
            tarch_fatal("TARCH_EXEC_MODE='%s' (want exact|predecoded)",
                        env);
        return *mode;
    }();
    return cached;
}

} // namespace tarch::core
