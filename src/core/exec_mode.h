/**
 * @file
 * Core execution-mode selector (docs/FASTPATH.md).
 *
 * Exact is the per-cycle ground-truth interpreter; Predecoded executes
 * straight-line runs from the decoded basic-block cache.  The two modes
 * are bit-identical by contract: every CoreStats counter and every byte
 * of architectural state must match between them, which is enforced by
 * tests/test_fastpath.cc and the fuzz-oracle exec-mode axis.
 */

#ifndef TARCH_CORE_EXEC_MODE_H
#define TARCH_CORE_EXEC_MODE_H

#include <cstdint>
#include <optional>
#include <string_view>

namespace tarch::core {

enum class ExecMode : uint8_t {
    Exact,      ///< per-instruction interpreter (ground truth)
    Predecoded, ///< basic-block cache fast path (bit-identical)
};

/** "exact" / "predecoded". */
std::string_view execModeName(ExecMode mode);

/** Parse an --exec-mode value; nullopt on anything unknown. */
std::optional<ExecMode> execModeFromName(std::string_view name);

/**
 * The process-wide default mode: TARCH_EXEC_MODE in the environment
 * ("exact" or "predecoded", read once and cached), else Exact.  This is
 * what lets scripts/ci.sh re-run the existing test binaries as a
 * predecoded differential pass without touching any test code.
 */
ExecMode defaultExecMode();

} // namespace tarch::core

#endif // TARCH_CORE_EXEC_MODE_H
