/**
 * @file
 * Unified register file (paper Section 3.1): each integer register
 * carries a 64-bit value, an 8-bit type tag and the 1-bit F/I flag.
 * A separate conventional FP register file serves the baseline datapath
 * (fld/fadd.d/...); typed code performs FP work in the unified file via
 * the polymorphic instructions.
 */

#ifndef TARCH_CORE_REGFILE_H
#define TARCH_CORE_REGFILE_H

#include <array>
#include <cstdint>

#include "isa/instr.h"
#include "typed/tag_codec.h"

namespace tarch::core {

struct TaggedReg {
    uint64_t v = 0;
    uint8_t t = typed::kUntypedTag;
    bool f = false;
};

class RegFile
{
  public:
    /** Read an integer register (x0 reads as zero/untyped). */
    const TaggedReg &gpr(unsigned idx) const { return gprs_[idx]; }

    /** Untyped write: marks the destination kUntypedTag (Section 3.2). */
    void
    writeGpr(unsigned idx, uint64_t value)
    {
        if (idx == 0)
            return;
        gprs_[idx] = {value, typed::kUntypedTag, false};
    }

    /** Typed write from tld/xadd/tset. */
    void
    writeGprTagged(unsigned idx, uint64_t value, uint8_t tag, bool fp)
    {
        if (idx == 0)
            return;
        gprs_[idx] = {value, tag, fp};
    }

    /** Update only the tag fields (tset). */
    void
    writeGprTag(unsigned idx, uint8_t tag, bool fp)
    {
        if (idx == 0)
            return;
        gprs_[idx].t = tag;
        gprs_[idx].f = fp;
    }

    uint64_t fpr(unsigned idx) const { return fprs_[idx]; }
    void writeFpr(unsigned idx, uint64_t bits) { fprs_[idx] = bits; }

    double
    fprAsDouble(unsigned idx) const
    {
        double d;
        __builtin_memcpy(&d, &fprs_[idx], 8);
        return d;
    }

    void
    writeFprDouble(unsigned idx, double value)
    {
        if (value != value) {  // canonical quiet NaN (see core.cc asBits)
            fprs_[idx] = 0x7FF8000000000000ULL;
            return;
        }
        __builtin_memcpy(&fprs_[idx], &value, 8);
    }

    /** Full architectural register state for machine snapshots. */
    struct Snapshot {
        std::array<TaggedReg, isa::kNumGprs> gprs{};
        std::array<uint64_t, isa::kNumFprs> fprs{};
    };

    void
    saveState(Snapshot &out) const
    {
        out.gprs = gprs_;
        out.fprs = fprs_;
    }

    void
    restoreState(const Snapshot &in)
    {
        gprs_ = in.gprs;
        fprs_ = in.fprs;
        gprs_[0] = {};  // x0 stays pinned to zero/untyped
    }

  private:
    std::array<TaggedReg, isa::kNumGprs> gprs_{};
    std::array<uint64_t, isa::kNumFprs> fprs_{};
};

} // namespace tarch::core

#endif // TARCH_CORE_REGFILE_H
