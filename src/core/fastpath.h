/**
 * @file
 * Predecoded basic-block cache for the fast-path core (docs/FASTPATH.md).
 *
 * A DecodedBlock is a straight-line run of instructions starting at an
 * entry PC and ending at the first control-flow or type-check boundary
 * (branch/jump, polymorphic ALU, tchk/thdl/chklb, typed-config write,
 * sys/hcall/halt).  Each record pre-resolves everything the per-cycle
 * model would otherwise recompute every fetch: the handler function
 * pointer, the hazard source registers, the destination register with
 * its producing latency, and the marker id.
 *
 * The cache is indexed by text index (entry PC), invalidated as a whole
 * on stores into the text segment and on typed-config/TRT
 * reconfiguration, and flushed when it exceeds its block budget.  The
 * executor (Core::stepBlock in fastpath.cc) replays timing, branch
 * prediction, cache/TLB accesses, probe-bus events and deopt behaviour
 * from these records — it must stay bit-identical to Core::step().
 */

#ifndef TARCH_CORE_FASTPATH_H
#define TARCH_CORE_FASTPATH_H

#include <cstdint>
#include <memory>
#include <vector>

#include "isa/instr.h"

namespace tarch::core {

class Core;

namespace fastpath {

struct DecodedInstr;

/** Pre-resolved dispatch target: executes the opcode body only (the
    shared per-instruction bookkeeping lives in the block executor). */
using Handler = void (*)(Core &core, const DecodedInstr &rec,
                         uint64_t &next_pc);

/** One fully-decoded instruction record. */
struct DecodedInstr {
    isa::Instr instr;
    Handler fn = nullptr;
    uint64_t pc = 0;
    int32_t marker = -1;   ///< markerByIndex_ entry (-1 = none)
    uint16_t dstLat = 0;   ///< producing latency for dst
    uint8_t src1 = 0;      ///< hazard source (GPR 0-31, FPR 32-63); 0 = none
    uint8_t src2 = 0;      ///< (x0 never stalls, so 0 is a safe sentinel)
    uint8_t dst = 0;       ///< destination register; 0 = none

    /**
     * Set when this pc shares BOTH the I-cache block and the I-TLB page
     * with the previous record of the block (decided once at build
     * time).  The executor then skips the fetch lookup entirely and
     * batches the repeat-hit bookkeeping (Cache/Tlb::repeatBump),
     * flushing at run boundaries — valid because only fetches advance
     * the I-side structures and a block executes its records in order
     * from the entry, so the fetch memo still points at this line/page.
     * Bit-identical: a same-block fetch is a guaranteed hit with zero
     * extra stall.
     */
    uint8_t fetchRepeat = 0;
};

/** A straight-line run of decoded records ending at a boundary. */
struct DecodedBlock {
    uint64_t entryPc = 0;
    std::vector<DecodedInstr> instrs;
};

struct FastPathConfig {
    unsigned maxBlocks = 4096;     ///< whole-cache flush beyond this
    unsigned maxBlockInstrs = 64;  ///< straight-line run cap
};

/** Block-cache observability (NOT part of the 26 CoreStats counters —
    the fast path must not change those). */
struct FastPathStats {
    uint64_t blockBuilds = 0;
    uint64_t blockHits = 0;
    uint64_t storeInvalidations = 0;   ///< stores that overlapped text
    uint64_t configInvalidations = 0;  ///< typed-config/TRT writes
    uint64_t capacityFlushes = 0;
};

/** Entry-PC-indexed block store (slot per text index). */
class BlockCache
{
  public:
    explicit BlockCache(const FastPathConfig &config = {})
        : config_(config)
    {
    }

    /** Size the index for a freshly loaded text segment. */
    void
    reset(size_t text_len)
    {
        blocks_.clear();
        blocks_.resize(text_len);
        count_ = 0;
    }

    const DecodedBlock *
    at(size_t idx) const
    {
        return blocks_[idx].get();
    }

    /**
     * Store a block at @p idx.  When the budget is exhausted the whole
     * cache is flushed first (deterministic capacity policy).
     * @return whether the insert flushed the cache
     */
    bool
    insert(size_t idx, std::unique_ptr<DecodedBlock> block)
    {
        bool flushed = false;
        if (count_ >= config_.maxBlocks) {
            flush();
            flushed = true;
        }
        if (!blocks_[idx])
            ++count_;
        blocks_[idx] = std::move(block);
        return flushed;
    }

    void
    flush()
    {
        for (auto &slot : blocks_)
            slot.reset();
        count_ = 0;
    }

    size_t size() const { return count_; }
    const FastPathConfig &config() const { return config_; }

  private:
    FastPathConfig config_;
    std::vector<std::unique_ptr<DecodedBlock>> blocks_;
    size_t count_ = 0;
};

} // namespace fastpath
} // namespace tarch::core

#endif // TARCH_CORE_FASTPATH_H
