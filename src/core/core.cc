#include "core/core.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/bitops.h"
#include "common/log.h"
#include "common/strutil.h"
#include "isa/disasm.h"
#include "isa/encoding.h"

namespace tarch::core {

using isa::Instr;
using isa::Opcode;

namespace {

double
asDouble(uint64_t bits)
{
    double d;
    std::memcpy(&d, &bits, 8);
    return d;
}

uint64_t
asBits(double d)
{
    // Canonicalize NaNs to the positive quiet pattern so an FP result can
    // never alias a NaN-boxed value (Section 4.2 relies on engines only
    // producing canonical NaNs).
    if (d != d)
        return 0x7FF8000000000000ULL;
    uint64_t bits;
    std::memcpy(&bits, &d, 8);
    return bits;
}

int64_t
sext32(uint64_t v)
{
    return static_cast<int64_t>(static_cast<int32_t>(v));
}

typed::RuleOp
ruleOpFor(Opcode op)
{
    switch (op) {
      case Opcode::XADD: return typed::RuleOp::Add;
      case Opcode::XSUB: return typed::RuleOp::Sub;
      case Opcode::XMUL: return typed::RuleOp::Mul;
      default: return typed::RuleOp::Chk;
    }
}

} // namespace

Core::Core(const CoreConfig &config, const HostcallRegistry *hostcalls)
    : config_(config),
      hostcalls_(hostcalls),
      dram_(config.dram),
      icache_(config.icache, dram_),
      dcache_(config.dcache, dram_),
      itlb_(config.itlb),
      dtlb_(config.dtlb),
      branchUnit_(config.branch),
      trt_(config.trtCapacity),
      timing_(config.timing),
      blockCache_(config.fastPath),
      heapBreak_(config.heapBase)
{
    regs_.writeGpr(isa::reg::sp, config_.stackTop);
    if (config_.deopt.enabled) {
        deoptCounters_.assign(config_.deopt.tableEntries, 0);
        deoptTags_.assign(config_.deopt.tableEntries, 0);
    }
}

void
Core::loadProgram(const assembler::Program &program)
{
    textBase_ = program.textBase;
    text_ = program.text;
    textEnd_ = textBase_ + 4 * text_.size();
    blockCache_.reset(text_.size());
    fastFlushPending_ = false;
    // Mirror the encoded text into guest memory for completeness.
    for (size_t i = 0; i < text_.size(); ++i) {
        const auto word = isa::encode(text_[i]);
        if (!word)
            tarch_fatal("unencodable instruction at index %zu: %s", i,
                        isa::disassemble(text_[i]).c_str());
        memory_.write32(program.pcAt(i), *word);
    }
    if (!program.data.empty())
        memory_.writeBlock(program.dataBase, program.data.data(),
                           program.data.size());
    pc_ = program.entry;
    halted_ = false;
    labels_ = obs::LabelMap(program);
    if (tracer_)
        tracer_->setLabels(&labels_);
    // Resolve markers to text indexes for O(1) per-instruction lookup.
    markerByIndex_.assign(text_.size(), -1);
    for (const auto &[pc, id] : markers_.byPc()) {
        if (pc < textBase_ || pc >= textBase_ + 4 * text_.size())
            tarch_fatal("marker pc 0x%llx outside text",
                        static_cast<unsigned long long>(pc));
        markerByIndex_[(pc - textBase_) / 4] = static_cast<int32_t>(id);
    }
}

unsigned
Core::fetchStall(uint64_t pc)
{
    if (!bus_.active()) {
        unsigned extra = itlb_.access(pc);
        extra += icache_.access(pc, false) - config_.icache.hitLatency;
        return extra;
    }
    // Instrumented path: detect misses by differencing the component
    // counters around the access, so the timing math stays identical.
    const uint64_t itlb_miss0 = itlb_.stats().misses;
    unsigned extra = itlb_.access(pc);
    if (itlb_.stats().misses != itlb_miss0)
        emit(obs::EventKind::ItlbMiss, pc);
    const uint64_t ic_miss0 = icache_.stats().misses;
    extra += icache_.access(pc, false) - config_.icache.hitLatency;
    if (icache_.stats().misses != ic_miss0)
        emit(obs::EventKind::IcacheMiss, pc);
    return extra;
}

void
Core::textStoreSlow(uint64_t addr, unsigned len)
{
    ++fastStats_.storeInvalidations;
    fastFlushPending_ = true;
    // Re-decode every text word the store touched, AFTER the bytes
    // landed in memory, so the very next fetch executes the new
    // encoding.  A word that no longer decodes becomes a NumOpcodes
    // sentinel; executing it is a clean fatal.
    const uint64_t lo = std::max(addr, textBase_) & ~3ULL;
    const uint64_t hi = std::min(addr + len, textEnd_);
    for (uint64_t word_pc = lo; word_pc < hi; word_pc += 4) {
        const size_t idx = (word_pc - textBase_) / 4;
        const auto decoded = isa::decode(memory_.read32(word_pc));
        text_[idx] =
            decoded ? *decoded : Instr{Opcode::NumOpcodes, 0, 0, 0, 0};
    }
}

unsigned
Core::dataAccess(uint64_t addr, bool is_write)
{
    if (!bus_.active()) {
        unsigned extra = dtlb_.access(addr);
        extra += dcache_.access(addr, is_write) - config_.dcache.hitLatency;
        return extra;
    }
    const uint64_t dtlb_miss0 = dtlb_.stats().misses;
    unsigned extra = dtlb_.access(addr);
    if (dtlb_.stats().misses != dtlb_miss0)
        emit(obs::EventKind::DtlbMiss, pc_, static_cast<int64_t>(addr));
    const uint64_t dc_miss0 = dcache_.stats().misses;
    extra += dcache_.access(addr, is_write) - config_.dcache.hitLatency;
    if (dcache_.stats().misses != dc_miss0)
        emit(obs::EventKind::DcacheMiss, pc_, static_cast<int64_t>(addr));
    return extra;
}

void
Core::doHalt(int code)
{
    halted_ = true;
    exitCode_ = code;
    emit(obs::EventKind::Halt, pc_, code);
}

void
Core::typeMissRedirect(uint64_t &next_pc)
{
    next_pc = typedState_.rhdl;
    timing_.redirect();
    if (config_.deopt.enabled) {
        uint8_t &ctr = deoptCounter(typedState_.rhdl);
        ctr = static_cast<uint8_t>(
            std::min<unsigned>(ctr + config_.deopt.missBump, 15));
    }
}

uint8_t &
Core::deoptCounter(uint64_t handler)
{
    const size_t idx =
        (handler >> 2) & (config_.deopt.tableEntries - 1);
    // Direct-mapped with tag replacement: a new handler steals the slot.
    if (deoptTags_[idx] != handler) {
        deoptTags_[idx] = handler;
        deoptCounters_[idx] = 0;
    }
    return deoptCounters_[idx];
}

void
Core::deoptHit()
{
    if (!config_.deopt.enabled)
        return;
    uint8_t &ctr = deoptCounter(typedState_.rhdl);
    if (ctr > 0)
        --ctr;
}

bool
Core::deoptSelect(uint64_t &next_pc)
{
    if (!config_.deopt.enabled)
        return false;
    const uint8_t ctr = deoptCounter(typedState_.rhdl);
    if (ctr < config_.deopt.threshold)
        return false;
    ++deoptRedirects_;
    if (config_.deopt.probeInterval &&
        deoptRedirects_ % config_.deopt.probeInterval == 0) {
        ++deoptProbes_;
        emit(obs::EventKind::DeoptProbe, pc_,
             static_cast<int64_t>(typedState_.rhdl));
        return false;  // probe the fast path once in a while
    }
    emit(obs::EventKind::DeoptRedirect, pc_,
         static_cast<int64_t>(typedState_.rhdl));
    next_pc = typedState_.rhdl;
    timing_.redirect();
    return true;
}

int
Core::run()
{
    if (config_.execMode == ExecMode::Predecoded) {
        while (stepBlock()) {
        }
        return exitCode_;
    }
    while (step()) {
    }
    return exitCode_;
}

Core::StopReason
Core::runToBreakpoint()
{
    while (!halted_) {
        for (const uint64_t bp : breakpoints_) {
            if (pc_ == bp)
                return StopReason::Breakpoint;
        }
        step();
    }
    return StopReason::Halted;
}

bool
Core::step()
{
    if (halted_)
        return false;
    if (instructions_ >= config_.maxInstructions) {
        emit(obs::EventKind::Fatal, pc_);
        tarch_fatal("instruction limit (%llu) exceeded at pc 0x%llx",
                    static_cast<unsigned long long>(config_.maxInstructions),
                    static_cast<unsigned long long>(pc_));
    }
    if (pc_ < textBase_ || pc_ >= textBase_ + 4 * text_.size() ||
        (pc_ & 3) != 0) {
        emit(obs::EventKind::Fatal, pc_);
        const std::string window =
            tracer_ ? "\nrecent instructions:\n" + tracer_->dump() : "";
        tarch_fatal("pc 0x%llx outside text segment%s",
                    static_cast<unsigned long long>(pc_),
                    window.c_str());
    }
    const size_t idx = (pc_ - textBase_) / 4;
    const Instr &instr = text_[idx];
    if (instr.op == Opcode::NumOpcodes) {
        // A store clobbered this word with bytes that no longer decode.
        emit(obs::EventKind::Fatal, pc_);
        const std::string window =
            tracer_ ? "\nrecent instructions:\n" + tracer_->dump() : "";
        tarch_fatal("undecodable instruction at pc 0x%llx "
                    "(self-modified text)%s",
                    static_cast<unsigned long long>(pc_), window.c_str());
    }
    const isa::OpcodeInfo &info = isa::opcodeInfo(instr.op);

    timing_.startInstr(fetchStall(pc_));
    if (markerByIndex_[idx] >= 0) {
        currentRegion_ = markerByIndex_[idx];
        markers_.bump(static_cast<size_t>(currentRegion_));
        emit(obs::EventKind::MarkerEnter, pc_, currentRegion_);
    }
    if (currentRegion_ >= 0)
        markers_.bumpRegion(static_cast<size_t>(currentRegion_));
    if (tracer_)
        tracer_->record(pc_, instr, instructions_);
    ++instructions_;

    // Operand hazard accounting (register ids: GPR 0-31, FPR 32-63).
    const auto src = [&](uint8_t reg, bool fp) {
        timing_.useReg(fp ? reg + 32U : reg);
    };
    switch (info.syntax) {
      case isa::Syntax::R3:
        src(instr.rs1, info.fpRs1);
        src(instr.rs2, info.fpRs2);
        break;
      case isa::Syntax::R2:
      case isa::Syntax::Rs1:
      case isa::Syntax::RegRegImm:
      case isa::Syntax::Load:
        src(instr.rs1, info.fpRs1);
        break;
      case isa::Syntax::Rs1Rs2:
      case isa::Syntax::Branch:
        src(instr.rs1, info.fpRs1);
        src(instr.rs2, info.fpRs2);
        break;
      case isa::Syntax::Store:
        src(instr.rs1, false);
        src(instr.rs2, info.fpRs2);
        break;
      default:
        break;
    }

    uint64_t next_pc = pc_ + 4;
    const uint64_t a = regs_.gpr(instr.rs1).v;
    const uint64_t b = regs_.gpr(instr.rs2).v;
    const int64_t sa = static_cast<int64_t>(a);
    const int64_t sb = static_cast<int64_t>(b);

    switch (instr.op) {
      case Opcode::ADD: regs_.writeGpr(instr.rd, a + b); break;
      case Opcode::SUB: regs_.writeGpr(instr.rd, a - b); break;
      case Opcode::MUL: regs_.writeGpr(instr.rd, a * b); break;
      case Opcode::MULH:
        regs_.writeGpr(instr.rd,
                       static_cast<uint64_t>(
                           (static_cast<__int128>(sa) * sb) >> 64));
        break;
      case Opcode::DIV:
        regs_.writeGpr(instr.rd,
                       b == 0 ? ~0ULL
                       : (sa == INT64_MIN && sb == -1)
                           ? static_cast<uint64_t>(INT64_MIN)
                           : static_cast<uint64_t>(sa / sb));
        break;
      case Opcode::DIVU:
        regs_.writeGpr(instr.rd, b == 0 ? ~0ULL : a / b);
        break;
      case Opcode::REM:
        regs_.writeGpr(instr.rd,
                       b == 0 ? a
                       : (sa == INT64_MIN && sb == -1)
                           ? 0
                           : static_cast<uint64_t>(sa % sb));
        break;
      case Opcode::REMU:
        regs_.writeGpr(instr.rd, b == 0 ? a : a % b);
        break;
      case Opcode::AND: regs_.writeGpr(instr.rd, a & b); break;
      case Opcode::OR:  regs_.writeGpr(instr.rd, a | b); break;
      case Opcode::XOR: regs_.writeGpr(instr.rd, a ^ b); break;
      case Opcode::SLL: regs_.writeGpr(instr.rd, a << (b & 63)); break;
      case Opcode::SRL: regs_.writeGpr(instr.rd, a >> (b & 63)); break;
      case Opcode::SRA:
        regs_.writeGpr(instr.rd, static_cast<uint64_t>(sa >> (b & 63)));
        break;
      case Opcode::SLT:
        regs_.writeGpr(instr.rd, sa < sb ? 1 : 0);
        break;
      case Opcode::SLTU:
        regs_.writeGpr(instr.rd, a < b ? 1 : 0);
        break;

      case Opcode::ADDW:
        regs_.writeGpr(instr.rd, static_cast<uint64_t>(sext32(a + b)));
        break;
      case Opcode::SUBW:
        regs_.writeGpr(instr.rd, static_cast<uint64_t>(sext32(a - b)));
        break;
      case Opcode::MULW:
        regs_.writeGpr(instr.rd, static_cast<uint64_t>(sext32(a * b)));
        break;
      case Opcode::DIVW: {
        const int32_t x = static_cast<int32_t>(a);
        const int32_t y = static_cast<int32_t>(b);
        int32_t q;
        if (y == 0)
            q = -1;
        else if (x == INT32_MIN && y == -1)
            q = INT32_MIN;
        else
            q = x / y;
        regs_.writeGpr(instr.rd, static_cast<uint64_t>(static_cast<int64_t>(q)));
        break;
      }
      case Opcode::REMW: {
        const int32_t x = static_cast<int32_t>(a);
        const int32_t y = static_cast<int32_t>(b);
        int32_t r;
        if (y == 0)
            r = x;
        else if (x == INT32_MIN && y == -1)
            r = 0;
        else
            r = x % y;
        regs_.writeGpr(instr.rd, static_cast<uint64_t>(static_cast<int64_t>(r)));
        break;
      }

      case Opcode::ADDI:
        regs_.writeGpr(instr.rd, a + static_cast<uint64_t>(instr.imm));
        break;
      case Opcode::ANDI:
        regs_.writeGpr(instr.rd, a & static_cast<uint64_t>(instr.imm));
        break;
      case Opcode::ORI:
        regs_.writeGpr(instr.rd, a | static_cast<uint64_t>(instr.imm));
        break;
      case Opcode::XORI:
        regs_.writeGpr(instr.rd, a ^ static_cast<uint64_t>(instr.imm));
        break;
      case Opcode::SLLI:
        regs_.writeGpr(instr.rd, a << (instr.imm & 63));
        break;
      case Opcode::SRLI:
        regs_.writeGpr(instr.rd, a >> (instr.imm & 63));
        break;
      case Opcode::SRAI:
        regs_.writeGpr(instr.rd,
                       static_cast<uint64_t>(sa >> (instr.imm & 63)));
        break;
      case Opcode::SLTI:
        regs_.writeGpr(instr.rd, sa < instr.imm ? 1 : 0);
        break;
      case Opcode::SLTIU:
        regs_.writeGpr(instr.rd,
                       a < static_cast<uint64_t>(instr.imm) ? 1 : 0);
        break;
      case Opcode::ADDIW:
        regs_.writeGpr(instr.rd,
                       static_cast<uint64_t>(
                           sext32(a + static_cast<uint64_t>(instr.imm))));
        break;
      case Opcode::SLLIW:
        regs_.writeGpr(instr.rd,
                       static_cast<uint64_t>(sext32(a << (instr.imm & 31))));
        break;
      case Opcode::SRLIW:
        regs_.writeGpr(instr.rd,
                       static_cast<uint64_t>(sext32(
                           static_cast<uint32_t>(a) >> (instr.imm & 31))));
        break;
      case Opcode::SRAIW:
        regs_.writeGpr(instr.rd,
                       static_cast<uint64_t>(static_cast<int64_t>(
                           static_cast<int32_t>(a) >> (instr.imm & 31))));
        break;

      case Opcode::LUI:
        regs_.writeGpr(instr.rd, static_cast<uint64_t>(instr.imm << 12));
        break;
      case Opcode::AUIPC:
        regs_.writeGpr(instr.rd, pc_ + static_cast<uint64_t>(instr.imm << 12));
        break;

      case Opcode::LB:
      case Opcode::LBU:
      case Opcode::LH:
      case Opcode::LHU:
      case Opcode::LW:
      case Opcode::LWU:
      case Opcode::LD:
      case Opcode::FLD: {
        const uint64_t addr = a + static_cast<uint64_t>(instr.imm);
        timing_.memStall(dataAccess(addr, false));
        ++loads_;
        uint64_t value = 0;
        switch (instr.op) {
          case Opcode::LB:
            value = static_cast<uint64_t>(
                static_cast<int64_t>(static_cast<int8_t>(memory_.read8(addr))));
            break;
          case Opcode::LBU: value = memory_.read8(addr); break;
          case Opcode::LH:
            value = static_cast<uint64_t>(static_cast<int64_t>(
                static_cast<int16_t>(memory_.read16(addr))));
            break;
          case Opcode::LHU: value = memory_.read16(addr); break;
          case Opcode::LW:
            value = static_cast<uint64_t>(static_cast<int64_t>(
                static_cast<int32_t>(memory_.read32(addr))));
            break;
          case Opcode::LWU: value = memory_.read32(addr); break;
          default: value = memory_.read64(addr); break;
        }
        if (instr.op == Opcode::FLD)
            regs_.writeFpr(instr.rd, value);
        else
            regs_.writeGpr(instr.rd, value);
        break;
      }
      case Opcode::SB:
      case Opcode::SH:
      case Opcode::SW:
      case Opcode::SD:
      case Opcode::FSD: {
        const uint64_t addr = a + static_cast<uint64_t>(instr.imm);
        timing_.memStall(dataAccess(addr, true));
        ++stores_;
        const uint64_t value = instr.op == Opcode::FSD
                                   ? regs_.fpr(instr.rs2)
                                   : b;
        switch (instr.op) {
          case Opcode::SB:
            memory_.write8(addr, static_cast<uint8_t>(value));
            noteStore(addr, 1);
            break;
          case Opcode::SH:
            memory_.write16(addr, static_cast<uint16_t>(value));
            noteStore(addr, 2);
            break;
          case Opcode::SW:
            memory_.write32(addr, static_cast<uint32_t>(value));
            noteStore(addr, 4);
            break;
          default:
            memory_.write64(addr, value);
            noteStore(addr, 8);
            break;
        }
        break;
      }

      case Opcode::BEQ:
      case Opcode::BNE:
      case Opcode::BLT:
      case Opcode::BGE:
      case Opcode::BLTU:
      case Opcode::BGEU: {
        bool taken = false;
        switch (instr.op) {
          case Opcode::BEQ:  taken = a == b; break;
          case Opcode::BNE:  taken = a != b; break;
          case Opcode::BLT:  taken = sa < sb; break;
          case Opcode::BGE:  taken = sa >= sb; break;
          case Opcode::BLTU: taken = a < b; break;
          default:           taken = a >= b; break;
        }
        const uint64_t target = pc_ + static_cast<uint64_t>(instr.imm);
        if (taken)
            next_pc = target;
        const bool mispredict = branchUnit_.condBranch(pc_, taken, target);
        if (mispredict)
            timing_.redirect();
        emit(obs::EventKind::Branch, pc_, taken ? 1 : 0, mispredict ? 1 : 0);
        break;
      }
      case Opcode::JAL: {
        const uint64_t target = pc_ + static_cast<uint64_t>(instr.imm);
        regs_.writeGpr(instr.rd, pc_ + 4);
        next_pc = target;
        const bool mispredict = branchUnit_.directJump(
            pc_, target, instr.rd == isa::reg::ra, pc_ + 4);
        if (mispredict)
            timing_.redirect();
        emit(obs::EventKind::Jump, pc_, 0, mispredict ? 1 : 0);
        break;
      }
      case Opcode::JALR: {
        const uint64_t target = (a + static_cast<uint64_t>(instr.imm)) & ~1ULL;
        const bool is_ret = instr.rd == 0 && instr.rs1 == isa::reg::ra;
        const bool is_call = instr.rd == isa::reg::ra;
        regs_.writeGpr(instr.rd, pc_ + 4);
        next_pc = target;
        const bool mispredict =
            branchUnit_.indirectJump(pc_, target, is_call, is_ret, pc_ + 4);
        if (mispredict)
            timing_.redirect();
        emit(obs::EventKind::Jump, pc_, 1, mispredict ? 1 : 0);
        break;
      }

      case Opcode::FADD_D:
      case Opcode::FSUB_D:
      case Opcode::FMUL_D:
      case Opcode::FDIV_D:
      case Opcode::FSQRT_D:
      case Opcode::FSGNJ_D:
      case Opcode::FSGNJN_D:
      case Opcode::FSGNJX_D:
      case Opcode::FEQ_D:
      case Opcode::FLT_D:
      case Opcode::FLE_D:
      case Opcode::FCVT_D_L:
      case Opcode::FCVT_L_D:
      case Opcode::FMV_X_D:
      case Opcode::FMV_D_X:
        execFp(instr);
        break;

      case Opcode::TLD: {
        const uint64_t addr = a + static_cast<uint64_t>(instr.imm);
        const int off = typedState_.tagConfig.tagDwordOffset();
        unsigned extra = dataAccess(addr, false);
        if (off != 0 &&
            (addr + off) / dcache_.blockBytes() != addr / dcache_.blockBytes())
            extra += dataAccess(addr + off, false);
        timing_.memStall(extra);
        ++loads_;
        const uint64_t value_dword = memory_.read64(addr);
        const uint64_t tag_dword =
            off != 0 ? memory_.read64(addr + off) : value_dword;
        const typed::ExtractedTag e =
            typed::TagCodec::extract(typedState_.tagConfig, value_dword,
                                     tag_dword);
        regs_.writeGprTagged(instr.rd, e.value, e.tag, e.fp);
        break;
      }
      case Opcode::TSD: {
        const uint64_t addr = a + static_cast<uint64_t>(instr.imm);
        const TaggedReg &srcreg = regs_.gpr(instr.rs2);
        const typed::InsertedTag ins = typed::TagCodec::insert(
            typedState_.tagConfig, srcreg.v, srcreg.t, srcreg.f);
        const int off = typedState_.tagConfig.tagDwordOffset();
        unsigned extra = dataAccess(addr, true);
        if (ins.writesTagDword &&
            (addr + off) / dcache_.blockBytes() != addr / dcache_.blockBytes())
            extra += dataAccess(addr + off, true);
        timing_.memStall(extra);
        ++stores_;
        memory_.write64(addr, ins.valueDword);
        noteStore(addr, 8);
        if (ins.writesTagDword) {
            memory_.write64(addr + off, ins.tagDword);
            noteStore(addr + off, 8);
        }
        break;
      }
      case Opcode::XADD:
      case Opcode::XSUB:
      case Opcode::XMUL: {
        const TaggedReg &rb = regs_.gpr(instr.rs1);
        const TaggedReg &rc = regs_.gpr(instr.rs2);
        const auto out = trt_.lookup(ruleOpFor(instr.op), rb.t, rc.t);
        if (!out) {
            emit(obs::EventKind::TrtMiss, pc_, rb.t, rc.t);
            typeMissRedirect(next_pc);
            break;
        }
        emit(obs::EventKind::TrtHit, pc_, rb.t, rc.t);
        deoptHit();
        const uint8_t tag = *out;
        const bool fp = (tag & 0x80) != 0;
        if (fp) {
            const double x = asDouble(rb.v);
            const double y = asDouble(rc.v);
            double r;
            if (instr.op == Opcode::XADD)
                r = x + y;
            else if (instr.op == Opcode::XSUB)
                r = x - y;
            else
                r = x * y;
            regs_.writeGprTagged(instr.rd, asBits(r), tag, true);
        } else if (config_.overflowMode == OverflowMode::Int32) {
            const int64_t x = sext32(rb.v);
            const int64_t y = sext32(rc.v);
            int64_t r;
            if (instr.op == Opcode::XADD)
                r = x + y;
            else if (instr.op == Opcode::XSUB)
                r = x - y;
            else
                r = x * y;
            if (r != sext32(static_cast<uint64_t>(r))) {
                ++typeOverflowMisses_;
                emit(obs::EventKind::TypeOverflow, pc_, rb.t, rc.t);
                typeMissRedirect(next_pc);
                break;
            }
            regs_.writeGprTagged(instr.rd,
                                 static_cast<uint32_t>(r), tag, false);
        } else {
            int64_t r;
            if (instr.op == Opcode::XADD)
                r = sa + sb;
            else if (instr.op == Opcode::XSUB)
                r = sa - sb;
            else
                r = sa * sb;
            regs_.writeGprTagged(instr.rd, static_cast<uint64_t>(r), tag,
                                 false);
        }
        break;
      }
      case Opcode::SETOFFSET:
        typedState_.tagConfig.offset = static_cast<uint8_t>(a & 0b111);
        noteTypedConfigWrite();
        break;
      case Opcode::SETMASK:
        typedState_.tagConfig.mask = static_cast<uint8_t>(a & 0xFF);
        noteTypedConfigWrite();
        break;
      case Opcode::SETSHIFT:
        typedState_.tagConfig.shift = static_cast<uint8_t>(a & 0x3F);
        noteTypedConfigWrite();
        break;
      case Opcode::SET_TRT:
        trt_.pushEncoded(static_cast<uint32_t>(a));
        noteTypedConfigWrite();
        break;
      case Opcode::FLUSH_TRT:
        trt_.flush();
        noteTypedConfigWrite();
        break;
      case Opcode::THDL:
        typedState_.rhdl = pc_ + static_cast<uint64_t>(instr.imm);
        // Section 5: thdl doubles as the fast-path selector.
        deoptSelect(next_pc);
        break;
      case Opcode::TCHK: {
        const TaggedReg &rb = regs_.gpr(instr.rs1);
        const TaggedReg &rc = regs_.gpr(instr.rs2);
        if (!trt_.lookup(typed::RuleOp::Chk, rb.t, rc.t)) {
            emit(obs::EventKind::TrtMiss, pc_, rb.t, rc.t);
            typeMissRedirect(next_pc);
        } else {
            emit(obs::EventKind::TrtHit, pc_, rb.t, rc.t);
            deoptHit();
        }
        break;
      }
      case Opcode::TGET:
        regs_.writeGpr(instr.rd, regs_.gpr(instr.rs1).t);
        break;
      case Opcode::TSET: {
        const uint8_t tag = static_cast<uint8_t>(a & 0xFF);
        regs_.writeGprTag(instr.rd, tag, (tag & 0x80) != 0);
        break;
      }

      case Opcode::SETTYPE:
        typedState_.chklbExpectedType = static_cast<uint16_t>(a & 0xFFFF);
        break;
      case Opcode::CHKLD: {
        // Checked load of a tag-in-word dword (NaN boxing): the value
        // lands in rd and its type halfword (bits 63:48) is compared
        // against the settype register in flight.
        const uint64_t addr = a + static_cast<uint64_t>(instr.imm);
        timing_.memStall(dataAccess(addr, false));
        ++loads_;
        ++chklbChecks_;
        const uint64_t value = memory_.read64(addr);
        regs_.writeGpr(instr.rd, value);
        if (static_cast<uint16_t>(value >> 48) !=
            typedState_.chklbExpectedType) {
            ++chklbMisses_;
            emit(obs::EventKind::ChklbMiss, pc_,
                 static_cast<uint16_t>(value >> 48),
                 typedState_.chklbExpectedType);
            next_pc = typedState_.rhdl;
            timing_.redirect();
        }
        break;
      }
      case Opcode::CHKLB:
      case Opcode::CHKLH: {
        const uint64_t addr = a + static_cast<uint64_t>(instr.imm);
        timing_.memStall(dataAccess(addr, false));
        ++loads_;
        ++chklbChecks_;
        const bool half = instr.op == Opcode::CHKLH;
        const uint16_t tag = half ? memory_.read16(addr)
                                  : memory_.read8(addr);
        const uint16_t expected =
            half ? typedState_.chklbExpectedType
                 : static_cast<uint16_t>(typedState_.chklbExpectedType &
                                         0xFF);
        regs_.writeGpr(instr.rd, tag);
        if (tag != expected) {
            ++chklbMisses_;
            emit(obs::EventKind::ChklbMiss, pc_, tag, expected);
            next_pc = typedState_.rhdl;
            timing_.redirect();
        }
        break;
      }

      case Opcode::SYS:
      case Opcode::HCALL:
        execSys(instr, next_pc);
        break;
      case Opcode::HALT:
        doHalt(0);
        break;
      case Opcode::NumOpcodes:
        tarch_panic("invalid opcode");
    }

    // Destination-ready bookkeeping.
    switch (info.syntax) {
      case isa::Syntax::R3:
      case isa::Syntax::R2:
      case isa::Syntax::RegRegImm:
      case isa::Syntax::Load:
      case isa::Syntax::UImm:
      case isa::Syntax::Jal:
        timing_.setRegReady(info.fpRd ? instr.rd + 32U : instr.rd,
                            timing_.latencyFor(info.execClass));
        break;
      default:
        break;
    }

    // The retire event's cycle stamp is the cumulative count with this
    // instruction's full cost applied, so consecutive-retire deltas
    // partition CoreStats::cycles exactly (the pipeline-drain constant
    // folds into the first delta).
    emit(obs::EventKind::Retire, pc_, currentRegion_);

    pc_ = next_pc;
    return !halted_;
}

void
Core::execFp(const isa::Instr &instr)
{
    const double x = regs_.fprAsDouble(instr.rs1);
    const double y = regs_.fprAsDouble(instr.rs2);
    switch (instr.op) {
      case Opcode::FADD_D: regs_.writeFprDouble(instr.rd, x + y); break;
      case Opcode::FSUB_D: regs_.writeFprDouble(instr.rd, x - y); break;
      case Opcode::FMUL_D: regs_.writeFprDouble(instr.rd, x * y); break;
      case Opcode::FDIV_D: regs_.writeFprDouble(instr.rd, x / y); break;
      case Opcode::FSQRT_D:
        regs_.writeFprDouble(instr.rd, std::sqrt(x));
        break;
      case Opcode::FSGNJ_D:
        regs_.writeFpr(instr.rd, (regs_.fpr(instr.rs1) & ~(1ULL << 63)) |
                                     (regs_.fpr(instr.rs2) & (1ULL << 63)));
        break;
      case Opcode::FSGNJN_D:
        regs_.writeFpr(instr.rd,
                       (regs_.fpr(instr.rs1) & ~(1ULL << 63)) |
                           (~regs_.fpr(instr.rs2) & (1ULL << 63)));
        break;
      case Opcode::FSGNJX_D:
        regs_.writeFpr(instr.rd, regs_.fpr(instr.rs1) ^
                                     (regs_.fpr(instr.rs2) & (1ULL << 63)));
        break;
      case Opcode::FEQ_D: regs_.writeGpr(instr.rd, x == y ? 1 : 0); break;
      case Opcode::FLT_D: regs_.writeGpr(instr.rd, x < y ? 1 : 0); break;
      case Opcode::FLE_D: regs_.writeGpr(instr.rd, x <= y ? 1 : 0); break;
      case Opcode::FCVT_D_L:
        regs_.writeFprDouble(
            instr.rd,
            static_cast<double>(
                static_cast<int64_t>(regs_.gpr(instr.rs1).v)));
        break;
      case Opcode::FCVT_L_D: {
        // Round toward zero with RISC-V saturation semantics.
        int64_t result;
        if (std::isnan(x))
            result = INT64_MAX;
        else if (x >= 9.2233720368547758e18)
            result = INT64_MAX;
        else if (x <= -9.2233720368547758e18)
            result = INT64_MIN;
        else
            result = static_cast<int64_t>(std::trunc(x));
        regs_.writeGpr(instr.rd, static_cast<uint64_t>(result));
        break;
      }
      case Opcode::FMV_X_D:
        regs_.writeGpr(instr.rd, regs_.fpr(instr.rs1));
        break;
      case Opcode::FMV_D_X:
        regs_.writeFpr(instr.rd, regs_.gpr(instr.rs1).v);
        break;
      default:
        tarch_panic("execFp: bad opcode");
    }
}

void
Core::execSys(const isa::Instr &instr, uint64_t &next_pc)
{
    (void)next_pc;
    if (instr.op == Opcode::HCALL) {
        if (!hostcalls_)
            tarch_fatal("hcall %lld without a registry",
                        static_cast<long long>(instr.imm));
        const unsigned id = static_cast<unsigned>(instr.imm);
        HostEnv env{regs_, memory_, output_, heapBreak_};
        hostcalls_->invoke(id, env);
        const HcallCost &cost = hostcalls_->cost(id);
        instructions_ += cost.instructions;
        // The charged native-runtime instructions belong to the region
        // active at the hcall, same as the hcall instruction itself —
        // per-region totals must keep summing to CoreStats::instructions.
        if (currentRegion_ >= 0)
            markers_.bumpRegionBy(static_cast<size_t>(currentRegion_),
                                  cost.instructions);
        timing_.flatCost(cost.cycles);
        ++hostcallCount_;
        emit(obs::EventKind::Hostcall, pc_, static_cast<int64_t>(id),
             static_cast<int64_t>(cost.instructions));
        return;
    }
    const uint64_t a0 = regs_.gpr(isa::reg::a0).v;
    switch (instr.imm) {
      case 0:  // exit
        doHalt(static_cast<int>(a0));
        break;
      case 1:  // putchar
        output_.push_back(static_cast<char>(a0));
        break;
      case 2:  // print signed integer
        output_ += strformat("%lld", static_cast<long long>(a0));
        break;
      case 3: {  // print double from fa0
        output_ += strformat("%.14g", regs_.fprAsDouble(10));
        break;
      }
      case 4: {  // print NUL-terminated string at a0
        uint64_t addr = a0;
        for (;;) {
            const char c = static_cast<char>(memory_.read8(addr++));
            if (c == '\0')
                break;
            output_.push_back(c);
        }
        break;
      }
      default:
        tarch_fatal("unknown syscall %lld",
                    static_cast<long long>(instr.imm));
    }
}

TypedContext
Core::saveTypedContext() const
{
    TypedContext ctx;
    ctx.state = typedState_;
    for (unsigned i = 0; i < trt_.size(); ++i)
        ctx.trtRules.push_back(trt_.rule(i));
    for (unsigned r = 0; r < isa::kNumGprs; ++r) {
        ctx.tags[r] = regs_.gpr(r).t;
        ctx.fpFlags[r] = regs_.gpr(r).f;
    }
    return ctx;
}

void
Core::restoreTypedContext(const TypedContext &context)
{
    typedState_ = context.state;
    // A TRT/typed-config swap invalidates predecoded blocks, same as
    // the in-guest configuration instructions.
    fastFlushPending_ = true;
    trt_.flush();
    for (const typed::TypeRule &rule : context.trtRules)
        trt_.push(rule);
    for (unsigned r = 1; r < isa::kNumGprs; ++r)
        regs_.writeGprTag(r, context.tags[r], context.fpFlags[r]);
}

void
Core::saveMachine(MachineState &out) const
{
    out.pc = pc_;
    out.halted = halted_;
    out.exitCode = exitCode_;
    out.heapBreak = heapBreak_;
    out.currentRegion = currentRegion_;
    out.output = output_;
    out.typedState = typedState_;
    regs_.saveState(out.regs);

    out.instructions = instructions_;
    out.loads = loads_;
    out.stores = stores_;
    out.typeOverflowMisses = typeOverflowMisses_;
    out.deoptRedirects = deoptRedirects_;
    out.deoptProbes = deoptProbes_;
    out.chklbChecks = chklbChecks_;
    out.chklbMisses = chklbMisses_;
    out.hostcallCount = hostcallCount_;
    out.deoptCounters = deoptCounters_;
    out.deoptTags = deoptTags_;

    timing_.saveState(out.timing);
    markers_.saveState(out.markers);
    trt_.saveState(out.trt);
    branchUnit_.saveState(out.branch);
    icache_.saveState(out.icache);
    dcache_.saveState(out.dcache);
    itlb_.saveState(out.itlb);
    dtlb_.saveState(out.dtlb);
    dram_.saveState(out.dram);
    memory_.savePages(out.pages);
}

bool
Core::restoreMachine(const MachineState &in)
{
    // Shape checks against the current configuration first, so a
    // mismatched snapshot is rejected before any state is overwritten.
    if (in.deoptCounters.size() != deoptCounters_.size() ||
        in.deoptTags.size() != deoptTags_.size())
        return false;
    if (in.currentRegion >= 0 &&
        static_cast<size_t>(in.currentRegion) >= markers_.count())
        return false;
    if (!memory_.restorePages(in.pages))
        return false;
    if (!markers_.restoreState(in.markers) || !trt_.restoreState(in.trt) ||
        !branchUnit_.restoreState(in.branch) ||
        !icache_.restoreState(in.icache) ||
        !dcache_.restoreState(in.dcache) || !itlb_.restoreState(in.itlb) ||
        !dtlb_.restoreState(in.dtlb) || !dram_.restoreState(in.dram))
        return false;

    pc_ = in.pc;
    halted_ = in.halted;
    exitCode_ = in.exitCode;
    heapBreak_ = in.heapBreak;
    currentRegion_ = in.currentRegion;
    output_ = in.output;
    typedState_ = in.typedState;
    regs_.restoreState(in.regs);
    timing_.restoreState(in.timing);

    instructions_ = in.instructions;
    loads_ = in.loads;
    stores_ = in.stores;
    typeOverflowMisses_ = in.typeOverflowMisses;
    deoptRedirects_ = in.deoptRedirects;
    deoptProbes_ = in.deoptProbes;
    chklbChecks_ = in.chklbChecks;
    chklbMisses_ = in.chklbMisses;
    hostcallCount_ = in.hostcallCount;
    deoptCounters_ = in.deoptCounters;
    deoptTags_ = in.deoptTags;

    // The restored memory image is authoritative for the text segment
    // (the snapshotted run may have stored into it): re-decode every
    // word, exactly as textStoreSlow does, and drop predecoded blocks.
    for (size_t i = 0; i < text_.size(); ++i) {
        const auto decoded = isa::decode(memory_.read32(textBase_ + 4 * i));
        text_[i] =
            decoded ? *decoded : Instr{Opcode::NumOpcodes, 0, 0, 0, 0};
    }
    blockCache_.reset(text_.size());
    fastFlushPending_ = false;
    return true;
}

void
Core::runUntilInstructions(uint64_t target)
{
    if (config_.execMode == ExecMode::Predecoded) {
        while (!halted_ && instructions_ < target) {
            if (!stepBlock())
                return;
        }
        return;
    }
    while (!halted_ && instructions_ < target) {
        if (!step())
            return;
    }
}

CoreStats
Core::collectStats() const
{
    CoreStats s;
    s.instructions = instructions_;
    s.cycles = timing_.cycles();
    s.loads = loads_;
    s.stores = stores_;
    s.branches = branchUnit_.stats();
    s.icache = icache_.stats();
    s.dcache = dcache_.stats();
    s.itlb = itlb_.stats();
    s.dtlb = dtlb_.stats();
    s.trt = trt_.stats();
    s.typeOverflowMisses = typeOverflowMisses_;
    s.chklbChecks = chklbChecks_;
    s.chklbMisses = chklbMisses_;
    s.deoptRedirects = deoptRedirects_;
    s.deoptProbes = deoptProbes_;
    s.hostcalls = hostcallCount_;
    return s;
}

} // namespace tarch::core
