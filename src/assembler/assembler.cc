#include "assembler/assembler.h"

#include <cstring>
#include <functional>

#include "assembler/lexer.h"
#include "common/bitops.h"
#include "common/log.h"
#include "common/strutil.h"
#include "isa/encoding.h"

namespace tarch::assembler {

using isa::Instr;
using isa::Opcode;

namespace {

/** symbol + addend; symbol may be empty for pure constants. */
struct Expr {
    std::string symbol;
    int64_t addend = 0;
    bool hasSymbol() const { return !symbol.empty(); }
};

struct MemOperand {
    Expr offset;
    unsigned base = 0;
};

/** One parsed source statement. */
struct Stmt {
    enum class Kind { Label, Directive, Instruction };
    Kind kind;
    std::string name;                          ///< label/directive/mnemonic
    std::vector<std::vector<Token>> operands;  ///< comma-separated spans
    std::string where;                         ///< "line N" for messages
};

class AsmImpl
{
  public:
    AsmImpl(const std::string &source, const AsmOptions &opts)
        : opts_(opts)
    {
        parse(source);
    }

    Program
    run()
    {
        // Pass A: define symbols (sizes of all expansions are
        // value-independent for symbolic operands, so addresses are final).
        sizing_ = true;
        walk();
        // Pass B: emit.
        sizing_ = false;
        walk();
        prog_.textBase = opts_.textBase;
        prog_.dataBase = opts_.dataBase;
        prog_.symbols = symbols_;
        const auto it = symbols_.find("_start");
        prog_.entry = it != symbols_.end() ? it->second : opts_.textBase;
        return std::move(prog_);
    }

  private:
    void
    parse(const std::string &source)
    {
        int lineno = 0;
        for (const std::string &line : split(source, '\n')) {
            ++lineno;
            const std::string where = strformat("line %d", lineno);
            std::vector<Token> toks = tokenizeLine(line, where);
            size_t i = 0;
            // Leading "name:" label definitions (possibly several).
            while (i + 1 < toks.size() && toks[i].kind == TokKind::Ident &&
                   toks[i + 1].kind == TokKind::Punct &&
                   toks[i + 1].text == ":") {
                stmts_.push_back({Stmt::Kind::Label, toks[i].text, {}, where});
                i += 2;
            }
            if (i >= toks.size())
                continue;
            if (toks[i].kind != TokKind::Ident)
                tarch_fatal("%s: expected mnemonic or directive",
                            where.c_str());
            Stmt stmt;
            stmt.kind = toks[i].text[0] == '.' ? Stmt::Kind::Directive
                                               : Stmt::Kind::Instruction;
            stmt.name = toks[i].text;
            stmt.where = where;
            ++i;
            // Split remaining tokens into comma-separated operand spans.
            std::vector<Token> span;
            int depth = 0;
            for (; i < toks.size(); ++i) {
                const Token &t = toks[i];
                if (t.kind == TokKind::Punct && t.text == "(")
                    ++depth;
                if (t.kind == TokKind::Punct && t.text == ")")
                    --depth;
                if (t.kind == TokKind::Punct && t.text == "," && depth == 0) {
                    stmt.operands.push_back(std::move(span));
                    span.clear();
                } else {
                    span.push_back(t);
                }
            }
            if (!span.empty())
                stmt.operands.push_back(std::move(span));
            stmts_.push_back(std::move(stmt));
        }
    }

    void
    walk()
    {
        inText_ = true;
        textCount_ = 0;
        dataCursor_ = 0;
        if (!sizing_) {
            prog_.text.clear();
            prog_.data.clear();
        }
        for (const Stmt &stmt : stmts_) {
            switch (stmt.kind) {
              case Stmt::Kind::Label:
                if (sizing_)
                    defineSymbol(stmt.name, here(), stmt.where);
                break;
              case Stmt::Kind::Directive:
                directive(stmt);
                break;
              case Stmt::Kind::Instruction:
                if (!inText_)
                    tarch_fatal("%s: instruction outside .text",
                                stmt.where.c_str());
                instruction(stmt);
                break;
            }
        }
    }

    uint64_t
    here() const
    {
        return inText_ ? opts_.textBase + 4 * textCount_
                       : opts_.dataBase + dataCursor_;
    }

    void
    defineSymbol(const std::string &name, uint64_t value,
                 const std::string &where)
    {
        if (!symbols_.emplace(name, value).second)
            tarch_fatal("%s: redefinition of symbol '%s'", where.c_str(),
                        name.c_str());
    }

    // ------------------------------------------------------------------
    // Operand interpretation.

    [[noreturn]] void
    bad(const Stmt &stmt, const char *what) const
    {
        tarch_fatal("%s: %s (in '%s')", stmt.where.c_str(), what,
                    stmt.name.c_str());
    }

    unsigned
    asGpr(const Stmt &stmt, size_t idx) const
    {
        if (idx >= stmt.operands.size() || stmt.operands[idx].size() != 1 ||
            stmt.operands[idx][0].kind != TokKind::Ident)
            bad(stmt, "expected integer register");
        const auto reg = isa::parseGpr(stmt.operands[idx][0].text);
        if (!reg)
            bad(stmt, "unknown integer register");
        return *reg;
    }

    unsigned
    asFpr(const Stmt &stmt, size_t idx) const
    {
        if (idx >= stmt.operands.size() || stmt.operands[idx].size() != 1 ||
            stmt.operands[idx][0].kind != TokKind::Ident)
            bad(stmt, "expected FP register");
        const auto reg = isa::parseFpr(stmt.operands[idx][0].text);
        if (!reg)
            bad(stmt, "unknown FP register");
        return *reg;
    }

    unsigned
    asReg(const Stmt &stmt, size_t idx, bool fp) const
    {
        return fp ? asFpr(stmt, idx) : asGpr(stmt, idx);
    }

    Expr
    parseExpr(const Stmt &stmt, const std::vector<Token> &toks) const
    {
        Expr expr;
        int sign = 1;
        bool expect_term = true;
        for (const Token &t : toks) {
            if (t.kind == TokKind::Punct && (t.text == "+" || t.text == "-")) {
                if (t.text == "-")
                    sign = -sign;
                expect_term = true;
                continue;
            }
            if (!expect_term)
                bad(stmt, "malformed expression");
            if (t.kind == TokKind::Number) {
                expr.addend += sign * t.ival;
            } else if (t.kind == TokKind::Ident) {
                if (expr.hasSymbol() || sign < 0)
                    bad(stmt, "unsupported symbol expression");
                expr.symbol = t.text;
            } else {
                bad(stmt, "malformed expression");
            }
            sign = 1;
            expect_term = false;
        }
        if (expect_term)
            bad(stmt, "empty expression");
        return expr;
    }

    Expr
    asExpr(const Stmt &stmt, size_t idx) const
    {
        if (idx >= stmt.operands.size())
            bad(stmt, "missing operand");
        return parseExpr(stmt, stmt.operands[idx]);
    }

    MemOperand
    asMem(const Stmt &stmt, size_t idx) const
    {
        if (idx >= stmt.operands.size())
            bad(stmt, "missing memory operand");
        const std::vector<Token> &toks = stmt.operands[idx];
        // Find the top-level '(' introducing the base register.
        size_t open = toks.size();
        for (size_t i = 0; i < toks.size(); ++i) {
            if (toks[i].kind == TokKind::Punct && toks[i].text == "(") {
                open = i;
                break;
            }
        }
        if (open == toks.size() || open + 2 >= toks.size() + 1)
            bad(stmt, "expected imm(reg) memory operand");
        if (open + 2 >= toks.size() ||
            toks[open + 1].kind != TokKind::Ident ||
            toks[open + 2].kind != TokKind::Punct ||
            toks[open + 2].text != ")")
            bad(stmt, "expected imm(reg) memory operand");
        const auto base = isa::parseGpr(toks[open + 1].text);
        if (!base)
            bad(stmt, "unknown base register");
        MemOperand mem;
        mem.base = *base;
        if (open > 0)
            mem.offset =
                parseExpr(stmt, {toks.begin(), toks.begin() + open});
        return mem;
    }

    int64_t
    resolve(const Stmt &stmt, const Expr &expr) const
    {
        if (!expr.hasSymbol())
            return expr.addend;
        if (sizing_)
            return 0;
        const auto it = symbols_.find(expr.symbol);
        if (it == symbols_.end())
            tarch_fatal("%s: undefined symbol '%s'", stmt.where.c_str(),
                        expr.symbol.c_str());
        return static_cast<int64_t>(it->second) + expr.addend;
    }

    // ------------------------------------------------------------------
    // Emission.

    void
    emit(const Stmt &stmt, Instr instr)
    {
        if (!sizing_) {
            if (!isa::immFits(instr))
                tarch_fatal("%s: immediate %lld out of range for %s",
                            stmt.where.c_str(),
                            static_cast<long long>(instr.imm),
                            std::string(isa::opcodeInfo(instr.op).mnemonic)
                                .c_str());
            prog_.text.push_back(instr);
        }
        ++textCount_;
    }

    void
    emitLi(const Stmt &stmt, unsigned rd, int64_t value)
    {
        if (fitsSigned(value, isa::kImmBitsI)) {
            emit(stmt, {Opcode::ADDI, static_cast<uint8_t>(rd), 0, 0, value});
            return;
        }
        if (value >= INT32_MIN && value <= INT32_MAX) {
            const int64_t lo = value & 0xFFF;
            const int64_t hi = value >> 12;
            emit(stmt, {Opcode::LUI, static_cast<uint8_t>(rd), 0, 0, hi});
            if (lo != 0)
                emit(stmt, {Opcode::ADDI, static_cast<uint8_t>(rd),
                            static_cast<uint8_t>(rd), 0, lo});
            return;
        }
        emitLi(stmt, rd, value >> 14);
        emit(stmt, {Opcode::SLLI, static_cast<uint8_t>(rd),
                    static_cast<uint8_t>(rd), 0, 14});
        const int64_t low = value & 0x3FFF;
        if (low != 0)
            emit(stmt, {Opcode::ADDI, static_cast<uint8_t>(rd),
                        static_cast<uint8_t>(rd), 0, low});
    }

    /** la-style: fixed two-instruction absolute address materialization. */
    void
    emitLa(const Stmt &stmt, unsigned rd, const Expr &expr)
    {
        const int64_t value = resolve(stmt, expr);
        if (!sizing_ && (value < 0 || value > INT32_MAX))
            tarch_fatal("%s: la address 0x%llx out of 31-bit range",
                        stmt.where.c_str(),
                        static_cast<unsigned long long>(value));
        const int64_t lo = value & 0xFFF;
        const int64_t hi = value >> 12;
        emit(stmt, {Opcode::LUI, static_cast<uint8_t>(rd), 0, 0, hi});
        emit(stmt, {Opcode::ADDI, static_cast<uint8_t>(rd),
                    static_cast<uint8_t>(rd), 0, lo});
    }

    bool
    pseudo(const Stmt &stmt)
    {
        const std::string &m = stmt.name;
        auto r3 = [&](Opcode op, unsigned rd, unsigned rs1, unsigned rs2) {
            emit(stmt, {op, static_cast<uint8_t>(rd),
                        static_cast<uint8_t>(rs1), static_cast<uint8_t>(rs2),
                        0});
        };
        auto ri = [&](Opcode op, unsigned rd, unsigned rs1, int64_t imm) {
            emit(stmt, {op, static_cast<uint8_t>(rd),
                        static_cast<uint8_t>(rs1), 0, imm});
        };
        auto branchTo = [&](Opcode op, unsigned rs1, unsigned rs2,
                            size_t label_idx) {
            const int64_t target = resolve(stmt, asExpr(stmt, label_idx));
            emit(stmt, {op, 0, static_cast<uint8_t>(rs1),
                        static_cast<uint8_t>(rs2),
                        sizing_ ? 0 : target - static_cast<int64_t>(here())});
        };

        if (m == "nop") { ri(Opcode::ADDI, 0, 0, 0); return true; }
        if (m == "mv") {
            ri(Opcode::ADDI, asGpr(stmt, 0), asGpr(stmt, 1), 0);
            return true;
        }
        if (m == "not") {
            ri(Opcode::XORI, asGpr(stmt, 0), asGpr(stmt, 1), -1);
            return true;
        }
        if (m == "neg") {
            r3(Opcode::SUB, asGpr(stmt, 0), 0, asGpr(stmt, 1));
            return true;
        }
        if (m == "negw") {
            r3(Opcode::SUBW, asGpr(stmt, 0), 0, asGpr(stmt, 1));
            return true;
        }
        if (m == "seqz") {
            ri(Opcode::SLTIU, asGpr(stmt, 0), asGpr(stmt, 1), 1);
            return true;
        }
        if (m == "snez") {
            r3(Opcode::SLTU, asGpr(stmt, 0), 0, asGpr(stmt, 1));
            return true;
        }
        if (m == "sext.w") {
            ri(Opcode::ADDIW, asGpr(stmt, 0), asGpr(stmt, 1), 0);
            return true;
        }
        if (m == "beqz") { branchTo(Opcode::BEQ, asGpr(stmt, 0), 0, 1); return true; }
        if (m == "bnez") { branchTo(Opcode::BNE, asGpr(stmt, 0), 0, 1); return true; }
        if (m == "bltz") { branchTo(Opcode::BLT, asGpr(stmt, 0), 0, 1); return true; }
        if (m == "bgez") { branchTo(Opcode::BGE, asGpr(stmt, 0), 0, 1); return true; }
        if (m == "blez") { branchTo(Opcode::BGE, 0, asGpr(stmt, 0), 1); return true; }
        if (m == "bgtz") { branchTo(Opcode::BLT, 0, asGpr(stmt, 0), 1); return true; }
        if (m == "bgt") {
            branchTo(Opcode::BLT, asGpr(stmt, 1), asGpr(stmt, 0), 2);
            return true;
        }
        if (m == "ble") {
            branchTo(Opcode::BGE, asGpr(stmt, 1), asGpr(stmt, 0), 2);
            return true;
        }
        if (m == "bgtu") {
            branchTo(Opcode::BLTU, asGpr(stmt, 1), asGpr(stmt, 0), 2);
            return true;
        }
        if (m == "bleu") {
            branchTo(Opcode::BGEU, asGpr(stmt, 1), asGpr(stmt, 0), 2);
            return true;
        }
        if (m == "j") {
            const int64_t target = resolve(stmt, asExpr(stmt, 0));
            emit(stmt, {Opcode::JAL, 0, 0, 0,
                        sizing_ ? 0
                                : target - static_cast<int64_t>(here())});
            return true;
        }
        if (m == "call") {
            const int64_t target = resolve(stmt, asExpr(stmt, 0));
            emit(stmt, {Opcode::JAL, isa::reg::ra, 0, 0,
                        sizing_ ? 0
                                : target - static_cast<int64_t>(here())});
            return true;
        }
        if (m == "jr") {
            ri(Opcode::JALR, 0, asGpr(stmt, 0), 0);
            return true;
        }
        if (m == "ret") { ri(Opcode::JALR, 0, isa::reg::ra, 0); return true; }
        if (m == "li") {
            const unsigned rd = asGpr(stmt, 0);
            const Expr expr = asExpr(stmt, 1);
            if (expr.hasSymbol())
                emitLa(stmt, rd, expr);
            else
                emitLi(stmt, rd, expr.addend);
            return true;
        }
        if (m == "la") {
            emitLa(stmt, asGpr(stmt, 0), asExpr(stmt, 1));
            return true;
        }
        if (m == "fmv.d") {
            const unsigned rd = asFpr(stmt, 0), rs = asFpr(stmt, 1);
            r3(Opcode::FSGNJ_D, rd, rs, rs);
            return true;
        }
        if (m == "fneg.d") {
            const unsigned rd = asFpr(stmt, 0), rs = asFpr(stmt, 1);
            r3(Opcode::FSGNJN_D, rd, rs, rs);
            return true;
        }
        if (m == "fabs.d") {
            const unsigned rd = asFpr(stmt, 0), rs = asFpr(stmt, 1);
            r3(Opcode::FSGNJX_D, rd, rs, rs);
            return true;
        }
        return false;
    }

    void
    instruction(const Stmt &stmt)
    {
        if (pseudo(stmt))
            return;
        const auto op = isa::opcodeFromMnemonic(stmt.name);
        if (!op)
            tarch_fatal("%s: unknown mnemonic '%s'", stmt.where.c_str(),
                        stmt.name.c_str());
        const isa::OpcodeInfo &info = isa::opcodeInfo(*op);
        Instr instr;
        instr.op = *op;
        switch (info.syntax) {
          case isa::Syntax::None:
            break;
          case isa::Syntax::R3:
            instr.rd = asReg(stmt, 0, info.fpRd);
            instr.rs1 = asReg(stmt, 1, info.fpRs1);
            instr.rs2 = asReg(stmt, 2, info.fpRs2);
            break;
          case isa::Syntax::R2:
            instr.rd = asReg(stmt, 0, info.fpRd);
            instr.rs1 = asReg(stmt, 1, info.fpRs1);
            break;
          case isa::Syntax::Rs1Rs2:
            instr.rs1 = asReg(stmt, 0, info.fpRs1);
            instr.rs2 = asReg(stmt, 1, info.fpRs2);
            break;
          case isa::Syntax::Rs1:
            instr.rs1 = asReg(stmt, 0, info.fpRs1);
            break;
          case isa::Syntax::RegRegImm:
            instr.rd = asReg(stmt, 0, info.fpRd);
            instr.rs1 = asReg(stmt, 1, info.fpRs1);
            instr.imm = resolve(stmt, asExpr(stmt, 2));
            break;
          case isa::Syntax::Load: {
            instr.rd = asReg(stmt, 0, info.fpRd);
            const MemOperand mem = asMem(stmt, 1);
            instr.rs1 = mem.base;
            instr.imm = resolve(stmt, mem.offset);
            break;
          }
          case isa::Syntax::Store: {
            instr.rs2 = asReg(stmt, 0, info.fpRs2);
            const MemOperand mem = asMem(stmt, 1);
            instr.rs1 = mem.base;
            instr.imm = resolve(stmt, mem.offset);
            break;
          }
          case isa::Syntax::Branch:
            instr.rs1 = asGpr(stmt, 0);
            instr.rs2 = asGpr(stmt, 1);
            instr.imm = sizing_ ? 0
                                : resolve(stmt, asExpr(stmt, 2)) -
                                      static_cast<int64_t>(here());
            break;
          case isa::Syntax::Jal:
            instr.rd = asGpr(stmt, 0);
            instr.imm = sizing_ ? 0
                                : resolve(stmt, asExpr(stmt, 1)) -
                                      static_cast<int64_t>(here());
            break;
          case isa::Syntax::UImm:
            instr.rd = asGpr(stmt, 0);
            instr.imm = resolve(stmt, asExpr(stmt, 1));
            break;
          case isa::Syntax::Label:
            instr.imm = sizing_ ? 0
                                : resolve(stmt, asExpr(stmt, 0)) -
                                      static_cast<int64_t>(here());
            break;
          case isa::Syntax::Imm:
            instr.imm = resolve(stmt, asExpr(stmt, 0));
            break;
        }
        emit(stmt, instr);
    }

    // ------------------------------------------------------------------
    // Data directives.

    void
    putBytes(const void *src, size_t len)
    {
        if (!sizing_) {
            const auto *p = static_cast<const uint8_t *>(src);
            prog_.data.insert(prog_.data.end(), p, p + len);
        }
        dataCursor_ += len;
    }

    void
    putScalar(uint64_t value, size_t len)
    {
        uint8_t buf[8];
        std::memcpy(buf, &value, 8);
        putBytes(buf, len);
    }

    void
    requireData(const Stmt &stmt) const
    {
        if (inText_)
            tarch_fatal("%s: data directive '%s' in .text",
                        stmt.where.c_str(), stmt.name.c_str());
    }

    void
    directive(const Stmt &stmt)
    {
        const std::string &d = stmt.name;
        if (d == ".text") { inText_ = true; return; }
        if (d == ".data") { inText_ = false; return; }
        if (d == ".global" || d == ".globl") return;
        if (d == ".align") {
            const uint64_t align = 1ULL << resolve(stmt, asExpr(stmt, 0));
            if (inText_) {
                while ((opts_.textBase + 4 * textCount_) % align != 0)
                    emit(stmt, {Opcode::ADDI, 0, 0, 0, 0});
            } else {
                while ((opts_.dataBase + dataCursor_) % align != 0)
                    putScalar(0, 1);
            }
            return;
        }
        if (d == ".equ") {
            if (stmt.operands.size() != 2)
                bad(stmt, ".equ needs name, value");
            if (sizing_) {
                if (stmt.operands[0].size() != 1 ||
                    stmt.operands[0][0].kind != TokKind::Ident)
                    bad(stmt, ".equ needs a symbol name");
                defineSymbol(stmt.operands[0][0].text,
                             resolve(stmt, asExpr(stmt, 1)), stmt.where);
            }
            return;
        }
        if (d == ".byte" || d == ".half" || d == ".word" || d == ".dword") {
            requireData(stmt);
            const size_t len = d == ".byte" ? 1
                             : d == ".half" ? 2
                             : d == ".word" ? 4
                                            : 8;
            for (size_t i = 0; i < stmt.operands.size(); ++i)
                putScalar(static_cast<uint64_t>(
                              resolve(stmt, asExpr(stmt, i))),
                          len);
            return;
        }
        if (d == ".double") {
            requireData(stmt);
            for (size_t i = 0; i < stmt.operands.size(); ++i) {
                if (stmt.operands[i].empty())
                    bad(stmt, "empty .double operand");
                double value = 0.0;
                // Accept leading '-' before the float/number token.
                size_t pos = 0;
                double sign = 1.0;
                if (stmt.operands[i][0].kind == TokKind::Punct &&
                    stmt.operands[i][0].text == "-") {
                    sign = -1.0;
                    pos = 1;
                }
                if (pos >= stmt.operands[i].size())
                    bad(stmt, "malformed .double");
                const Token &t = stmt.operands[i][pos];
                if (t.kind == TokKind::Float)
                    value = t.fval;
                else if (t.kind == TokKind::Number)
                    value = static_cast<double>(t.ival);
                else
                    bad(stmt, "malformed .double");
                value *= sign;
                uint64_t raw;
                std::memcpy(&raw, &value, 8);
                putScalar(raw, 8);
            }
            return;
        }
        if (d == ".ascii" || d == ".asciiz") {
            requireData(stmt);
            for (const auto &operand : stmt.operands) {
                if (operand.size() != 1 ||
                    operand[0].kind != TokKind::String)
                    bad(stmt, "expected string literal");
                putBytes(operand[0].text.data(), operand[0].text.size());
                if (d == ".asciiz")
                    putScalar(0, 1);
            }
            return;
        }
        if (d == ".verify_indirect_targets") {
            // Declares the full successor set of indirect jumps for the
            // static verifier.  Operands are symbol expressions; values
            // are resolved in the emit pass (all labels are known).
            if (stmt.operands.empty())
                bad(stmt, ".verify_indirect_targets needs targets");
            if (!sizing_)
                for (size_t i = 0; i < stmt.operands.size(); ++i)
                    prog_.verifiedIndirectTargets.push_back(
                        static_cast<uint64_t>(
                            resolve(stmt, asExpr(stmt, i))));
            return;
        }
        if (d == ".space") {
            requireData(stmt);
            const int64_t count = resolve(stmt, asExpr(stmt, 0));
            for (int64_t i = 0; i < count; ++i)
                putScalar(0, 1);
            return;
        }
        tarch_fatal("%s: unknown directive '%s'", stmt.where.c_str(),
                    d.c_str());
    }

    AsmOptions opts_;
    std::vector<Stmt> stmts_;
    std::unordered_map<std::string, uint64_t> symbols_;
    Program prog_;
    bool sizing_ = true;
    bool inText_ = true;
    size_t textCount_ = 0;
    size_t dataCursor_ = 0;
};

} // namespace

uint64_t
Program::symbol(const std::string &name) const
{
    const auto it = symbols.find(name);
    if (it == symbols.end())
        tarch_fatal("undefined symbol '%s'", name.c_str());
    return it->second;
}

Program
assemble(const std::string &source, const AsmOptions &opts)
{
    return AsmImpl(source, opts).run();
}

} // namespace tarch::assembler
