/**
 * @file
 * Two-pass TRV64 text assembler.
 *
 * Supports labels, the directives .text/.data/.align/.byte/.half/.word/
 * .dword/.double/.ascii/.asciiz/.space/.equ/.global/
 * .verify_indirect_targets, symbolic data words
 * (used for interpreter dispatch tables) and the usual RISC-V pseudo-
 * instructions (li/la/mv/j/call/ret/beqz/... plus fmv.d/fneg.d/fabs.d and
 * sext.w).  Branch targets that exceed the 15-bit scaled immediate are a
 * fatal error (the generated interpreters are far below the +-64 KiB
 * limit; no relaxation is performed).
 */

#ifndef TARCH_ASSEMBLER_ASSEMBLER_H
#define TARCH_ASSEMBLER_ASSEMBLER_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "isa/instr.h"

namespace tarch::assembler {

/** A fully assembled, loadable program image. */
struct Program {
    uint64_t textBase = 0;
    std::vector<isa::Instr> text;  ///< one decoded instruction per word
    uint64_t dataBase = 0;
    std::vector<uint8_t> data;
    std::unordered_map<std::string, uint64_t> symbols;
    uint64_t entry = 0;            ///< "_start" if defined, else textBase
    /**
     * Addresses declared via the `.verify_indirect_targets` directive:
     * the authoritative successor set for indirect jumps (`jr`),
     * consumed by the static verifier (src/analysis).  Empty when the
     * image carries no directive, in which case the verifier falls
     * back to scanning data dwords for dispatch-table entries.
     */
    std::vector<uint64_t> verifiedIndirectTargets;

    /** Address of the instruction slot at index @p i. */
    uint64_t pcAt(size_t i) const { return textBase + 4 * i; }
    /** Value of a symbol; fatal if undefined. */
    uint64_t symbol(const std::string &name) const;
};

struct AsmOptions {
    uint64_t textBase = 0x1000;
    uint64_t dataBase = 0x100000;
};

/**
 * Assemble @p source.  Throws FatalError with a "file:line" prefix on any
 * syntax, range or undefined-symbol error.
 */
Program assemble(const std::string &source, const AsmOptions &opts = {});

} // namespace tarch::assembler

#endif // TARCH_ASSEMBLER_ASSEMBLER_H
