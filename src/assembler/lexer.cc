#include "assembler/lexer.h"

#include <cctype>
#include <cstdlib>

#include "common/log.h"

namespace tarch::assembler {

namespace {

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '.' || c == '$';
}

char
unescape(char c)
{
    switch (c) {
      case 'n': return '\n';
      case 't': return '\t';
      case 'r': return '\r';
      case '0': return '\0';
      case '\\': return '\\';
      case '"': return '"';
      case '\'': return '\'';
      default: return c;
    }
}

} // namespace

std::vector<Token>
tokenizeLine(const std::string &line, const std::string &where)
{
    std::vector<Token> toks;
    size_t i = 0;
    const size_t n = line.size();
    while (i < n) {
        const char c = line[i];
        if (c == '#' || (c == '/' && i + 1 < n && line[i + 1] == '/'))
            break;
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
            c == '.' || c == '$') {
            size_t j = i;
            while (j < n && isIdentChar(line[j]))
                ++j;
            toks.push_back({TokKind::Ident, line.substr(i, j - i), 0, 0.0});
            i = j;
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            size_t j = i;
            bool is_float = false;
            if (c == '0' && i + 1 < n &&
                (line[i + 1] == 'x' || line[i + 1] == 'X')) {
                j = i + 2;
                while (j < n && std::isxdigit(static_cast<unsigned char>(
                                    line[j])))
                    ++j;
            } else {
                while (j < n && (std::isdigit(static_cast<unsigned char>(
                                     line[j])) ||
                                 line[j] == '.' || line[j] == 'e' ||
                                 line[j] == 'E' ||
                                 ((line[j] == '+' || line[j] == '-') && j > i &&
                                  (line[j - 1] == 'e' || line[j - 1] == 'E'))))
                {
                    if (line[j] == '.' || line[j] == 'e' || line[j] == 'E')
                        is_float = true;
                    ++j;
                }
            }
            const std::string text = line.substr(i, j - i);
            Token tok{is_float ? TokKind::Float : TokKind::Number, text, 0,
                      0.0};
            if (is_float) {
                tok.fval = std::strtod(text.c_str(), nullptr);
            } else {
                tok.ival = static_cast<int64_t>(
                    std::strtoull(text.c_str(), nullptr, 0));
            }
            toks.push_back(tok);
            i = j;
            continue;
        }
        if (c == '"') {
            std::string body;
            size_t j = i + 1;
            while (j < n && line[j] != '"') {
                if (line[j] == '\\' && j + 1 < n) {
                    body.push_back(unescape(line[j + 1]));
                    j += 2;
                } else {
                    body.push_back(line[j]);
                    ++j;
                }
            }
            if (j >= n)
                tarch_fatal("%s: unterminated string", where.c_str());
            toks.push_back({TokKind::String, body, 0, 0.0});
            i = j + 1;
            continue;
        }
        if (c == '\'') {
            if (i + 2 >= n)
                tarch_fatal("%s: bad char literal", where.c_str());
            char value;
            size_t j;
            if (line[i + 1] == '\\') {
                value = unescape(line[i + 2]);
                j = i + 3;
            } else {
                value = line[i + 1];
                j = i + 2;
            }
            if (j >= n || line[j] != '\'')
                tarch_fatal("%s: bad char literal", where.c_str());
            toks.push_back({TokKind::Number, std::string(1, value), value,
                            0.0});
            i = j + 1;
            continue;
        }
        if (c == ',' || c == '(' || c == ')' || c == ':' || c == '+' ||
            c == '-') {
            toks.push_back({TokKind::Punct, std::string(1, c), 0, 0.0});
            ++i;
            continue;
        }
        tarch_fatal("%s: unexpected character '%c'", where.c_str(), c);
    }
    return toks;
}

} // namespace tarch::assembler
