/**
 * @file
 * Line tokenizer for the TRV64 assembler.
 */

#ifndef TARCH_ASSEMBLER_LEXER_H
#define TARCH_ASSEMBLER_LEXER_H

#include <cstdint>
#include <string>
#include <vector>

namespace tarch::assembler {

enum class TokKind : uint8_t {
    Ident,   ///< mnemonic, register, label or directive name
    Number,  ///< integer literal (dec, hex, char)
    Float,   ///< floating-point literal (only in .double data)
    String,  ///< quoted string literal (unescaped)
    Punct,   ///< single punctuation character: , ( ) : + -
};

struct Token {
    TokKind kind;
    std::string text;   ///< identifier / string body / punct char
    int64_t ival = 0;   ///< value for Number
    double fval = 0.0;  ///< value for Float
};

/**
 * Tokenize one source line.  Comments ('#' or "//" to end of line) are
 * stripped.  Throws FatalError on malformed literals.
 *
 * @param line  source text without trailing newline
 * @param where description used in error messages ("file:line")
 */
std::vector<Token> tokenizeLine(const std::string &line,
                                const std::string &where);

} // namespace tarch::assembler

#endif // TARCH_ASSEMBLER_LEXER_H
