/**
 * @file
 * Experiment driver: run (engine, ISA variant, benchmark) combinations
 * and collect the performance-counter statistics the paper's figures
 * are built from.
 *
 * Sweeps fan the 33 cells (11 benchmarks x 3 variants) out across a
 * work-queue thread pool and memoize each cell in its own cache file,
 * keyed by a hash of the cache format version, the benchmark source,
 * and the simulator configuration fingerprint — so editing one script
 * re-simulates 3 cells per engine, not 33, and concurrently running
 * bench binaries share cells through atomic (temp file + rename)
 * writes.
 */

#ifndef TARCH_HARNESS_EXPERIMENT_H
#define TARCH_HARNESS_EXPERIMENT_H

#include <map>
#include <string>
#include <vector>

#include "core/exec_mode.h"
#include "core/stats.h"
#include "harness/benchmarks.h"
#include "obs/session.h"
#include "vm/variant.h"

namespace tarch::harness {

/** Which scripting engine substrate to run. */
enum class Engine { Lua, Js };

constexpr const char *
engineName(Engine engine)
{
    return engine == Engine::Lua ? "MiniLua" : "MiniJS";
}

struct RunResult {
    std::string benchmark;
    Engine engine;
    vm::Variant variant;
    core::CoreStats stats;
    /** Engine that produced the stats.  Provenance only: the two modes
        are bit-identical (docs/FASTPATH.md), so it takes no part in the
        cell cache key and cells are shared across modes. */
    core::ExecMode execMode = core::ExecMode::Exact;
    std::string output;
    uint64_t dynamicBytecodes = 0;
    std::map<std::string, uint64_t> bytecodeProfile;
    /** Per-marker (hits, region instructions) for Figure 2(b). */
    std::map<std::string, std::pair<uint64_t, uint64_t>> markerDetail;
    /** Rendered observability artifacts; empty unless the run was
        instrumented (SweepOptions::obs / the runOne obs overload). */
    obs::Artifacts obsArtifacts;
};

/** Run one combination.  Throws FatalError on guest runtime errors. */
RunResult runOne(Engine engine, vm::Variant variant,
                 const BenchmarkInfo &info);

/**
 * Run one combination with an observability session attached; the
 * rendered artifacts land in RunResult::obsArtifacts.  Attaching sinks
 * never changes the collected stats (the probe bus is read-only).
 */
RunResult runOne(Engine engine, vm::Variant variant,
                 const BenchmarkInfo &info,
                 const obs::SessionConfig &obs);

/** Like the obs overload, with an explicit core execution engine
    (default elsewhere: core::defaultExecMode(), i.e. TARCH_EXEC_MODE). */
RunResult runOne(Engine engine, vm::Variant variant,
                 const BenchmarkInfo &info, const obs::SessionConfig &obs,
                 core::ExecMode exec_mode);

/**
 * A full sweep: all benchmarks x all three variants for one engine.
 * Verifies that every variant produced identical output per benchmark
 * (fatal otherwise) — the cross-variant correctness check.
 */
struct Sweep {
    Engine engine;
    /** results[benchmark index][variant index (Baseline,Typed,CL)] */
    std::vector<std::vector<RunResult>> results;
    /** Cells freshly simulated vs. loaded from the cell cache. */
    unsigned simulatedCells = 0;
    unsigned loadedCells = 0;

    const RunResult &
    at(size_t bench, vm::Variant v) const
    {
        return results[bench][static_cast<size_t>(v)];
    }
};

/** How to run a sweep; the defaults reproduce runSweepCached("."). */
struct SweepOptions {
    unsigned jobs = 0;          ///< 0 = TARCH_JOBS env, else hardware
    std::string cacheDir = "."; ///< cells live in cacheDir/tarch-sweep-cache/
    bool useCache = true;
    bool forceCold = false;     ///< ignore existing cells, rewrite them
    /** Sinks to attach to every cell.  Cached cells carry no rendered
        artifacts, so an instrumented sweep always re-simulates (it
        still refreshes the cache — the stats are bit-identical). */
    obs::SessionConfig obs;
    /** Core execution engine for freshly simulated cells.  Not part of
        the cell key: exact and predecoded runs are bit-identical, so
        cached cells are shared across modes. */
    core::ExecMode execMode = core::defaultExecMode();
};

/**
 * Run every cell of the matrix, in parallel across @p opts.jobs worker
 * threads.  Results are deterministically ordered (bit-identical to a
 * serial run) regardless of the schedule.  A cell that throws
 * FatalError is marked failed and the REST OF THE SWEEP STILL RUNS;
 * only afterwards does the sweep throw FatalError naming every dead
 * cell.  @p benches defaults to the paper's eleven benchmarks.
 */
Sweep runSweep(Engine engine, const SweepOptions &opts,
               const std::vector<BenchmarkInfo> &benches);

/** Uncached sweep over the paper benchmarks (back-compat shim). */
Sweep runSweep(Engine engine, unsigned jobs = 0);

/**
 * Like runSweep, but memoized on disk per cell: each (engine,
 * benchmark, variant) result is stored under
 * `cache_dir/tarch-sweep-cache/` keyed by a hash of its benchmark
 * source and the simulator configuration, so the several per-figure
 * bench binaries share one simulation pass and an edited script only
 * invalidates its own three cells.  Delete the cache directory (or
 * pass forceCold) to force a re-run.
 */
Sweep runSweepCached(Engine engine, const SweepOptions &opts);
Sweep runSweepCached(Engine engine, const std::string &cache_dir = ".",
                     unsigned jobs = 0);

// ---------------------------------------------------------------------
// Cell-cache primitives, exposed for tests and tools.

/**
 * Invalidation key of one cell: fnv1a over the cache format version,
 * engine, benchmark name + source, variant, and the simulator
 * configuration fingerprint (core timing/cache/branch/TRT/deopt
 * parameters and the guest memory layout).
 */
uint64_t cellKey(Engine engine, const BenchmarkInfo &info,
                 vm::Variant variant);

/** Where runSweepCached stores one cell under @p cache_dir. */
std::string cellPath(const std::string &cache_dir, Engine engine,
                     const std::string &bench_name, vm::Variant variant);

/**
 * Idempotent, race-safe creation of `<cache_dir>/tarch-sweep-cache`.
 * Any number of concurrent creators — sweep workers, tarch_served
 * request workers, racing bench processes — may call this; the
 * directory existing afterwards counts as success no matter who made
 * it.  Returns false only when it cannot be made to exist.
 */
bool ensureCacheDir(const std::string &cache_dir);

/**
 * Atomically (temp file + rename) persist one cell.  Returns false on
 * I/O failure; never leaves a partially written file at @p path.
 */
bool saveCell(const RunResult &result, const std::string &path,
              uint64_t key);

/**
 * Parse one cell.  Every tag is validated and every length bounded; a
 * missing, truncated, corrupted, or stale-keyed file returns false (a
 * cache miss) rather than crashing or yielding garbage stats.
 */
bool loadCell(RunResult &result, const std::string &path, uint64_t key);

/** Geometric mean of a vector of ratios; fatal on an empty set. */
double geomean(const std::vector<double> &values);

/**
 * speedup = cycles(baseline) / cycles(variant); fatal (naming the
 * benchmark) if either run recorded 0 cycles.
 */
double speedupOf(const RunResult &baseline, const RunResult &variant);

} // namespace tarch::harness

#endif // TARCH_HARNESS_EXPERIMENT_H
