/**
 * @file
 * Experiment driver: run (engine, ISA variant, benchmark) combinations
 * and collect the performance-counter statistics the paper's figures
 * are built from.
 */

#ifndef TARCH_HARNESS_EXPERIMENT_H
#define TARCH_HARNESS_EXPERIMENT_H

#include <map>
#include <string>
#include <vector>

#include "core/stats.h"
#include "harness/benchmarks.h"
#include "vm/variant.h"

namespace tarch::harness {

/** Which scripting engine substrate to run. */
enum class Engine { Lua, Js };

constexpr const char *
engineName(Engine engine)
{
    return engine == Engine::Lua ? "MiniLua" : "MiniJS";
}

struct RunResult {
    std::string benchmark;
    Engine engine;
    vm::Variant variant;
    core::CoreStats stats;
    std::string output;
    uint64_t dynamicBytecodes = 0;
    std::map<std::string, uint64_t> bytecodeProfile;
    /** Per-marker (hits, region instructions) for Figure 2(b). */
    std::map<std::string, std::pair<uint64_t, uint64_t>> markerDetail;
};

/** Run one combination.  Throws FatalError on guest runtime errors. */
RunResult runOne(Engine engine, vm::Variant variant,
                 const BenchmarkInfo &info);

/**
 * A full sweep: all benchmarks x all three variants for one engine.
 * Verifies that every variant produced identical output per benchmark
 * (fatal otherwise) — the cross-variant correctness check.
 */
struct Sweep {
    Engine engine;
    /** results[benchmark index][variant index (Baseline,Typed,CL)] */
    std::vector<std::vector<RunResult>> results;

    const RunResult &
    at(size_t bench, vm::Variant v) const
    {
        return results[bench][static_cast<size_t>(v)];
    }
};

Sweep runSweep(Engine engine);

/**
 * Like runSweep, but memoized on disk: results are stored in
 * @p cache_dir keyed by a hash of the benchmark sources, so the several
 * per-figure bench binaries share one simulation pass.  Delete the
 * tarch_sweep_*.cache files (or change any script) to force a re-run.
 */
Sweep runSweepCached(Engine engine, const std::string &cache_dir = ".");

/** Geometric mean of a vector of ratios. */
double geomean(const std::vector<double> &values);

/** speedup = cycles(baseline) / cycles(variant). */
double speedupOf(const RunResult &baseline, const RunResult &variant);

} // namespace tarch::harness

#endif // TARCH_HARNESS_EXPERIMENT_H
