/**
 * @file
 * Registry of the eleven paper benchmarks (Table 7), embedded at build
 * time from the scripts directory (.ms files).
 */

#ifndef TARCH_HARNESS_BENCHMARKS_H
#define TARCH_HARNESS_BENCHMARKS_H

#include <string>
#include <vector>

namespace tarch::harness {

struct BenchmarkInfo {
    std::string name;
    std::string source;       ///< MiniScript program text
    std::string paperInput;   ///< input parameter in paper Table 7
    std::string scaledInput;  ///< our scaled input (EXPERIMENTS.md)
    std::string description;
};

/** All eleven benchmarks in paper order. */
const std::vector<BenchmarkInfo> &benchmarks();

/** Look up one benchmark by name; fatal if unknown. */
const BenchmarkInfo &benchmark(const std::string &name);

} // namespace tarch::harness

#endif // TARCH_HARNESS_BENCHMARKS_H
