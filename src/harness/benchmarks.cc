#include "harness/benchmarks.h"

#include "common/log.h"

namespace tarch::harness {

namespace {

struct EmbeddedScript {
    const char *name;
    const char *source;
};

const EmbeddedScript kScripts[] = {
#include "benchmark_scripts.inc"
};

struct Meta {
    const char *name;
    const char *paperInput;
    const char *scaledInput;
    const char *description;
};

// Paper Table 7 inputs and our scaled equivalents.
const Meta kMeta[] = {
    {"ackermann", "7", "ack(3,5)+ack(2,40)",
     "Ackermann function: deep recursion"},
    {"binary-trees", "12", "depth 8",
     "Allocate and deallocate many binary trees"},
    {"fannkuch-redux", "9", "7",
     "Indexed access to a tiny integer sequence"},
    {"fibo", "32", "21", "Naive recursive Fibonacci"},
    {"k-nucleotide", "250000", "1500",
     "Hash-table update keyed by k-nucleotide strings"},
    {"mandelbrot", "250", "40", "Mandelbrot set membership counting"},
    {"n-body", "500000", "1000", "Double-precision N-body simulation"},
    {"n-sieve", "7", "10000/5000/2500", "Sieve of Eratosthenes"},
    {"pidigits", "500", "60", "Streaming arbitrary-precision arithmetic"},
    {"random", "300000", "20000", "Linear-congruential random generator"},
    {"spectral-norm", "500", "24", "Eigenvalue using the power method"},
};

std::vector<BenchmarkInfo>
build()
{
    std::vector<BenchmarkInfo> list;
    for (const Meta &meta : kMeta) {
        const char *source = nullptr;
        for (const EmbeddedScript &script : kScripts) {
            if (std::string(script.name) == meta.name)
                source = script.source;
        }
        if (!source)
            tarch_panic("benchmark script '%s' not embedded", meta.name);
        list.push_back({meta.name, source, meta.paperInput,
                        meta.scaledInput, meta.description});
    }
    return list;
}

} // namespace

const std::vector<BenchmarkInfo> &
benchmarks()
{
    static const std::vector<BenchmarkInfo> list = build();
    return list;
}

const BenchmarkInfo &
benchmark(const std::string &name)
{
    for (const BenchmarkInfo &info : benchmarks()) {
        if (info.name == name)
            return info;
    }
    tarch_fatal("unknown benchmark '%s'", name.c_str());
}

} // namespace tarch::harness
