#include "harness/experiment.h"

#include <cmath>
#include <cstdio>

#include "common/log.h"
#include "vm/js/js_vm.h"
#include "vm/lua/lua_vm.h"

namespace tarch::harness {

namespace {

template <typename Vm>
RunResult
collect(Vm &vm, Engine engine, vm::Variant variant,
        const BenchmarkInfo &info)
{
    vm.run();
    RunResult result;
    result.benchmark = info.name;
    result.engine = engine;
    result.variant = variant;
    result.stats = vm.core().collectStats();
    result.output = vm.output();
    result.dynamicBytecodes = vm.dynamicBytecodes();
    result.bytecodeProfile = vm.bytecodeProfile();
    const core::Markers &markers = vm.core().markers();
    for (size_t i = 0; i < markers.count(); ++i) {
        auto &slot = result.markerDetail[markers.name(i)];
        slot.first += markers.hits(i);
        slot.second += markers.regionInstrs(i);
    }
    return result;
}

} // namespace

RunResult
runOne(Engine engine, vm::Variant variant, const BenchmarkInfo &info)
{
    if (engine == Engine::Lua) {
        vm::lua::LuaVm::Options opts;
        opts.variant = variant;
        vm::lua::LuaVm vm(info.source, opts);
        return collect(vm, engine, variant, info);
    }
    vm::js::JsVm::Options opts;
    opts.variant = variant;
    vm::js::JsVm vm(info.source, opts);
    return collect(vm, engine, variant, info);
}

Sweep
runSweep(Engine engine)
{
    Sweep sweep;
    sweep.engine = engine;
    for (const BenchmarkInfo &info : benchmarks()) {
        std::vector<RunResult> row;
        for (const vm::Variant v :
             {vm::Variant::Baseline, vm::Variant::Typed,
              vm::Variant::CheckedLoad})
            row.push_back(runOne(engine, v, info));
        // Cross-variant correctness: all three ISAs must agree.
        for (size_t v = 1; v < row.size(); ++v) {
            if (row[v].output != row[0].output)
                tarch_fatal(
                    "%s/%s: variant '%s' output differs from baseline",
                    engineName(engine), info.name.c_str(),
                    std::string(vm::variantName(
                                    static_cast<vm::Variant>(v)))
                        .c_str());
        }
        sweep.results.push_back(std::move(row));
    }
    return sweep;
}

// ---------------------------------------------------------------------
// Disk-backed sweep cache.

namespace {

/** Bump when simulator or VM behaviour changes invalidate old results. */
constexpr const char *kCacheVersion = "tarch-sweep-v3";

uint64_t
fnv1a(const std::string &text, uint64_t hash = 0xCBF29CE484222325ULL)
{
    for (const unsigned char c : text) {
        hash ^= c;
        hash *= 0x100000001B3ULL;
    }
    return hash;
}

uint64_t
sweepKey(Engine engine)
{
    uint64_t hash = fnv1a(kCacheVersion);
    hash = fnv1a(engineName(engine), hash);
    for (const BenchmarkInfo &info : benchmarks()) {
        hash = fnv1a(info.name, hash);
        hash = fnv1a(info.source, hash);
    }
    return hash;
}

void
writeStats(std::FILE *f, const core::CoreStats &s)
{
    std::fprintf(
        f,
        "stats %llu %llu %llu %llu %llu %llu %llu %llu %llu %llu %llu "
        "%llu %llu %llu %llu %llu %llu %llu %llu %llu %llu %llu %llu\n",
        (unsigned long long)s.instructions, (unsigned long long)s.cycles,
        (unsigned long long)s.loads, (unsigned long long)s.stores,
        (unsigned long long)s.branches.condBranches,
        (unsigned long long)s.branches.condMispredicts,
        (unsigned long long)s.branches.jumps,
        (unsigned long long)s.branches.jumpMispredicts,
        (unsigned long long)s.icache.accesses,
        (unsigned long long)s.icache.misses,
        (unsigned long long)s.icache.writebacks,
        (unsigned long long)s.dcache.accesses,
        (unsigned long long)s.dcache.misses,
        (unsigned long long)s.dcache.writebacks,
        (unsigned long long)s.itlb.accesses,
        (unsigned long long)s.itlb.misses,
        (unsigned long long)s.dtlb.accesses,
        (unsigned long long)s.dtlb.misses,
        (unsigned long long)s.trt.lookups, (unsigned long long)s.trt.hits,
        (unsigned long long)s.typeOverflowMisses,
        (unsigned long long)s.chklbChecks,
        (unsigned long long)s.chklbMisses);
}

bool
readStats(std::FILE *f, core::CoreStats &s)
{
    unsigned long long v[23];
    char tag[16];
    if (std::fscanf(f,
                    "%15s %llu %llu %llu %llu %llu %llu %llu %llu %llu "
                    "%llu %llu %llu %llu %llu %llu %llu %llu %llu %llu "
                    "%llu %llu %llu %llu",
                    tag, &v[0], &v[1], &v[2], &v[3], &v[4], &v[5], &v[6],
                    &v[7], &v[8], &v[9], &v[10], &v[11], &v[12], &v[13],
                    &v[14], &v[15], &v[16], &v[17], &v[18], &v[19], &v[20],
                    &v[21], &v[22]) != 24)
        return false;
    s.instructions = v[0];
    s.cycles = v[1];
    s.loads = v[2];
    s.stores = v[3];
    s.branches.condBranches = v[4];
    s.branches.condMispredicts = v[5];
    s.branches.jumps = v[6];
    s.branches.jumpMispredicts = v[7];
    s.icache.accesses = v[8];
    s.icache.misses = v[9];
    s.icache.writebacks = v[10];
    s.dcache.accesses = v[11];
    s.dcache.misses = v[12];
    s.dcache.writebacks = v[13];
    s.itlb.accesses = v[14];
    s.itlb.misses = v[15];
    s.dtlb.accesses = v[16];
    s.dtlb.misses = v[17];
    s.trt.lookups = v[18];
    s.trt.hits = v[19];
    s.typeOverflowMisses = v[20];
    s.chklbChecks = v[21];
    s.chklbMisses = v[22];
    return true;
}

void
writeBlob(std::FILE *f, const char *tag, const std::string &text)
{
    std::fprintf(f, "%s %zu\n", tag, text.size());
    std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
}

bool
readBlob(std::FILE *f, std::string &text)
{
    char tag[32];
    size_t len;
    if (std::fscanf(f, "%31s %zu", tag, &len) != 2)
        return false;
    std::fgetc(f);  // the newline after the length
    text.resize(len);
    if (len && std::fread(text.data(), 1, len, f) != len)
        return false;
    std::fgetc(f);
    return true;
}

bool
saveSweep(const Sweep &sweep, const std::string &path, uint64_t key)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::fprintf(f, "%s %016llx %zu\n", kCacheVersion,
                 (unsigned long long)key, sweep.results.size());
    for (const auto &row : sweep.results) {
        for (const RunResult &r : row) {
            writeBlob(f, "bench", r.benchmark);
            std::fprintf(f, "variant %u\n",
                         static_cast<unsigned>(r.variant));
            writeStats(f, r.stats);
            std::fprintf(f, "dynbc %llu\n",
                         (unsigned long long)r.dynamicBytecodes);
            writeBlob(f, "output", r.output);
            std::fprintf(f, "profile %zu\n", r.bytecodeProfile.size());
            for (const auto &[name, count] : r.bytecodeProfile)
                std::fprintf(f, "%s %llu\n", name.c_str(),
                             (unsigned long long)count);
            std::fprintf(f, "markers %zu\n", r.markerDetail.size());
            for (const auto &[name, detail] : r.markerDetail)
                std::fprintf(f, "%s %llu %llu\n", name.c_str(),
                             (unsigned long long)detail.first,
                             (unsigned long long)detail.second);
        }
    }
    std::fclose(f);
    return true;
}

bool
loadSweep(Sweep &sweep, const std::string &path, uint64_t key)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (!f)
        return false;
    char version[64];
    unsigned long long stored_key;
    size_t nbench;
    bool ok = std::fscanf(f, "%63s %llx %zu", version, &stored_key,
                          &nbench) == 3 &&
              std::string(version) == kCacheVersion && stored_key == key;
    for (size_t b = 0; ok && b < nbench; ++b) {
        std::vector<RunResult> row;
        for (unsigned v = 0; ok && v < 3; ++v) {
            RunResult r;
            r.engine = sweep.engine;
            unsigned variant;
            unsigned long long dynbc;
            size_t count;
            ok = readBlob(f, r.benchmark) &&
                 std::fscanf(f, " variant %u", &variant) == 1;
            if (!ok)
                break;
            r.variant = static_cast<vm::Variant>(variant);
            ok = readStats(f, r.stats) &&
                 std::fscanf(f, " dynbc %llu", &dynbc) == 1;
            if (!ok)
                break;
            r.dynamicBytecodes = dynbc;
            ok = readBlob(f, r.output) &&
                 std::fscanf(f, " profile %zu", &count) == 1;
            for (size_t i = 0; ok && i < count; ++i) {
                char name[128];
                unsigned long long n;
                ok = std::fscanf(f, "%127s %llu", name, &n) == 2;
                if (ok)
                    r.bytecodeProfile[name] = n;
            }
            ok = ok && std::fscanf(f, " markers %zu", &count) == 1;
            for (size_t i = 0; ok && i < count; ++i) {
                char name[128];
                unsigned long long hits, instrs;
                ok = std::fscanf(f, "%127s %llu %llu", name, &hits,
                                 &instrs) == 3;
                if (ok)
                    r.markerDetail[name] = {hits, instrs};
            }
            row.push_back(std::move(r));
        }
        if (ok)
            sweep.results.push_back(std::move(row));
    }
    std::fclose(f);
    if (!ok)
        sweep.results.clear();
    return ok;
}

} // namespace

Sweep
runSweepCached(Engine engine, const std::string &cache_dir)
{
    const uint64_t key = sweepKey(engine);
    const std::string path =
        cache_dir + "/tarch_sweep_" +
        (engine == Engine::Lua ? "lua" : "js") + ".cache";
    Sweep sweep;
    sweep.engine = engine;
    if (loadSweep(sweep, path, key)) {
        std::fprintf(stderr, "info: loaded %s sweep from %s\n",
                     engineName(engine), path.c_str());
        return sweep;
    }
    sweep = runSweep(engine);
    if (!saveSweep(sweep, path, key))
        tarch_warn("could not write sweep cache %s", path.c_str());
    return sweep;
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (const double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
speedupOf(const RunResult &baseline, const RunResult &variant)
{
    return static_cast<double>(baseline.stats.cycles) /
           static_cast<double>(variant.stats.cycles);
}

} // namespace tarch::harness
