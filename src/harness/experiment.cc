#include "harness/experiment.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <thread>
#include <unistd.h>

#include "common/log.h"
#include "common/parallel.h"
#include "common/strutil.h"
#include "vm/image.h"
#include "vm/js/js_vm.h"
#include "vm/lua/lua_vm.h"

namespace tarch::harness {

namespace {

template <typename Vm>
RunResult
collect(Vm &vm, Engine engine, vm::Variant variant,
        const BenchmarkInfo &info, const obs::SessionConfig &obs,
        core::ExecMode exec_mode)
{
    obs::Session session(vm.core(), obs);
    vm.run();
    RunResult result;
    result.benchmark = info.name;
    result.engine = engine;
    result.variant = variant;
    result.execMode = exec_mode;
    result.stats = vm.core().collectStats();
    result.output = vm.output();
    result.dynamicBytecodes = vm.dynamicBytecodes();
    result.bytecodeProfile = vm.bytecodeProfile();
    const core::Markers &markers = vm.core().markers();
    for (size_t i = 0; i < markers.count(); ++i) {
        auto &slot = result.markerDetail[markers.name(i)];
        slot.first += markers.hits(i);
        slot.second += markers.regionInstrs(i);
    }
    result.obsArtifacts = session.finish();
    return result;
}

} // namespace

RunResult
runOne(Engine engine, vm::Variant variant, const BenchmarkInfo &info)
{
    return runOne(engine, variant, info, obs::SessionConfig{});
}

RunResult
runOne(Engine engine, vm::Variant variant, const BenchmarkInfo &info,
       const obs::SessionConfig &obs)
{
    return runOne(engine, variant, info, obs, core::defaultExecMode());
}

RunResult
runOne(Engine engine, vm::Variant variant, const BenchmarkInfo &info,
       const obs::SessionConfig &obs, core::ExecMode exec_mode)
{
    if (engine == Engine::Lua) {
        vm::lua::LuaVm::Options opts;
        opts.variant = variant;
        opts.coreConfig.execMode = exec_mode;
        vm::lua::LuaVm vm(info.source, opts);
        return collect(vm, engine, variant, info, obs, exec_mode);
    }
    vm::js::JsVm::Options opts;
    opts.variant = variant;
    opts.coreConfig.execMode = exec_mode;
    vm::js::JsVm vm(info.source, opts);
    return collect(vm, engine, variant, info, obs, exec_mode);
}

// ---------------------------------------------------------------------
// Per-cell disk cache.
//
// One file per (engine, benchmark, variant) cell, named
//   <cacheDir>/tarch-sweep-cache/<lua|js>_<bench>_<variant>.cell
// and keyed by a hash over everything that can invalidate the result.
// Writes go through a temp file + rename so a reader (or a second
// bench binary racing on a cold cache) never sees a torn cell, and the
// parser validates every tag and bounds every length so any damaged
// cell degrades to a re-simulation instead of garbage stats or a crash.

namespace {

/** Bump when the cell format or simulator behaviour changes.  v6: a
    `mode` provenance line records which execution engine (exact or
    predecoded, docs/FASTPATH.md) simulated the cell.  The mode is NOT
    part of the key — both engines are bit-identical by contract, so
    cells are shared across modes. */
constexpr const char *kCellVersion = "tarch-cell-v6";

constexpr vm::Variant kVariants[3] = {vm::Variant::Baseline,
                                      vm::Variant::Typed,
                                      vm::Variant::CheckedLoad};

constexpr size_t kMaxNameLen = 4096;          ///< bench/profile/marker names
constexpr size_t kMaxOutputLen = 64u << 20;   ///< guest program output
constexpr size_t kMaxMapEntries = 1u << 20;   ///< profile/marker counts

std::string
variantStr(vm::Variant v)
{
    return std::string(vm::variantName(v));
}

uint64_t
fnv1a(const std::string &text, uint64_t hash = 0xCBF29CE484222325ULL)
{
    for (const unsigned char c : text) {
        hash ^= c;
        hash *= 0x100000001B3ULL;
    }
    return hash;
}

/**
 * Every simulator parameter a harness run depends on, as text.  The
 * harness always runs the VMs on default configurations, so a change
 * to any default in the config headers must invalidate cached cells.
 */
std::string
simConfigFingerprint()
{
    const core::CoreConfig c;
    const vm::GuestLayout l;
    const auto cacheStr = [](const mem::CacheConfig &cc) {
        return strformat("%llu %u %u %u",
                         (unsigned long long)cc.sizeBytes, cc.ways,
                         cc.blockBytes, cc.hitLatency);
    };
    std::string s = strformat(
        "timing %u %u %u %u %u %u %u %u %u %u;", c.timing.redirectPenalty,
        c.timing.latIntAlu, c.timing.latIntMul, c.timing.latIntDiv,
        c.timing.latLoad, c.timing.latFpAlu, c.timing.latFpMul,
        c.timing.latFpDiv, c.timing.latFpSqrt, c.timing.drainCycles);
    s += "icache " + cacheStr(c.icache) + ";dcache " + cacheStr(c.dcache);
    s += strformat(";itlb %u %u %u;dtlb %u %u %u;", c.itlb.entries,
                   c.itlb.pageBytes, c.itlb.missLatency, c.dtlb.entries,
                   c.dtlb.pageBytes, c.dtlb.missLatency);
    s += strformat("dram %u %u %u %u %u %u %.3f %.3f %u;", c.dram.numBanks,
                   c.dram.rowBytes, c.dram.tCl, c.dram.tRcd, c.dram.tRp,
                   c.dram.burstBeats, c.dram.coreClockMhz,
                   c.dram.dramClockMhz, c.dram.controllerCoreCycles);
    s += strformat("branch %u %u %u %u;", c.branch.gshare.entries,
                   c.branch.gshare.historyBits, c.branch.btb.entries,
                   c.branch.ras.entries);
    s += strformat("trt %u;deopt %d %u %u %u %u;", c.trtCapacity,
                   (int)c.deopt.enabled, c.deopt.tableEntries,
                   (unsigned)c.deopt.threshold, (unsigned)c.deopt.missBump,
                   (unsigned)c.deopt.probeInterval);
    s += strformat("lim %llu heap %llx stack %llx;",
                   (unsigned long long)c.maxInstructions,
                   (unsigned long long)c.heapBase,
                   (unsigned long long)c.stackTop);
    s += strformat("layout %llx %llx %llx %llx %llx %llx %llx %llx %llx",
                   (unsigned long long)l.interpText,
                   (unsigned long long)l.interpData,
                   (unsigned long long)l.globals,
                   (unsigned long long)l.protos,
                   (unsigned long long)l.code,
                   (unsigned long long)l.consts,
                   (unsigned long long)l.valueStack,
                   (unsigned long long)l.callStack,
                   (unsigned long long)l.heap);
    return s;
}

void
writeStats(std::FILE *f, const core::CoreStats &s)
{
    std::fprintf(
        f,
        "stats %llu %llu %llu %llu %llu %llu %llu %llu %llu %llu %llu "
        "%llu %llu %llu %llu %llu %llu %llu %llu %llu %llu %llu %llu "
        "%llu %llu %llu\n",
        (unsigned long long)s.instructions, (unsigned long long)s.cycles,
        (unsigned long long)s.loads, (unsigned long long)s.stores,
        (unsigned long long)s.branches.condBranches,
        (unsigned long long)s.branches.condMispredicts,
        (unsigned long long)s.branches.jumps,
        (unsigned long long)s.branches.jumpMispredicts,
        (unsigned long long)s.icache.accesses,
        (unsigned long long)s.icache.misses,
        (unsigned long long)s.icache.writebacks,
        (unsigned long long)s.dcache.accesses,
        (unsigned long long)s.dcache.misses,
        (unsigned long long)s.dcache.writebacks,
        (unsigned long long)s.itlb.accesses,
        (unsigned long long)s.itlb.misses,
        (unsigned long long)s.dtlb.accesses,
        (unsigned long long)s.dtlb.misses,
        (unsigned long long)s.trt.lookups, (unsigned long long)s.trt.hits,
        (unsigned long long)s.typeOverflowMisses,
        (unsigned long long)s.chklbChecks,
        (unsigned long long)s.chklbMisses,
        (unsigned long long)s.deoptRedirects,
        (unsigned long long)s.deoptProbes,
        (unsigned long long)s.hostcalls);
}

/** Read one whitespace-delimited token and require it to be @p tag. */
bool
readTag(std::FILE *f, const char *tag)
{
    char token[32];
    if (std::fscanf(f, " %31s", token) != 1)
        return false;
    return std::strcmp(token, tag) == 0;
}

bool
readU64(std::FILE *f, unsigned long long &value)
{
    return std::fscanf(f, " %llu", &value) == 1;
}

bool
readStats(std::FILE *f, core::CoreStats &s)
{
    if (!readTag(f, "stats"))
        return false;
    unsigned long long v[26];
    for (unsigned long long &field : v) {
        if (!readU64(f, field))
            return false;
    }
    s.instructions = v[0];
    s.cycles = v[1];
    s.loads = v[2];
    s.stores = v[3];
    s.branches.condBranches = v[4];
    s.branches.condMispredicts = v[5];
    s.branches.jumps = v[6];
    s.branches.jumpMispredicts = v[7];
    s.icache.accesses = v[8];
    s.icache.misses = v[9];
    s.icache.writebacks = v[10];
    s.dcache.accesses = v[11];
    s.dcache.misses = v[12];
    s.dcache.writebacks = v[13];
    s.itlb.accesses = v[14];
    s.itlb.misses = v[15];
    s.dtlb.accesses = v[16];
    s.dtlb.misses = v[17];
    s.trt.lookups = v[18];
    s.trt.hits = v[19];
    s.typeOverflowMisses = v[20];
    s.chklbChecks = v[21];
    s.chklbMisses = v[22];
    s.deoptRedirects = v[23];
    s.deoptProbes = v[24];
    s.hostcalls = v[25];
    return true;
}

/** `<tag> <len>\n<len raw bytes>\n` — names and outputs of any content. */
void
writeBlob(std::FILE *f, const char *tag, const std::string &text)
{
    std::fprintf(f, "%s %zu\n", tag, text.size());
    std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
}

bool
readBlob(std::FILE *f, const char *tag, std::string &text, size_t max_len)
{
    unsigned long long len;
    if (!readTag(f, tag) || !readU64(f, len) || len > max_len)
        return false;
    if (std::fgetc(f) != '\n')
        return false;
    text.resize(len);
    if (len && std::fread(text.data(), 1, len, f) != len)
        return false;
    return std::fgetc(f) == '\n';
}

void
writeCell(std::FILE *f, const RunResult &r, uint64_t key)
{
    std::fprintf(f, "%s %016llx\n", kCellVersion, (unsigned long long)key);
    std::fprintf(f, "engine %s\n", engineName(r.engine));
    writeBlob(f, "bench", r.benchmark);
    std::fprintf(f, "variant %u\n", static_cast<unsigned>(r.variant));
    const std::string_view mode_name = core::execModeName(r.execMode);
    std::fprintf(f, "mode %.*s\n", static_cast<int>(mode_name.size()),
                 mode_name.data());
    writeStats(f, r.stats);
    std::fprintf(f, "dynbc %llu\n",
                 (unsigned long long)r.dynamicBytecodes);
    writeBlob(f, "output", r.output);
    std::fprintf(f, "profile %zu\n", r.bytecodeProfile.size());
    for (const auto &[name, count] : r.bytecodeProfile) {
        writeBlob(f, "name", name);
        std::fprintf(f, "count %llu\n", (unsigned long long)count);
    }
    std::fprintf(f, "markers %zu\n", r.markerDetail.size());
    for (const auto &[name, detail] : r.markerDetail) {
        writeBlob(f, "name", name);
        std::fprintf(f, "hits %llu %llu\n",
                     (unsigned long long)detail.first,
                     (unsigned long long)detail.second);
    }
    std::fputs("end\n", f);
}

bool
readCell(std::FILE *f, RunResult &r, uint64_t key)
{
    char version[32];
    unsigned long long stored_key;
    if (std::fscanf(f, " %31s %llx", version, &stored_key) != 2 ||
        std::strcmp(version, kCellVersion) != 0 || stored_key != key)
        return false;
    char engine[16];
    if (!readTag(f, "engine") || std::fscanf(f, " %15s", engine) != 1)
        return false;
    if (std::strcmp(engine, engineName(Engine::Lua)) == 0)
        r.engine = Engine::Lua;
    else if (std::strcmp(engine, engineName(Engine::Js)) == 0)
        r.engine = Engine::Js;
    else
        return false;
    if (!readBlob(f, "bench", r.benchmark, kMaxNameLen))
        return false;
    unsigned long long variant;
    if (!readTag(f, "variant") || !readU64(f, variant) || variant > 2)
        return false;
    r.variant = static_cast<vm::Variant>(variant);
    char mode[16];
    if (!readTag(f, "mode") || std::fscanf(f, " %15s", mode) != 1)
        return false;
    const auto parsed_mode = core::execModeFromName(mode);
    if (!parsed_mode)
        return false;
    r.execMode = *parsed_mode;
    if (!readStats(f, r.stats))
        return false;
    unsigned long long dynbc;
    if (!readTag(f, "dynbc") || !readU64(f, dynbc))
        return false;
    r.dynamicBytecodes = dynbc;
    if (!readBlob(f, "output", r.output, kMaxOutputLen))
        return false;
    unsigned long long count;
    if (!readTag(f, "profile") || !readU64(f, count) ||
        count > kMaxMapEntries)
        return false;
    r.bytecodeProfile.clear();
    for (unsigned long long i = 0; i < count; ++i) {
        std::string name;
        unsigned long long n;
        if (!readBlob(f, "name", name, kMaxNameLen) ||
            !readTag(f, "count") || !readU64(f, n))
            return false;
        r.bytecodeProfile[name] = n;
    }
    if (!readTag(f, "markers") || !readU64(f, count) ||
        count > kMaxMapEntries)
        return false;
    r.markerDetail.clear();
    for (unsigned long long i = 0; i < count; ++i) {
        std::string name;
        unsigned long long hits, instrs;
        if (!readBlob(f, "name", name, kMaxNameLen) ||
            !readTag(f, "hits") || !readU64(f, hits) ||
            !readU64(f, instrs))
            return false;
        r.markerDetail[name] = {hits, instrs};
    }
    return readTag(f, "end");
}

} // namespace

uint64_t
cellKey(Engine engine, const BenchmarkInfo &info, vm::Variant variant)
{
    uint64_t hash = fnv1a(kCellVersion);
    hash = fnv1a(engineName(engine), hash);
    hash = fnv1a(info.name, hash);
    hash = fnv1a(info.source, hash);
    hash = fnv1a(variantStr(variant), hash);
    hash = fnv1a(simConfigFingerprint(), hash);
    return hash;
}

std::string
cellPath(const std::string &cache_dir, Engine engine,
         const std::string &bench_name, vm::Variant variant)
{
    return cache_dir + "/tarch-sweep-cache/" +
           (engine == Engine::Lua ? "lua" : "js") + "_" + bench_name +
           "_" + variantStr(variant) + ".cell";
}

bool
ensureCacheDir(const std::string &cache_dir)
{
    const std::string dir = cache_dir + "/tarch-sweep-cache";
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (!ec)
        return true;
    // A concurrent creator (another worker thread or a racing process)
    // can surface as an error from create_directories; the directory
    // existing afterwards is all a writer needs.
    std::error_code probe;
    return std::filesystem::is_directory(dir, probe);
}

bool
saveCell(const RunResult &result, const std::string &path, uint64_t key)
{
    // Unique temp name per process AND thread: two bench binaries (or
    // two server workers) racing on a cold cache each stage their own
    // file; rename() then publishes whole cells only (all writers
    // produce identical bytes anyway).
    const std::string tmp = strformat(
        "%s.tmp.%ld.%zu", path.c_str(), (long)::getpid(),
        std::hash<std::thread::id>{}(std::this_thread::get_id()));
    std::FILE *f = std::fopen(tmp.c_str(), "w");
    if (!f) {
        // Lazy writers (server workers on a fresh cache dir) may land
        // here before anyone created the directory; make it exist and
        // retry once.
        const std::string parent =
            std::filesystem::path(path).parent_path().string();
        std::error_code ec;
        std::filesystem::create_directories(parent, ec);
        std::error_code probe;
        if (!std::filesystem::is_directory(parent, probe))
            return false;
        f = std::fopen(tmp.c_str(), "w");
        if (!f)
            return false;
    }
    writeCell(f, result, key);
    bool ok = !std::ferror(f);
    if (std::fclose(f) != 0)
        ok = false;
    if (ok && std::rename(tmp.c_str(), path.c_str()) != 0)
        ok = false;
    if (!ok)
        std::remove(tmp.c_str());
    return ok;
}

bool
loadCell(RunResult &result, const std::string &path, uint64_t key)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (!f)
        return false;
    RunResult parsed;
    const bool ok = readCell(f, parsed, key);
    std::fclose(f);
    if (ok)
        result = std::move(parsed);
    return ok;
}

// ---------------------------------------------------------------------
// The sweep executor.

namespace {

/** Outcome slot for one (benchmark, variant) cell of the matrix. */
struct CellOutcome {
    RunResult result;
    bool simulated = false;
    std::string error; ///< non-empty: the cell's FatalError message
};

} // namespace

Sweep
runSweep(Engine engine, const SweepOptions &opts,
         const std::vector<BenchmarkInfo> &benches)
{
    const unsigned jobs = resolveJobs(opts.jobs);
    bool cache = opts.useCache;
    if (cache && !ensureCacheDir(opts.cacheDir)) {
        tarch_warn("cannot create sweep cache under %s; running uncached",
                   opts.cacheDir.c_str());
        cache = false;
    }

    // Instrumented sweeps must actually simulate — cached cells carry
    // no rendered artifacts.  The cells still get (re)written: the
    // probe bus never changes the stats, so the bytes are identical.
    const bool instrumented = opts.obs.any();

    std::vector<CellOutcome> cells(benches.size() * 3);
    parallelFor(cells.size(), jobs, [&](size_t idx) {
        const BenchmarkInfo &info = benches[idx / 3];
        const vm::Variant variant = kVariants[idx % 3];
        CellOutcome &cell = cells[idx];
        const uint64_t key = cache ? cellKey(engine, info, variant) : 0;
        const std::string path =
            cache ? cellPath(opts.cacheDir, engine, info.name, variant)
                  : std::string();
        if (cache && !opts.forceCold && !instrumented &&
            loadCell(cell.result, path, key))
            return;
        try {
            cell.result =
                runOne(engine, variant, info, opts.obs, opts.execMode);
        } catch (const FatalError &e) {
            // Crash tolerance: record the dead cell, let the rest of
            // the sweep finish, report every failure at the end.
            cell.error = e.what();
            return;
        }
        cell.simulated = true;
        if (cache) {
            tarch_inform("sim %s/%s/%s", engineName(engine),
                         info.name.c_str(), variantStr(variant).c_str());
            if (!saveCell(cell.result, path, key))
                tarch_warn("could not write sweep cache cell %s",
                           path.c_str());
        }
    });

    Sweep sweep;
    sweep.engine = engine;
    unsigned failed = 0;
    std::string dead;
    for (size_t idx = 0; idx < cells.size(); ++idx) {
        const CellOutcome &cell = cells[idx];
        if (!cell.error.empty()) {
            ++failed;
            dead += strformat("  %s/%s/%s: %s\n", engineName(engine),
                              benches[idx / 3].name.c_str(),
                              variantStr(kVariants[idx % 3]).c_str(),
                              cell.error.c_str());
        } else if (cell.simulated) {
            ++sweep.simulatedCells;
        } else {
            ++sweep.loadedCells;
        }
    }
    if (failed)
        tarch_fatal("%s sweep: %u of %zu cell(s) failed:\n%s",
                    engineName(engine), failed, cells.size(),
                    dead.c_str());
    if (cache)
        tarch_inform("%s sweep: %u cell(s) simulated, %u loaded "
                     "(%s/tarch-sweep-cache, %u job(s))",
                     engineName(engine), sweep.simulatedCells,
                     sweep.loadedCells, opts.cacheDir.c_str(), jobs);

    for (size_t b = 0; b < benches.size(); ++b) {
        std::vector<RunResult> row;
        for (unsigned v = 0; v < 3; ++v)
            row.push_back(std::move(cells[b * 3 + v].result));
        // Cross-variant correctness: all three ISAs must agree.
        for (size_t v = 1; v < row.size(); ++v) {
            if (row[v].output != row[0].output)
                tarch_fatal(
                    "%s/%s: variant '%s' output differs from baseline",
                    engineName(engine), benches[b].name.c_str(),
                    variantStr(row[v].variant).c_str());
        }
        sweep.results.push_back(std::move(row));
    }
    return sweep;
}

Sweep
runSweep(Engine engine, unsigned jobs)
{
    SweepOptions opts;
    opts.jobs = jobs;
    opts.useCache = false;
    return runSweep(engine, opts, benchmarks());
}

Sweep
runSweepCached(Engine engine, const SweepOptions &opts)
{
    return runSweep(engine, opts, benchmarks());
}

Sweep
runSweepCached(Engine engine, const std::string &cache_dir, unsigned jobs)
{
    SweepOptions opts;
    opts.cacheDir = cache_dir;
    opts.jobs = jobs;
    return runSweep(engine, opts, benchmarks());
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        tarch_fatal("geomean() of an empty set");
    double log_sum = 0.0;
    for (const double v : values) {
        if (v <= 0.0)
            tarch_fatal("geomean() of a non-positive ratio %g", v);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
speedupOf(const RunResult &baseline, const RunResult &variant)
{
    if (baseline.stats.cycles == 0 || variant.stats.cycles == 0) {
        const RunResult &bad =
            baseline.stats.cycles == 0 ? baseline : variant;
        tarch_fatal("speedupOf(%s): '%s' run recorded 0 cycles",
                    bad.benchmark.c_str(),
                    variantStr(bad.variant).c_str());
    }
    return static_cast<double>(baseline.stats.cycles) /
           static_cast<double>(variant.stats.cycles);
}

} // namespace tarch::harness
