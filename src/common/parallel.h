/**
 * @file
 * Shared work-queue executors.
 *
 * parallelFor() is the run-to-completion pool that hands out indices
 * from an atomic counter; it drives the experiment harness (the 33-cell
 * sweep matrix), the differential fuzzer (one task per seed), and the
 * ablation bench.  Callers that write results[i] from body(i) get
 * deterministic, schedule-independent output.
 *
 * Pool is the persistent, bounded-queue companion for long-running
 * services (the tarch_served request dispatcher): tasks are submitted
 * one at a time, a full queue rejects instead of blocking (the caller
 * turns that into backpressure), and several pools of different sizes
 * can coexist in one process — each sized from its own environment
 * variable without the lookups racing.
 */

#ifndef TARCH_COMMON_PARALLEL_H
#define TARCH_COMMON_PARALLEL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tarch {

/**
 * Resolve a worker count: an explicit @p requested > 0 wins, else a
 * well-formed @p env_var environment variable, else the hardware
 * concurrency (at least 1).  A malformed variable warns and is ignored
 * rather than aborting a run that never asked for it.  The environment
 * lookup is serialized process-wide, so two pools sized from different
 * variables can be constructed concurrently without racing in getenv.
 */
unsigned resolveJobs(unsigned requested, const char *env_var);
unsigned resolveJobs(unsigned requested = 0);

/**
 * Run body(i) for every i in [0, count) on up to @p jobs worker
 * threads (@p jobs is passed through resolveJobs).  Indices are handed
 * out from a shared counter, so the completion order across threads is
 * unspecified.  jobs == 1 or count <= 1 runs inline on the caller's
 * thread with no pool at all.
 *
 * If any body throws, the remaining un-started indices are abandoned,
 * all workers join, and the exception from the lowest observed failing
 * index is rethrown on the caller's thread.  Callers that must survive
 * individual failures (the sweep's crash tolerance) catch inside body.
 */
void parallelFor(size_t count, unsigned jobs,
                 const std::function<void(size_t)> &body);

/**
 * A persistent worker pool with a bounded task queue.
 *
 * Unlike parallelFor, a Pool outlives any one batch of work: tasks are
 * submitted individually and run on a fixed set of worker threads.  The
 * queue bound is the backpressure mechanism — trySubmit() on a full
 * queue returns false immediately instead of stalling the submitter,
 * which is what lets a server answer BUSY rather than hanging a socket.
 *
 * Tasks must not throw; an escaped exception is logged and swallowed
 * (the pool keeps running).  Destruction closes the pool: no new tasks,
 * queued tasks still run, workers join.
 */
class Pool
{
  public:
    struct Options {
        /** Worker count; 0 resolves through jobsEnvVar. */
        unsigned jobs = 0;
        /** Environment variable consulted when jobs == 0, so a server
            pool (TARCH_SERVE_JOBS) and the sweep pool (TARCH_JOBS) are
            sized independently. */
        const char *jobsEnvVar = "TARCH_JOBS";
        /** Maximum queued (not yet started) tasks; 0 = unbounded. */
        size_t queueCapacity = 0;
    };

    explicit Pool(const Options &opts);
    ~Pool();

    Pool(const Pool &) = delete;
    Pool &operator=(const Pool &) = delete;

    /**
     * Enqueue @p task unless the queue is at capacity or the pool is
     * closed; returns whether the task was accepted.  Never blocks.
     */
    bool trySubmit(std::function<void()> task);

    /**
     * Enqueue @p task, waiting for queue space if necessary.  Returns
     * false only when the pool is (or gets) closed.
     */
    bool submit(std::function<void()> task);

    /** Block until the queue is empty and no task is executing. */
    void drain();

    /** Stop accepting tasks, finish the queue, join the workers.
        Idempotent; called by the destructor. */
    void close();

    unsigned jobs() const { return jobs_; }
    /** Queued (not yet started) tasks. */
    size_t pending() const;
    /** Queued plus currently executing tasks. */
    size_t inFlight() const;

  private:
    void workerLoop();

    unsigned jobs_ = 1;
    mutable std::mutex mu_;
    std::condition_variable taskReady_;   ///< workers: queue non-empty/closed
    std::condition_variable spaceReady_;  ///< submitters: queue below cap
    std::condition_variable allIdle_;     ///< drain(): nothing left anywhere
    std::deque<std::function<void()>> queue_;
    std::vector<std::thread> workers_;
    size_t capacity_ = 0;  ///< 0 = unbounded
    size_t running_ = 0;   ///< tasks currently executing
    bool closed_ = false;
};

} // namespace tarch

#endif // TARCH_COMMON_PARALLEL_H
