/**
 * @file
 * Shared work-queue executor: a bounded thread pool that hands out
 * indices from an atomic counter.  Used by the experiment harness (the
 * 33-cell sweep matrix), the differential fuzzer (one task per seed),
 * and the ablation bench.  Callers that write results[i] from body(i)
 * get deterministic, schedule-independent output.
 */

#ifndef TARCH_COMMON_PARALLEL_H
#define TARCH_COMMON_PARALLEL_H

#include <cstddef>
#include <functional>

namespace tarch {

/**
 * Resolve a worker count: an explicit @p requested > 0 wins, else a
 * well-formed TARCH_JOBS environment variable, else the hardware
 * concurrency (at least 1).  A malformed TARCH_JOBS warns and is
 * ignored rather than aborting a run that never asked for it.
 */
unsigned resolveJobs(unsigned requested = 0);

/**
 * Run body(i) for every i in [0, count) on up to @p jobs worker
 * threads (@p jobs is passed through resolveJobs).  Indices are handed
 * out from a shared counter, so the completion order across threads is
 * unspecified.  jobs == 1 or count <= 1 runs inline on the caller's
 * thread with no pool at all.
 *
 * If any body throws, the remaining un-started indices are abandoned,
 * all workers join, and the exception from the lowest observed failing
 * index is rethrown on the caller's thread.  Callers that must survive
 * individual failures (the sweep's crash tolerance) catch inside body.
 */
void parallelFor(size_t count, unsigned jobs,
                 const std::function<void(size_t)> &body);

} // namespace tarch

#endif // TARCH_COMMON_PARALLEL_H
