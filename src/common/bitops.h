/**
 * @file
 * Small bit-manipulation helpers shared across the simulator.
 */

#ifndef TARCH_COMMON_BITOPS_H
#define TARCH_COMMON_BITOPS_H

#include <cstdint>

namespace tarch {

/** Extract bits [hi:lo] (inclusive) of a 64-bit value, right-justified. */
constexpr uint64_t
bits(uint64_t value, unsigned hi, unsigned lo)
{
    const unsigned width = hi - lo + 1;
    const uint64_t mask = width >= 64 ? ~0ULL : ((1ULL << width) - 1);
    return (value >> lo) & mask;
}

/** Sign-extend the low @p width bits of @p value to 64 bits. */
constexpr int64_t
signExtend(uint64_t value, unsigned width)
{
    const unsigned shift = 64 - width;
    return static_cast<int64_t>(value << shift) >> shift;
}

/** True if @p value fits in a signed immediate of @p width bits. */
constexpr bool
fitsSigned(int64_t value, unsigned width)
{
    const int64_t lo = -(1LL << (width - 1));
    const int64_t hi = (1LL << (width - 1)) - 1;
    return value >= lo && value <= hi;
}

/** Insert @p field into bits [hi:lo] of @p base. */
constexpr uint64_t
insertBits(uint64_t base, unsigned hi, unsigned lo, uint64_t field)
{
    const unsigned width = hi - lo + 1;
    const uint64_t mask = width >= 64 ? ~0ULL : ((1ULL << width) - 1);
    return (base & ~(mask << lo)) | ((field & mask) << lo);
}

/** True if @p value is a power of two (zero excluded). */
constexpr bool
isPow2(uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** floor(log2(value)); value must be non-zero. */
constexpr unsigned
log2Floor(uint64_t value)
{
    unsigned result = 0;
    while (value >>= 1)
        ++result;
    return result;
}

/** Round @p value up to the next multiple of @p align (a power of two). */
constexpr uint64_t
alignUp(uint64_t value, uint64_t align)
{
    return (value + align - 1) & ~(align - 1);
}

} // namespace tarch

#endif // TARCH_COMMON_BITOPS_H
