#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/log.h"

namespace tarch {

unsigned
resolveJobs(unsigned requested, const char *env_var)
{
    if (requested > 0)
        return requested;
    // getenv itself is unsynchronized; serialize all pool-sizing
    // lookups so concurrently constructed pools (server pool vs. sweep
    // pool) never race here.
    static std::mutex env_mu;
    std::string text;
    bool have_env = false;
    {
        std::lock_guard<std::mutex> lock(env_mu);
        if (const char *env = std::getenv(env_var)) {
            text = env;
            have_env = true;
        }
    }
    if (have_env) {
        char *end = nullptr;
        const unsigned long n = std::strtoul(text.c_str(), &end, 10);
        if (end != text.c_str() && *end == '\0' && n > 0 && n <= 4096)
            return static_cast<unsigned>(n);
        tarch_warn("ignoring malformed %s='%s'", env_var, text.c_str());
    }
    return std::max(1u, std::thread::hardware_concurrency());
}

unsigned
resolveJobs(unsigned requested)
{
    return resolveJobs(requested, "TARCH_JOBS");
}

void
parallelFor(size_t count, unsigned jobs,
            const std::function<void(size_t)> &body)
{
    jobs = resolveJobs(jobs);
    if (count <= 1 || jobs <= 1) {
        for (size_t i = 0; i < count; ++i)
            body(i);
        return;
    }
    jobs = static_cast<unsigned>(std::min<size_t>(jobs, count));

    std::atomic<size_t> next{0};
    std::atomic<bool> abort{false};
    std::mutex mu; // guards the two error slots below
    size_t error_index = SIZE_MAX;
    std::exception_ptr error;

    const auto worker = [&]() {
        while (!abort.load(std::memory_order_relaxed)) {
            const size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= count)
                return;
            try {
                body(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(mu);
                if (i < error_index) {
                    error_index = i;
                    error = std::current_exception();
                }
                abort.store(true, std::memory_order_relaxed);
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (unsigned t = 0; t < jobs; ++t)
        pool.emplace_back(worker);
    for (std::thread &t : pool)
        t.join();
    if (error)
        std::rethrow_exception(error);
}

// ---------------------------------------------------------------------
// Pool

Pool::Pool(const Options &opts)
    : jobs_(resolveJobs(opts.jobs, opts.jobsEnvVar)),
      capacity_(opts.queueCapacity)
{
    workers_.reserve(jobs_);
    for (unsigned t = 0; t < jobs_; ++t)
        workers_.emplace_back([this] { workerLoop(); });
}

Pool::~Pool()
{
    close();
}

void
Pool::workerLoop()
{
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        taskReady_.wait(lock,
                        [this] { return closed_ || !queue_.empty(); });
        if (queue_.empty())
            return; // closed and drained
        std::function<void()> task = std::move(queue_.front());
        queue_.pop_front();
        ++running_;
        spaceReady_.notify_one();
        lock.unlock();
        try {
            task();
        } catch (const std::exception &e) {
            tarch_warn("pool task threw: %s", e.what());
        } catch (...) {
            tarch_warn("pool task threw a non-std exception");
        }
        lock.lock();
        --running_;
        if (queue_.empty() && running_ == 0)
            allIdle_.notify_all();
    }
}

bool
Pool::trySubmit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (closed_ || (capacity_ != 0 && queue_.size() >= capacity_))
            return false;
        queue_.push_back(std::move(task));
    }
    taskReady_.notify_one();
    return true;
}

bool
Pool::submit(std::function<void()> task)
{
    {
        std::unique_lock<std::mutex> lock(mu_);
        spaceReady_.wait(lock, [this] {
            return closed_ || capacity_ == 0 || queue_.size() < capacity_;
        });
        if (closed_)
            return false;
        queue_.push_back(std::move(task));
    }
    taskReady_.notify_one();
    return true;
}

void
Pool::drain()
{
    std::unique_lock<std::mutex> lock(mu_);
    allIdle_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
}

void
Pool::close()
{
    // Claim the worker threads under the lock so concurrent close()
    // calls (say, drain path vs. destructor) join each thread once.
    std::vector<std::thread> workers;
    {
        std::lock_guard<std::mutex> lock(mu_);
        closed_ = true;
        workers.swap(workers_);
    }
    taskReady_.notify_all();
    spaceReady_.notify_all();
    for (std::thread &t : workers)
        t.join();
}

size_t
Pool::pending() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
}

size_t
Pool::inFlight() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size() + running_;
}

} // namespace tarch
