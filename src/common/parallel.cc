#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/log.h"

namespace tarch {

unsigned
resolveJobs(unsigned requested)
{
    if (requested > 0)
        return requested;
    if (const char *env = std::getenv("TARCH_JOBS")) {
        char *end = nullptr;
        const unsigned long n = std::strtoul(env, &end, 10);
        if (end != env && *end == '\0' && n > 0 && n <= 4096)
            return static_cast<unsigned>(n);
        tarch_warn("ignoring malformed TARCH_JOBS='%s'", env);
    }
    return std::max(1u, std::thread::hardware_concurrency());
}

void
parallelFor(size_t count, unsigned jobs,
            const std::function<void(size_t)> &body)
{
    jobs = resolveJobs(jobs);
    if (count <= 1 || jobs <= 1) {
        for (size_t i = 0; i < count; ++i)
            body(i);
        return;
    }
    jobs = static_cast<unsigned>(std::min<size_t>(jobs, count));

    std::atomic<size_t> next{0};
    std::atomic<bool> abort{false};
    std::mutex mu; // guards the two error slots below
    size_t error_index = SIZE_MAX;
    std::exception_ptr error;

    const auto worker = [&]() {
        while (!abort.load(std::memory_order_relaxed)) {
            const size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= count)
                return;
            try {
                body(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(mu);
                if (i < error_index) {
                    error_index = i;
                    error = std::current_exception();
                }
                abort.store(true, std::memory_order_relaxed);
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (unsigned t = 0; t < jobs; ++t)
        pool.emplace_back(worker);
    for (std::thread &t : pool)
        t.join();
    if (error)
        std::rethrow_exception(error);
}

} // namespace tarch
