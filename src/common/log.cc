#include "common/log.h"

#include <cstdio>
#include <cstdlib>

namespace tarch {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    throw FatalError(strformat("fatal: %s (%s:%d)", msg.c_str(), file, line));
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace tarch
