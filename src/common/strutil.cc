#include "common/strutil.h"

#include <cctype>
#include <cstdio>

namespace tarch {

std::string
vstrformat(const char *fmt, va_list ap)
{
    va_list ap_copy;
    va_copy(ap_copy, ap);
    const int needed = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    std::string out(needed > 0 ? needed : 0, '\0');
    if (needed > 0)
        std::vsnprintf(out.data(), out.size() + 1, fmt, ap);
    return out;
}

std::string
strformat(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string out = vstrformat(fmt, ap);
    va_end(ap);
    return out;
}

std::vector<std::string>
split(std::string_view text, char sep)
{
    std::vector<std::string> fields;
    size_t start = 0;
    while (true) {
        const size_t pos = text.find(sep, start);
        if (pos == std::string_view::npos) {
            fields.emplace_back(text.substr(start));
            break;
        }
        fields.emplace_back(text.substr(start, pos - start));
        start = pos + 1;
    }
    return fields;
}

std::string_view
trim(std::string_view text)
{
    size_t begin = 0;
    size_t end = text.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(text[begin])))
        ++begin;
    while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1])))
        --end;
    return text.substr(begin, end - begin);
}

bool
startsWith(std::string_view text, std::string_view prefix)
{
    return text.size() >= prefix.size() &&
           text.substr(0, prefix.size()) == prefix;
}

std::string
toLower(std::string_view text)
{
    std::string out(text);
    for (char &c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

} // namespace tarch
