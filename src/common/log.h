/**
 * @file
 * gem5-style status reporting.  panic() is for simulator bugs (aborts);
 * fatal() is for user/configuration errors (throws FatalError so embedding
 * code and tests can catch it); warn()/inform() print and continue.
 */

#ifndef TARCH_COMMON_LOG_H
#define TARCH_COMMON_LOG_H

#include <stdexcept>
#include <string>

#include "common/strutil.h"

namespace tarch {

/** Thrown by fatal(): a condition that is the user's fault. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &what) : std::runtime_error(what) {}
};

/** Report an internal simulator bug and abort. */
[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);

/** Report an unrecoverable user error by throwing FatalError. */
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);

/** Print a warning to stderr. */
void warnImpl(const std::string &msg);

/** Print an informational message to stderr. */
void informImpl(const std::string &msg);

} // namespace tarch

#define tarch_panic(...) \
    ::tarch::panicImpl(__FILE__, __LINE__, ::tarch::strformat(__VA_ARGS__))
#define tarch_fatal(...) \
    ::tarch::fatalImpl(__FILE__, __LINE__, ::tarch::strformat(__VA_ARGS__))
#define tarch_warn(...) ::tarch::warnImpl(::tarch::strformat(__VA_ARGS__))
#define tarch_inform(...) ::tarch::informImpl(::tarch::strformat(__VA_ARGS__))

#endif // TARCH_COMMON_LOG_H
