/**
 * @file
 * String formatting and tokenizing helpers (printf-style strformat, split,
 * trim).  GCC 12 lacks std::format, so we provide a thin vsnprintf wrapper.
 */

#ifndef TARCH_COMMON_STRUTIL_H
#define TARCH_COMMON_STRUTIL_H

#include <cstdarg>
#include <string>
#include <string_view>
#include <vector>

namespace tarch {

/** printf-style formatting into a std::string. */
std::string strformat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** vprintf-style formatting into a std::string. */
std::string vstrformat(const char *fmt, va_list ap);

/** Split @p text on @p sep, keeping empty fields. */
std::vector<std::string> split(std::string_view text, char sep);

/** Strip leading and trailing ASCII whitespace. */
std::string_view trim(std::string_view text);

/** True if @p text begins with @p prefix. */
bool startsWith(std::string_view text, std::string_view prefix);

/** Lower-case an ASCII string. */
std::string toLower(std::string_view text);

} // namespace tarch

#endif // TARCH_COMMON_STRUTIL_H
