#include "branch/ras.h"

namespace tarch::branch {

Ras::Ras(const RasConfig &config)
    : stack_(config.entries == 0 ? 1 : config.entries)
{
}

void
Ras::push(uint64_t return_pc)
{
    stack_[top_] = return_pc;
    top_ = (top_ + 1) % stack_.size();
    if (depth_ < stack_.size())
        ++depth_;
}

std::optional<uint64_t>
Ras::pop()
{
    if (depth_ == 0)
        return std::nullopt;
    top_ = (top_ + stack_.size() - 1) % static_cast<unsigned>(stack_.size());
    --depth_;
    return stack_[top_];
}

} // namespace tarch::branch
