/**
 * @file
 * Fully-associative branch target buffer (Table 6: 62 entries) with true
 * LRU replacement.  Also serves indirect-jump targets (last-target
 * prediction), as in Rocket.
 */

#ifndef TARCH_BRANCH_BTB_H
#define TARCH_BRANCH_BTB_H

#include <cstdint>
#include <optional>
#include <vector>

namespace tarch::branch {

struct BtbConfig {
    unsigned entries = 62;
};

class Btb
{
  public:
    explicit Btb(const BtbConfig &config = {});

    /** Look up the predicted target of the control instruction at @p pc. */
    std::optional<uint64_t> lookup(uint64_t pc) const;

    /** Install or refresh the mapping pc -> target. */
    void update(uint64_t pc, uint64_t target);

  private:
    struct Entry {
        bool valid = false;
        uint64_t pc = 0;
        uint64_t target = 0;
        uint64_t lastUse = 0;
    };

    std::vector<Entry> entries_;
    mutable uint64_t useClock_ = 0;
};

} // namespace tarch::branch

#endif // TARCH_BRANCH_BTB_H
