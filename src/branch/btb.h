/**
 * @file
 * Fully-associative branch target buffer (Table 6: 62 entries) with true
 * LRU replacement.  Also serves indirect-jump targets (last-target
 * prediction), as in Rocket.
 *
 * The model is behaviourally a fully-associative LRU array, but the hot
 * paths (lookup, target refresh) go through a pc -> slot hash index so
 * they cost O(1) instead of a 62-entry scan; the scan survives only on
 * an install miss, where the original victim-selection loop runs
 * verbatim so replacement decisions are bit-identical to the plain
 * array model.
 */

#ifndef TARCH_BRANCH_BTB_H
#define TARCH_BRANCH_BTB_H

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

namespace tarch::branch {

struct BtbConfig {
    unsigned entries = 62;
};

class Btb
{
  public:
    explicit Btb(const BtbConfig &config = {});

    /** Look up the predicted target of the control instruction at @p pc. */
    std::optional<uint64_t>
    lookup(uint64_t pc) const
    {
        ++useClock_;
        const auto it = index_.find(pc);
        if (it == index_.end())
            return std::nullopt;
        Entry &entry = const_cast<Entry &>(entries_[it->second]);
        entry.lastUse = useClock_;
        return entry.target;
    }

    /** Install or refresh the mapping pc -> target. */
    void
    update(uint64_t pc, uint64_t target)
    {
        ++useClock_;
        const auto it = index_.find(pc);
        if (it != index_.end()) {
            Entry &entry = entries_[it->second];
            entry.target = target;
            entry.lastUse = useClock_;
            return;
        }
        install(pc, target);
    }

    struct Entry {
        bool valid = false;
        uint64_t pc = 0;
        uint64_t target = 0;
        uint64_t lastUse = 0;
    };

    /** Entry array + LRU clock for machine snapshots (the pc -> slot
        hash index is derived state, rebuilt on restore). */
    struct Snapshot {
        std::vector<Entry> entries;
        uint64_t useClock = 0;
    };

    void
    saveState(Snapshot &out) const
    {
        out.entries = entries_;
        out.useClock = useClock_;
    }

    /** False (BTB unchanged) on a size mismatch. */
    bool
    restoreState(const Snapshot &in)
    {
        if (in.entries.size() != entries_.size())
            return false;
        entries_ = in.entries;
        useClock_ = in.useClock;
        index_.clear();
        for (size_t i = 0; i < entries_.size(); ++i) {
            if (entries_[i].valid)
                index_[entries_[i].pc] = i;
        }
        return true;
    }

  private:
    void install(uint64_t pc, uint64_t target);

    std::vector<Entry> entries_;
    std::unordered_map<uint64_t, size_t> index_;  ///< pc -> valid slot
    mutable uint64_t useClock_ = 0;
};

} // namespace tarch::branch

#endif // TARCH_BRANCH_BTB_H
