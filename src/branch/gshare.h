/**
 * @file
 * gshare direction predictor (Table 6: 32 B predictor = 128 2-bit
 * counters indexed by PC xor global history).
 */

#ifndef TARCH_BRANCH_GSHARE_H
#define TARCH_BRANCH_GSHARE_H

#include <cstdint>
#include <vector>

namespace tarch::branch {

struct GshareConfig {
    unsigned entries = 128;      ///< number of 2-bit counters
    unsigned historyBits = 7;    ///< global history length
};

class Gshare
{
  public:
    explicit Gshare(const GshareConfig &config = {});

    /** Predict the direction of the branch at @p pc. */
    bool predict(uint64_t pc) const;

    /** Train with the resolved direction and update global history. */
    void update(uint64_t pc, bool taken);

    uint64_t history() const { return history_; }

  private:
    unsigned index(uint64_t pc) const;

    GshareConfig config_;
    std::vector<uint8_t> counters_;  ///< 2-bit saturating, init weakly taken
    uint64_t history_ = 0;
};

} // namespace tarch::branch

#endif // TARCH_BRANCH_GSHARE_H
