/**
 * @file
 * gshare direction predictor (Table 6: 32 B predictor = 128 2-bit
 * counters indexed by PC xor global history).
 */

#ifndef TARCH_BRANCH_GSHARE_H
#define TARCH_BRANCH_GSHARE_H

#include <cstdint>
#include <vector>

namespace tarch::branch {

struct GshareConfig {
    unsigned entries = 128;      ///< number of 2-bit counters
    unsigned historyBits = 7;    ///< global history length
};

class Gshare
{
  public:
    explicit Gshare(const GshareConfig &config = {});

    // predict/update are inline: both execution engines consult them
    // for every conditional branch.

    /** Predict the direction of the branch at @p pc. */
    bool predict(uint64_t pc) const { return counters_[index(pc)] >= 2; }

    /** Train with the resolved direction and update global history. */
    void
    update(uint64_t pc, bool taken)
    {
        uint8_t &ctr = counters_[index(pc)];
        if (taken && ctr < 3)
            ++ctr;
        else if (!taken && ctr > 0)
            --ctr;
        const uint64_t mask = (1ULL << config_.historyBits) - 1;
        history_ = ((history_ << 1) | (taken ? 1 : 0)) & mask;
    }

    uint64_t history() const { return history_; }

    /** Counter array + global history for machine snapshots. */
    struct Snapshot {
        std::vector<uint8_t> counters;
        uint64_t history = 0;
    };

    void
    saveState(Snapshot &out) const
    {
        out.counters = counters_;
        out.history = history_;
    }

    /** False (predictor unchanged) on a table-size mismatch. */
    bool
    restoreState(const Snapshot &in)
    {
        if (in.counters.size() != counters_.size())
            return false;
        counters_ = in.counters;
        history_ = in.history;
        return true;
    }

  private:
    unsigned
    index(uint64_t pc) const
    {
        const uint64_t hashed = (pc >> 2) ^ history_;
        return static_cast<unsigned>(hashed & (config_.entries - 1));
    }

    GshareConfig config_;
    std::vector<uint8_t> counters_;  ///< 2-bit saturating, init weakly taken
    uint64_t history_ = 0;
};

} // namespace tarch::branch

#endif // TARCH_BRANCH_GSHARE_H
