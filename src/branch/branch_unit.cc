#include "branch/branch_unit.h"

namespace tarch::branch {

BranchUnit::BranchUnit(const BranchUnitConfig &config)
    : gshare_(config.gshare), btb_(config.btb), ras_(config.ras)
{
}

bool
BranchUnit::condBranch(uint64_t pc, bool taken, uint64_t target)
{
    ++stats_.condBranches;
    const bool pred_dir = gshare_.predict(pc);
    const auto pred_target = btb_.lookup(pc);
    // A taken prediction can only redirect fetch if the BTB knows the
    // target; direction predictions without a target fall through.
    const bool pred_taken = pred_dir && pred_target.has_value();
    bool mispredict;
    if (taken)
        mispredict = !pred_taken || *pred_target != target;
    else
        mispredict = pred_taken;
    gshare_.update(pc, taken);
    if (taken)
        btb_.update(pc, target);
    if (mispredict)
        ++stats_.condMispredicts;
    return mispredict;
}

bool
BranchUnit::directJump(uint64_t pc, uint64_t target, bool is_call,
                       uint64_t return_pc)
{
    ++stats_.jumps;
    const auto pred_target = btb_.lookup(pc);
    const bool mispredict = !pred_target || *pred_target != target;
    btb_.update(pc, target);
    if (is_call)
        ras_.push(return_pc);
    if (mispredict)
        ++stats_.jumpMispredicts;
    return mispredict;
}

bool
BranchUnit::indirectJump(uint64_t pc, uint64_t target, bool is_call,
                         bool is_ret, uint64_t return_pc)
{
    ++stats_.jumps;
    bool mispredict;
    if (is_ret) {
        const auto pred = ras_.pop();
        mispredict = !pred || *pred != target;
    } else {
        const auto pred = btb_.lookup(pc);
        mispredict = !pred || *pred != target;
        btb_.update(pc, target);
    }
    if (is_call)
        ras_.push(return_pc);
    if (mispredict)
        ++stats_.jumpMispredicts;
    return mispredict;
}

} // namespace tarch::branch
