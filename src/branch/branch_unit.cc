#include "branch/branch_unit.h"

namespace tarch::branch {

BranchUnit::BranchUnit(const BranchUnitConfig &config)
    : gshare_(config.gshare), btb_(config.btb), ras_(config.ras)
{
}

} // namespace tarch::branch
