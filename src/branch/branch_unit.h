/**
 * @file
 * Front-end control-flow predictor: gshare direction + BTB targets + RAS
 * for returns, with Rocket-style policies.  The timing model reports each
 * resolved control transfer and receives a mispredict verdict.
 */

#ifndef TARCH_BRANCH_BRANCH_UNIT_H
#define TARCH_BRANCH_BRANCH_UNIT_H

#include <cstdint>

#include "branch/btb.h"
#include "branch/gshare.h"
#include "branch/ras.h"

namespace tarch::branch {

struct BranchUnitConfig {
    GshareConfig gshare;
    BtbConfig btb;
    RasConfig ras;
};

struct BranchUnitStats {
    uint64_t condBranches = 0;
    uint64_t condMispredicts = 0;
    uint64_t jumps = 0;          ///< direct + indirect + returns
    uint64_t jumpMispredicts = 0;

    uint64_t total() const { return condBranches + jumps; }
    uint64_t mispredicts() const
    {
        return condMispredicts + jumpMispredicts;
    }
};

class BranchUnit
{
  public:
    explicit BranchUnit(const BranchUnitConfig &config = {});

    // The resolvers are inline: both execution engines call one of
    // them for every control transfer the guest executes.

    /**
     * Resolve a conditional branch at @p pc.
     * @return true if the front end mispredicted (direction or target).
     */
    bool
    condBranch(uint64_t pc, bool taken, uint64_t target)
    {
        ++stats_.condBranches;
        const bool pred_dir = gshare_.predict(pc);
        const auto pred_target = btb_.lookup(pc);
        // A taken prediction can only redirect fetch if the BTB knows
        // the target; direction predictions without a target fall
        // through.
        const bool pred_taken = pred_dir && pred_target.has_value();
        bool mispredict;
        if (taken)
            mispredict = !pred_taken || *pred_target != target;
        else
            mispredict = pred_taken;
        gshare_.update(pc, taken);
        if (taken)
            btb_.update(pc, target);
        if (mispredict)
            ++stats_.condMispredicts;
        return mispredict;
    }

    /** Resolve a direct jump (jal). @p is_call pushes the RAS. */
    bool
    directJump(uint64_t pc, uint64_t target, bool is_call,
               uint64_t return_pc)
    {
        ++stats_.jumps;
        const auto pred_target = btb_.lookup(pc);
        const bool mispredict = !pred_target || *pred_target != target;
        btb_.update(pc, target);
        if (is_call)
            ras_.push(return_pc);
        if (mispredict)
            ++stats_.jumpMispredicts;
        return mispredict;
    }

    /** Resolve an indirect jump (jalr). */
    bool
    indirectJump(uint64_t pc, uint64_t target, bool is_call, bool is_ret,
                 uint64_t return_pc)
    {
        ++stats_.jumps;
        bool mispredict;
        if (is_ret) {
            const auto pred = ras_.pop();
            mispredict = !pred || *pred != target;
        } else {
            const auto pred = btb_.lookup(pc);
            mispredict = !pred || *pred != target;
            btb_.update(pc, target);
        }
        if (is_call)
            ras_.push(return_pc);
        if (mispredict)
            ++stats_.jumpMispredicts;
        return mispredict;
    }

    const BranchUnitStats &stats() const { return stats_; }
    void resetStats() { stats_ = {}; }

    /** Complete front-end predictor state for machine snapshots. */
    struct Snapshot {
        BranchUnitStats stats;
        Gshare::Snapshot gshare;
        Btb::Snapshot btb;
        Ras::Snapshot ras;
    };

    void
    saveState(Snapshot &out) const
    {
        out.stats = stats_;
        gshare_.saveState(out.gshare);
        btb_.saveState(out.btb);
        ras_.saveState(out.ras);
    }

    /** False on any sub-predictor shape mismatch; partially-applied
        sub-predictor state is possible on failure, so callers treat a
        false return as machine-fatal, not recoverable. */
    bool
    restoreState(const Snapshot &in)
    {
        if (!gshare_.restoreState(in.gshare) ||
            !btb_.restoreState(in.btb) || !ras_.restoreState(in.ras))
            return false;
        stats_ = in.stats;
        return true;
    }

  private:
    Gshare gshare_;
    Btb btb_;
    Ras ras_;
    BranchUnitStats stats_;
};

} // namespace tarch::branch

#endif // TARCH_BRANCH_BRANCH_UNIT_H
