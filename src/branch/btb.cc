#include "branch/btb.h"

namespace tarch::branch {

Btb::Btb(const BtbConfig &config)
    : entries_(config.entries)
{
}

std::optional<uint64_t>
Btb::lookup(uint64_t pc) const
{
    ++useClock_;
    for (const Entry &entry : entries_) {
        if (entry.valid && entry.pc == pc) {
            const_cast<Entry &>(entry).lastUse = useClock_;
            return entry.target;
        }
    }
    return std::nullopt;
}

void
Btb::update(uint64_t pc, uint64_t target)
{
    ++useClock_;
    Entry *victim = nullptr;
    for (Entry &entry : entries_) {
        if (entry.valid && entry.pc == pc) {
            entry.target = target;
            entry.lastUse = useClock_;
            return;
        }
        if (!victim || !entry.valid ||
            (victim->valid && entry.lastUse < victim->lastUse))
            victim = &entry;
    }
    victim->valid = true;
    victim->pc = pc;
    victim->target = target;
    victim->lastUse = useClock_;
}

} // namespace tarch::branch
