#include "branch/btb.h"

namespace tarch::branch {

Btb::Btb(const BtbConfig &config)
    : entries_(config.entries)
{
    index_.reserve(config.entries * 2);
}

void
Btb::install(uint64_t pc, uint64_t target)
{
    // Original fully-associative victim scan, unchanged: the last
    // invalid entry wins while the array fills, then the least recently
    // used one (lastUse values are unique, so there are no ties).
    Entry *victim = nullptr;
    for (Entry &entry : entries_) {
        if (!victim || !entry.valid ||
            (victim->valid && entry.lastUse < victim->lastUse))
            victim = &entry;
    }
    if (victim->valid)
        index_.erase(victim->pc);
    victim->valid = true;
    victim->pc = pc;
    victim->target = target;
    victim->lastUse = useClock_;
    index_.emplace(pc, static_cast<size_t>(victim - entries_.data()));
}

} // namespace tarch::branch
