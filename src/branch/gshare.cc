#include "branch/gshare.h"

#include "common/bitops.h"
#include "common/log.h"

namespace tarch::branch {

Gshare::Gshare(const GshareConfig &config)
    : config_(config), counters_(config.entries, 1)
{
    if (!isPow2(config.entries))
        tarch_fatal("gshare entries must be a power of two");
}

} // namespace tarch::branch
