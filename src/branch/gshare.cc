#include "branch/gshare.h"

#include "common/bitops.h"
#include "common/log.h"

namespace tarch::branch {

Gshare::Gshare(const GshareConfig &config)
    : config_(config), counters_(config.entries, 1)
{
    if (!isPow2(config.entries))
        tarch_fatal("gshare entries must be a power of two");
}

unsigned
Gshare::index(uint64_t pc) const
{
    const uint64_t hashed = (pc >> 2) ^ history_;
    return static_cast<unsigned>(hashed & (config_.entries - 1));
}

bool
Gshare::predict(uint64_t pc) const
{
    return counters_[index(pc)] >= 2;
}

void
Gshare::update(uint64_t pc, bool taken)
{
    uint8_t &ctr = counters_[index(pc)];
    if (taken && ctr < 3)
        ++ctr;
    else if (!taken && ctr > 0)
        --ctr;
    const uint64_t mask = (1ULL << config_.historyBits) - 1;
    history_ = ((history_ << 1) | (taken ? 1 : 0)) & mask;
}

} // namespace tarch::branch
