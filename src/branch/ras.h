/**
 * @file
 * Return address stack (Table 6: 2 entries), circular overwrite on
 * overflow as in Rocket.
 */

#ifndef TARCH_BRANCH_RAS_H
#define TARCH_BRANCH_RAS_H

#include <cstdint>
#include <optional>
#include <vector>

namespace tarch::branch {

struct RasConfig {
    unsigned entries = 2;
};

class Ras
{
  public:
    explicit Ras(const RasConfig &config = {});

    void push(uint64_t return_pc);
    /** Pop the predicted return target (nullopt when empty). */
    std::optional<uint64_t> pop();

  private:
    std::vector<uint64_t> stack_;
    unsigned top_ = 0;    ///< index of next push slot
    unsigned depth_ = 0;  ///< valid entries (saturates at capacity)
};

} // namespace tarch::branch

#endif // TARCH_BRANCH_RAS_H
