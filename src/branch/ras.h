/**
 * @file
 * Return address stack (Table 6: 2 entries), circular overwrite on
 * overflow as in Rocket.
 */

#ifndef TARCH_BRANCH_RAS_H
#define TARCH_BRANCH_RAS_H

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

namespace tarch::branch {

struct RasConfig {
    unsigned entries = 2;
};

class Ras
{
  public:
    explicit Ras(const RasConfig &config = {});

    void push(uint64_t return_pc);
    /** Pop the predicted return target (nullopt when empty). */
    std::optional<uint64_t> pop();

    /** Circular-stack contents for machine snapshots. */
    struct Snapshot {
        std::vector<uint64_t> stack;
        unsigned top = 0;
        unsigned depth = 0;
    };

    void
    saveState(Snapshot &out) const
    {
        out.stack = stack_;
        out.top = top_;
        out.depth = depth_;
    }

    /** False (RAS unchanged) on a size or cursor mismatch. */
    bool
    restoreState(const Snapshot &in)
    {
        if (in.stack.size() != stack_.size() ||
            in.top >= std::max<size_t>(stack_.size(), 1) ||
            in.depth > stack_.size())
            return false;
        stack_ = in.stack;
        top_ = in.top;
        depth_ = in.depth;
        return true;
    }

  private:
    std::vector<uint64_t> stack_;
    unsigned top_ = 0;    ///< index of next push slot
    unsigned depth_ = 0;  ///< valid entries (saturates at capacity)
};

} // namespace tarch::branch

#endif // TARCH_BRANCH_RAS_H
