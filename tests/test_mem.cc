// Unit tests for the memory hierarchy: sparse memory, DRAM row-buffer
// timing, set-associative cache with LRU, and the tiny TLB.

#include <gtest/gtest.h>

#include "common/log.h"
#include "mem/cache.h"
#include "mem/dram.h"
#include "mem/main_memory.h"
#include "mem/tlb.h"

namespace tarch::mem {
namespace {

TEST(MainMemory, ZeroInitialized)
{
    MainMemory m;
    EXPECT_EQ(m.read64(0x1000), 0u);
    EXPECT_EQ(m.read8(0xFFFFFFFF), 0u);
    EXPECT_EQ(m.allocatedPages(), 0u);
}

TEST(MainMemory, ScalarRoundTrips)
{
    MainMemory m;
    m.write8(0x10, 0xAB);
    EXPECT_EQ(m.read8(0x10), 0xAB);
    m.write16(0x20, 0x1234);
    EXPECT_EQ(m.read16(0x20), 0x1234);
    m.write32(0x30, 0xDEADBEEF);
    EXPECT_EQ(m.read32(0x30), 0xDEADBEEFu);
    m.write64(0x40, 0x0102030405060708ULL);
    EXPECT_EQ(m.read64(0x40), 0x0102030405060708ULL);
    // Little-endian byte order.
    EXPECT_EQ(m.read8(0x40), 0x08);
    EXPECT_EQ(m.read8(0x47), 0x01);
}

TEST(MainMemory, CrossPageBlockAccess)
{
    MainMemory m;
    std::vector<uint8_t> buf(8192);
    for (size_t i = 0; i < buf.size(); ++i)
        buf[i] = static_cast<uint8_t>(i * 7);
    m.writeBlock(4000, buf.data(), buf.size());
    std::vector<uint8_t> back(buf.size());
    m.readBlock(4000, back.data(), back.size());
    EXPECT_EQ(buf, back);
    EXPECT_GE(m.allocatedPages(), 3u);
}

TEST(MainMemory, CrossPageScalar)
{
    MainMemory m;
    m.write64(4093, 0x1122334455667788ULL);  // straddles a page boundary
    EXPECT_EQ(m.read64(4093), 0x1122334455667788ULL);
}

TEST(Dram, RowHitsAreCheaper)
{
    Dram dram;
    const unsigned first = dram.access(0);      // cold bank activate
    const unsigned second = dram.access(512);   // same bank, same row: hit
    EXPECT_GT(first, second);
    EXPECT_EQ(dram.stats().accesses, 2u);
    EXPECT_EQ(dram.stats().rowHits, 1u);
}

TEST(Dram, BankConflictReopensRow)
{
    DramConfig cfg;
    Dram dram(cfg);
    const uint64_t row_span =
        static_cast<uint64_t>(cfg.rowBytes) * cfg.numBanks;
    dram.access(0);
    dram.access(row_span);  // same bank, different row
    EXPECT_EQ(dram.stats().rowConflicts, 1u);
}

TEST(Dram, LatencyIncludesControllerOverhead)
{
    DramConfig cfg;
    Dram dram(cfg);
    EXPECT_GE(dram.access(0), cfg.controllerCoreCycles + 1);
}

TEST(Cache, HitAfterFill)
{
    Dram dram;
    Cache c({"t", 1024, 2, 64, 1}, dram);
    EXPECT_GT(c.access(0, false), 1u);       // cold miss
    EXPECT_EQ(c.access(0, false), 1u);       // hit
    EXPECT_EQ(c.access(63, false), 1u);      // same block
    EXPECT_EQ(c.stats().accesses, 3u);
    EXPECT_EQ(c.stats().misses, 1u);
    EXPECT_TRUE(c.probe(32));
    EXPECT_FALSE(c.probe(64));
}

TEST(Cache, LruEviction)
{
    Dram dram;
    // 2 ways, 64B blocks, 2 sets (256B total).
    Cache c({"t", 256, 2, 64, 1}, dram);
    // Three blocks mapping to set 0: 0, 128, 256.
    c.access(0, false);
    c.access(128, false);
    c.access(0, false);     // touch 0 so 128 is LRU
    c.access(256, false);   // evicts 128
    EXPECT_TRUE(c.probe(0));
    EXPECT_FALSE(c.probe(128));
    EXPECT_TRUE(c.probe(256));
}

TEST(Cache, DirtyEvictionWritesBack)
{
    Dram dram;
    Cache c({"t", 128, 1, 64, 1}, dram);  // direct-mapped, 2 sets
    c.access(0, true);          // dirty
    c.access(128, false);       // evicts dirty block 0
    EXPECT_EQ(c.stats().writebacks, 1u);
    c.access(256, false);       // evicts clean block 128
    EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, Table6GeometryIsDefaultValid)
{
    Dram dram;
    Cache c({"L1D", 16 * 1024, 4, 64, 1}, dram);
    // 16KB / (64B * 4) = 64 sets; accessing 64 distinct sets never
    // collides.
    for (unsigned i = 0; i < 64; ++i)
        c.access(i * 64, false);
    EXPECT_EQ(c.stats().misses, 64u);
    for (unsigned i = 0; i < 64; ++i)
        c.access(i * 64, false);
    EXPECT_EQ(c.stats().misses, 64u);  // all hits now
}

TEST(Cache, RejectsBadGeometry)
{
    Dram dram;
    EXPECT_THROW(Cache({"t", 1000, 3, 64, 1}, dram), tarch::FatalError);
}

TEST(Tlb, HitsAfterFill)
{
    Tlb tlb({8, 4096, 18});
    EXPECT_EQ(tlb.access(0x1000), 18u);
    EXPECT_EQ(tlb.access(0x1FFF), 0u);  // same page
    EXPECT_EQ(tlb.stats().misses, 1u);
}

TEST(Tlb, LruReplacement)
{
    Tlb tlb({2, 4096, 18});
    tlb.access(0x0000);
    tlb.access(0x1000);
    tlb.access(0x0000);      // page 0 recently used
    tlb.access(0x2000);      // evicts page 1
    EXPECT_EQ(tlb.access(0x0000), 0u);
    EXPECT_EQ(tlb.access(0x1000), 18u);  // missed again
}

} // namespace
} // namespace tarch::mem
