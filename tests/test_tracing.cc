// The tarch-rpc v2 traced revision and the serving observability plane
// (docs/OBSERVABILITY.md): strict trace-context encode/decode (every
// truncation and reserved-byte violation rejected), Hello version
// negotiation, new<->old interop that degrades to untraced v1 frames
// (never framing errors), span recording across client, server, and
// router processes for one sampled request, the slow-request log, and
// the Metrics scrape endpoint.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/strutil.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/spans.h"
#include "serve/client.h"
#include "serve/hedged_client.h"
#include "serve/protocol.h"
#include "serve/router.h"
#include "serve/server.h"
#include "serve/slowlog.h"

namespace fs = std::filesystem;

namespace tarch::serve {
namespace {

// ---------------------------------------------------------------------
// Protocol: the 16-byte trace context.

proto::TraceContext
sampleContext()
{
    proto::TraceContext ctx;
    ctx.traceId = 0x0123456789abcdefULL;
    ctx.parentSpanId = 0xcafe0001u;
    ctx.sampled = 1;
    return ctx;
}

TEST(Tracing, ContextRoundTrip)
{
    const proto::TraceContext ctx = sampleContext();
    const std::string wire = proto::encodeTraceContext(ctx);
    ASSERT_EQ(wire.size(), proto::kTraceContextSize);

    proto::TraceContext out;
    size_t body_offset = 0;
    ASSERT_TRUE(proto::decodeTraceContext(wire + "body", out,
                                          body_offset));
    EXPECT_EQ(body_offset, proto::kTraceContextSize);
    EXPECT_EQ(out.traceId, ctx.traceId);
    EXPECT_EQ(out.parentSpanId, ctx.parentSpanId);
    EXPECT_EQ(out.sampled, 1);
    EXPECT_TRUE(out.recording());
}

TEST(Tracing, ContextRejectsEveryTruncation)
{
    const std::string wire = proto::encodeTraceContext(sampleContext());
    for (size_t len = 0; len < proto::kTraceContextSize; ++len) {
        proto::TraceContext out;
        size_t body_offset = 0;
        EXPECT_FALSE(proto::decodeTraceContext(wire.substr(0, len), out,
                                               body_offset))
            << "accepted a " << len << "-byte context";
    }
}

TEST(Tracing, ContextRejectsReservedBytesAndBadSampledFlag)
{
    const std::string wire = proto::encodeTraceContext(sampleContext());
    // The three reserved bytes after the sampled flag must be zero.
    for (size_t i = 13; i < 16; ++i) {
        std::string bad = wire;
        bad[i] = 1;
        proto::TraceContext out;
        size_t body_offset = 0;
        EXPECT_FALSE(proto::decodeTraceContext(bad, out, body_offset))
            << "accepted nonzero reserved byte " << i;
    }
    std::string bad = wire;
    bad[12] = 2;  // sampled must be 0 or 1
    proto::TraceContext out;
    size_t body_offset = 0;
    EXPECT_FALSE(proto::decodeTraceContext(bad, out, body_offset));
}

TEST(Tracing, RecordingNeedsSampledAndNonzeroTraceId)
{
    proto::TraceContext ctx;
    EXPECT_FALSE(ctx.recording());
    ctx.traceId = 7;
    EXPECT_FALSE(ctx.recording());
    ctx.sampled = 1;
    EXPECT_TRUE(ctx.recording());
    ctx.traceId = 0;
    EXPECT_FALSE(ctx.recording());
}

TEST(Tracing, TracedFrameRoundTrip)
{
    const proto::TraceContext ctx = sampleContext();
    const std::string body = "v1-body-bytes";
    const std::string frame = proto::encodeTracedFrame(
        proto::MsgKind::RunCell, 99, ctx, body);

    proto::FrameHeader fh;
    ASSERT_EQ(proto::parseHeader(
                  reinterpret_cast<const uint8_t *>(frame.data()), fh,
                  proto::kMaxPayload),
              proto::HeaderStatus::Ok);
    EXPECT_EQ(fh.version, proto::kVersionTraced);
    EXPECT_EQ(fh.requestId, 99u);
    ASSERT_EQ(fh.payloadLen, proto::kTraceContextSize + body.size());

    proto::TraceContext out;
    size_t body_offset = 0;
    const std::string payload = frame.substr(proto::kHeaderSize);
    ASSERT_TRUE(proto::decodeTraceContext(payload, out, body_offset));
    EXPECT_EQ(out.traceId, ctx.traceId);
    EXPECT_EQ(payload.substr(body_offset), body);
}

// ---------------------------------------------------------------------
// SpanRecorder.

TEST(Tracing, SpanScopeInertWithoutRecorderOrTraceId)
{
    obs::SpanRecorder rec("test");
    {
        obs::SpanScope none(nullptr, 42, 0, "x");
        EXPECT_FALSE(none.active());
        EXPECT_EQ(none.id(), 0u);
        obs::SpanScope untraced(&rec, 0, 0, "x");
        EXPECT_FALSE(untraced.active());
        EXPECT_EQ(untraced.id(), 0u);
    }
    EXPECT_EQ(rec.size(), 0u);
}

TEST(Tracing, SpanRecorderRendersWellFormedChromeTrace)
{
    obs::SpanRecorder rec("test_proc");
    {
        obs::SpanScope root(&rec, 0xfeedULL, 0, "client.request");
        root.setDetail("say \"hi\"\\");  // must survive JSON escaping
        obs::SpanScope child(&rec, 0xfeedULL, root.id(), "server.run");
    }
    ASSERT_EQ(rec.size(), 2u);

    const std::string json = rec.renderChromeTrace();
    std::string error;
    EXPECT_TRUE(obs::jsonWellFormed(json, &error)) << error;
    EXPECT_NE(json.find("\"process_name\""), std::string::npos);
    EXPECT_NE(json.find("test_proc"), std::string::npos);
    EXPECT_NE(json.find("000000000000feed"), std::string::npos);
    EXPECT_NE(json.find("client.request"), std::string::npos);

    // Child nests under root via the span/parent ids (scopes record
    // on destruction, so the child lands first).
    const auto spans = rec.snapshot();
    EXPECT_EQ(spans[0].parentSpanId, spans[1].spanId);
    EXPECT_NE(spans[1].spanId, 0u);
}

TEST(Tracing, SpanRecorderBoundsMemoryAndCountsDrops)
{
    obs::SpanRecorder rec("test");
    constexpr size_t kTotal = 70'000;
    for (size_t i = 0; i < kTotal; ++i) {
        obs::SpanRecord span;
        span.traceId = 1;
        span.spanId = (uint32_t)i + 1;
        span.name = "x";
        rec.record(std::move(span));
    }
    EXPECT_LT(rec.size(), kTotal);
    EXPECT_EQ(rec.dropped(), kTotal - rec.size());
}

// ---------------------------------------------------------------------
// Server end-to-end over a real socket.

struct TempDir {
    fs::path path;
    TempDir()
    {
        static std::atomic<int> counter{0};
        path = fs::temp_directory_path() /
               strformat("tarch_tracing_test_%ld_%d", (long)::getpid(),
                         counter++);
        fs::remove_all(path);
        fs::create_directories(path);
    }
    ~TempDir() { fs::remove_all(path); }
    std::string str() const { return path.string(); }
};

proto::SourceRequest
quickSource(unsigned seed)
{
    proto::SourceRequest req;
    req.variant = 1;
    req.source = strformat(
        "local s = 0\nfor i = 1, %u do s = s + i end\nprint(s)\n",
        100 + seed);
    return req;
}

class TracingTest : public ::testing::Test
{
  protected:
    TempDir dir;
    std::unique_ptr<Server> server;

    std::string sock() const { return dir.str() + "/s.sock"; }

    void
    startServer(bool advertise_tracing = true, uint64_t slow_sample = 0)
    {
        Server::Config cfg;
        cfg.unixPath = sock();
        cfg.jobs = 2;
        cfg.sim.cacheDir = dir.str();
        cfg.sim.diskCache = false;
        cfg.advertiseTracing = advertise_tracing;
        cfg.slowLog.sampleEvery = slow_sample;
        server = std::make_unique<Server>(cfg);
        server->start();
    }

    void
    TearDown() override
    {
        if (server)
            server->stop();
    }

    Client connect() { return Client::connectUnix(sock()); }
};

TEST_F(TracingTest, HelloNegotiatesMaxVersion)
{
    startServer();
    Client client = connect();
    EXPECT_EQ(client.hello(), proto::kMaxVersion);
    EXPECT_EQ(client.peerMaxVersion(), proto::kMaxVersion);
}

TEST_F(TracingTest, HelloAgainstUntracedServerReportsV1)
{
    startServer(/*advertise_tracing=*/false);
    Client client = connect();
    EXPECT_EQ(client.hello(), proto::kVersion);
    EXPECT_EQ(client.peerMaxVersion(), proto::kVersion);
}

TEST_F(TracingTest, TracedRequestRecordsSpansOnBothSides)
{
    startServer();
    obs::SpanRecorder client_rec("tarch_bench_client");

    Client client = connect();
    client.enableTracing(&client_rec, 1);
    const auto outcome = client.runSource(quickSource(1));
    ASSERT_TRUE(outcome.ok) << outcome.error.message;

    // Client side: one root client.request span.
    const auto client_spans = client_rec.snapshot();
    ASSERT_EQ(client_spans.size(), 1u);
    EXPECT_EQ(client_spans[0].name, "client.request");
    const uint64_t trace_id = client_spans[0].traceId;
    ASSERT_NE(trace_id, 0u);

    // Server side: stage spans of the SAME trace.
    const auto server_spans = server->spanRecorder().snapshot();
    ASSERT_FALSE(server_spans.empty());
    std::set<std::string> names;
    for (const auto &span : server_spans) {
        EXPECT_EQ(span.traceId, trace_id);
        names.insert(span.name);
    }
    EXPECT_TRUE(names.count("server.run"));
    EXPECT_TRUE(names.count("sim.verify"));
    EXPECT_TRUE(names.count("sim.simulate"));

    // Wall-clock timebase is shared: every server stage fits inside
    // the client round-trip span (1 ms slack for clock reads).
    const uint64_t c0 = client_spans[0].startUs;
    const uint64_t c1 = c0 + client_spans[0].durUs;
    for (const auto &span : server_spans) {
        EXPECT_GE(span.startUs + 1'000, c0) << span.name;
        EXPECT_LE(span.startUs + span.durUs, c1 + 1'000) << span.name;
        EXPECT_LE(span.durUs, client_spans[0].durUs + 1'000)
            << span.name;
    }
}

TEST_F(TracingTest, SamplingTracesEveryNthRequest)
{
    startServer();
    obs::SpanRecorder rec("client");
    Client client = connect();
    client.enableTracing(&rec, 3);
    for (int i = 0; i < 6; ++i)
        ASSERT_TRUE(client.runSource(quickSource(2)).ok);
    // Requests 3 and 6 were sampled.
    EXPECT_EQ(rec.size(), 2u);
}

TEST_F(TracingTest, NewClientDegradesUntracedAgainstV1Server)
{
    startServer(/*advertise_tracing=*/false);
    obs::SpanRecorder rec("client");
    Client client = connect();
    client.enableTracing(&rec, 1);

    const auto outcome = client.runSource(quickSource(3));
    ASSERT_TRUE(outcome.ok) << outcome.error.message;

    // Degraded cleanly: no spans minted on either side, and above all
    // no framing errors — the wire stayed pure v1.
    EXPECT_EQ(rec.size(), 0u);
    EXPECT_EQ(server->spanRecorder().size(), 0u);
    const auto h = server->health();
    EXPECT_EQ(h.framingErrors, 0u);
    EXPECT_EQ(h.errors, 0u);
}

TEST_F(TracingTest, OldClientWorksAgainstTracedServer)
{
    startServer();
    Client client = connect();  // tracing never enabled: pure v1
    const auto outcome = client.runSource(quickSource(4));
    ASSERT_TRUE(outcome.ok) << outcome.error.message;
    EXPECT_EQ(server->spanRecorder().size(), 0u);
    EXPECT_EQ(server->health().framingErrors, 0u);
}

TEST_F(TracingTest, MalformedContextIsTypedErrorNotFramingError)
{
    startServer();
    Client client = connect();
    const std::string wire =
        proto::encodeTraceContext(sampleContext());

    // A v2 request whose payload is shorter than the 16-byte context:
    // every truncation must draw a typed BadFrame on a SURVIVING
    // connection, never a framing error or a poisoned stream.
    uint64_t id = 100;
    for (const size_t len : {size_t{0}, size_t{5}, size_t{15}}) {
        std::string frame = proto::encodeFrame(
            proto::MsgKind::RunCell, ++id, wire.substr(0, len));
        frame[4] = 2;  // patch header version to kVersionTraced
        ASSERT_TRUE(client.sendRaw(frame.data(), frame.size()));
        Client::Reply reply;
        ASSERT_TRUE(client.readReply(reply)) << "len " << len;
        ASSERT_EQ(reply.kind, (uint16_t)proto::MsgKind::Error);
        proto::ErrorBody error;
        ASSERT_TRUE(proto::decodeErrorBody(reply.payload, error));
        EXPECT_EQ(error.code, (uint16_t)proto::ErrorCode::BadFrame);
    }
    // Nonzero reserved byte, full-length context.
    std::string bad = wire;
    bad[14] = 7;
    std::string frame =
        proto::encodeFrame(proto::MsgKind::RunCell, ++id, bad + "body");
    frame[4] = 2;
    ASSERT_TRUE(client.sendRaw(frame.data(), frame.size()));
    Client::Reply reply;
    ASSERT_TRUE(client.readReply(reply));
    ASSERT_EQ(reply.kind, (uint16_t)proto::MsgKind::Error);

    EXPECT_TRUE(client.ping());  // connection survived all of it
    EXPECT_EQ(server->health().framingErrors, 0u);
}

TEST_F(TracingTest, MetricsScrapeLintsCleanAndStaysMonotonic)
{
    startServer();
    Client client = connect();
    ASSERT_TRUE(client.runSource(quickSource(5)).ok);

    const std::string first = client.metricsText();
    ASSERT_FALSE(first.empty());
    std::string error;
    EXPECT_TRUE(obs::Registry::lintPrometheus(first, &error)) << error;
    EXPECT_NE(first.find("tarch_serve_requests_total"),
              std::string::npos);
    EXPECT_NE(first.find("tarch_serve_replies_total{code=\"ok\"}"),
              std::string::npos);
    EXPECT_NE(first.find("tarch_serve_stage_latency_us"),
              std::string::npos);

    ASSERT_TRUE(client.runSource(quickSource(6)).ok);
    const std::string second = client.metricsText();
    EXPECT_TRUE(obs::Registry::countersMonotonic(first, second, &error))
        << error;
}

// ---------------------------------------------------------------------
// Slow-request log.

TEST(SlowLogTest, ThresholdAndSamplerTriggers)
{
    SlowLog::Options opts;
    opts.thresholdUs = 1'000;
    opts.sampleEvery = 0;
    SlowLog log(opts);
    EXPECT_FALSE(log.shouldLog(999));
    EXPECT_TRUE(log.shouldLog(1'000));
    EXPECT_TRUE(log.shouldLog(50'000));

    SlowLog::Options sampler;
    sampler.thresholdUs = 0;
    sampler.sampleEvery = 3;
    SlowLog sampled(sampler);
    unsigned hits = 0;
    for (int i = 0; i < 9; ++i)
        if (sampled.shouldLog(1))
            hits++;
    EXPECT_EQ(hits, 3u);

    SlowLog off(SlowLog::Options{0, 0, 4});
    EXPECT_FALSE(off.shouldLog(~0ull));
}

TEST(SlowLogTest, RingKeepsNewestEntriesOldestFirst)
{
    SlowLog::Options opts;
    opts.capacity = 4;
    SlowLog log(opts);
    for (uint64_t i = 1; i <= 7; ++i) {
        SlowLogEntry e;
        e.totalUs = i;
        log.record(e);
    }
    EXPECT_EQ(log.recorded(), 7u);
    const auto kept = log.snapshot();
    ASSERT_EQ(kept.size(), 4u);
    EXPECT_EQ(kept.front().totalUs, 4u);
    EXPECT_EQ(kept.back().totalUs, 7u);
}

TEST(SlowLogTest, ToJsonIsWellFormed)
{
    SlowLog log;
    SlowLogEntry e;
    e.wallMs = 1'000;
    e.traceId = 0xabcULL;
    e.kind = (uint16_t)proto::MsgKind::RunSource;
    e.errorCode = (uint16_t)proto::ErrorCode::DeadlineExceeded;
    e.queueUs = 10;
    e.runUs = 20;
    e.totalUs = 35;
    e.detail = "fibo \"quoted\"";
    log.record(e);

    const std::string json = log.toJson();
    std::string error;
    EXPECT_TRUE(obs::jsonWellFormed(json, &error)) << error;
    EXPECT_NE(json.find("\"trace_id\":\"0000000000000abc\""),
              std::string::npos);
    EXPECT_NE(json.find("\"total_us\":35"), std::string::npos);
}

TEST_F(TracingTest, SampledSlowLogSurfacesInStats)
{
    startServer(/*advertise_tracing=*/true, /*slow_sample=*/1);
    Client client = connect();
    ASSERT_TRUE(client.runSource(quickSource(7)).ok);

    const std::string json = client.stats();
    EXPECT_NE(json.find("\"slow_log\":[{"), std::string::npos);
    std::string error;
    EXPECT_TRUE(obs::jsonWellFormed(json, &error)) << error;
}

// ---------------------------------------------------------------------
// Router: one trace crossing three processes.

class RouterTracingTest : public ::testing::Test
{
  protected:
    TempDir dir;
    std::vector<std::unique_ptr<Server>> shards;
    std::unique_ptr<Router> router;

    std::string shardSock(size_t i) const
    {
        return dir.str() + "/shard" + std::to_string(i) + ".sock";
    }
    std::string routerSock() const { return dir.str() + "/router.sock"; }

    void
    start(size_t nshards, bool advertise_tracing = true)
    {
        for (size_t i = 0; i < nshards; ++i) {
            Server::Config cfg;
            cfg.unixPath = shardSock(i);
            cfg.jobs = 1;
            cfg.sim.cacheDir = dir.str() + "/cache" + std::to_string(i);
            cfg.sim.diskCache = false;
            auto server = std::make_unique<Server>(cfg);
            server->start();
            shards.push_back(std::move(server));
        }
        Router::Config cfg;
        cfg.unixPath = routerSock();
        for (size_t i = 0; i < nshards; ++i) {
            Endpoint ep;
            ep.unixPath = shardSock(i);
            cfg.shards.push_back(ep);
        }
        cfg.advertiseTracing = advertise_tracing;
        router = std::make_unique<Router>(cfg);
        router->start();
    }

    void
    TearDown() override
    {
        if (router)
            router->stop();
        for (auto &s : shards)
            s->stop();
    }
};

TEST_F(RouterTracingTest, OneTraceCrossesClientRouterAndShard)
{
    start(2);
    obs::SpanRecorder client_rec("tarch_bench_client");
    Client client = Client::connectUnix(routerSock());
    client.enableTracing(&client_rec, 1);

    // The router probes each backend with a PIPELINED Hello on the
    // fresh connection, so the first request on a cold backend
    // forwards untraced; later requests ride v2 end to end.
    ASSERT_TRUE(client.runSource(quickSource(1)).ok);
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    for (unsigned i = 2; i <= 4; ++i)
        ASSERT_TRUE(client.runSource(quickSource(i)).ok);

    // Some trace id must appear in all three recorders.
    std::set<uint64_t> shard_traces;
    for (auto &shard : shards)
        for (const auto &span : shard->spanRecorder().snapshot())
            shard_traces.insert(span.traceId);
    ASSERT_FALSE(shard_traces.empty())
        << "no shard recorded any span: backend Hello never landed?";

    std::set<uint64_t> router_traces;
    for (const auto &span : router->spanRecorder().snapshot())
        router_traces.insert(span.traceId);

    uint64_t crossing = 0;
    for (const auto &span : client_rec.snapshot())
        if (router_traces.count(span.traceId) &&
            shard_traces.count(span.traceId))
            crossing = span.traceId;
    ASSERT_NE(crossing, 0u);

    // Shard-side spans nest under the router's backend span: the
    // forwarded context's parent is the router.backend span id.
    uint32_t backend_span = 0;
    for (const auto &span : router->spanRecorder().snapshot())
        if (span.traceId == crossing && span.name == "router.backend")
            backend_span = span.spanId;
    ASSERT_NE(backend_span, 0u);
    bool nested = false;
    for (auto &shard : shards)
        for (const auto &span : shard->spanRecorder().snapshot())
            if (span.traceId == crossing &&
                span.parentSpanId == backend_span)
                nested = true;
    EXPECT_TRUE(nested);
    EXPECT_EQ(router->health().framingErrors, 0u);
}

TEST_F(RouterTracingTest, UntracedRouterForwardsPureV1)
{
    start(1, /*advertise_tracing=*/false);
    obs::SpanRecorder rec("client");
    Client client = Client::connectUnix(routerSock());
    client.enableTracing(&rec, 1);
    for (unsigned i = 0; i < 3; ++i)
        ASSERT_TRUE(client.runSource(quickSource(i)).ok);

    EXPECT_EQ(rec.size(), 0u);
    EXPECT_EQ(router->spanRecorder().size(), 0u);
    EXPECT_EQ(shards[0]->spanRecorder().size(), 0u);
    EXPECT_EQ(router->health().framingErrors, 0u);
    EXPECT_EQ(shards[0]->health().framingErrors, 0u);
}

TEST_F(RouterTracingTest, RouterMetricsScrapeLintsClean)
{
    start(2);
    Client client = Client::connectUnix(routerSock());
    ASSERT_TRUE(client.runSource(quickSource(9)).ok);

    const std::string text = client.metricsText();
    ASSERT_FALSE(text.empty());
    std::string error;
    EXPECT_TRUE(obs::Registry::lintPrometheus(text, &error)) << error;
    EXPECT_NE(text.find("tarch_router_received_total"),
              std::string::npos);
    EXPECT_NE(text.find("tarch_router_shard_forwarded_total"),
              std::string::npos);
    EXPECT_NE(text.find("tarch_router_latency_us"), std::string::npos);
}

// ---------------------------------------------------------------------
// HedgedClient: root + attempt spans.

TEST_F(TracingTest, HedgedClientRecordsRootAndAttemptSpans)
{
    startServer();
    obs::SpanRecorder rec("client");
    HedgedClient::Options hopts;
    Endpoint ep;
    ep.unixPath = sock();
    hopts.endpoints.push_back(ep);
    hopts.recorder = &rec;
    hopts.traceSampleEvery = 1;
    HedgedClient client(hopts);

    ASSERT_TRUE(client.runSource(quickSource(8)).ok);

    std::set<std::string> names;
    uint64_t trace_id = 0;
    for (const auto &span : rec.snapshot()) {
        names.insert(span.name);
        trace_id = span.traceId;
    }
    EXPECT_TRUE(names.count("client.request"));
    EXPECT_TRUE(names.count("client.attempt"));

    // The server saw the same trace.
    bool found = false;
    for (const auto &span : server->spanRecorder().snapshot())
        if (span.traceId == trace_id)
            found = true;
    EXPECT_TRUE(found);
}

} // namespace
} // namespace tarch::serve
