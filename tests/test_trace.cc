// Tests for the execution tracer: ring-buffer wraparound semantics and
// the "recent instructions" window appended to fatal PC errors.

#include <gtest/gtest.h>

#include <algorithm>

#include "assembler/assembler.h"
#include "common/log.h"
#include "core/core.h"
#include "core/trace.h"

namespace tarch::core {
namespace {

isa::Instr
nopAt(uint32_t imm)
{
    isa::Instr instr;
    instr.op = isa::Opcode::ADDI;
    instr.rd = isa::reg::zero;
    instr.rs1 = isa::reg::zero;
    instr.imm = static_cast<int32_t>(imm);
    return instr;
}

TEST(Tracer, FillsInOrderBeforeWrap)
{
    Tracer tracer(8);
    for (uint64_t i = 0; i < 5; ++i)
        tracer.record(0x1000 + 4 * i, nopAt(static_cast<uint32_t>(i)), i);
    EXPECT_EQ(tracer.recorded(), 5u);
    const auto entries = tracer.entries();
    ASSERT_EQ(entries.size(), 5u);
    for (uint64_t i = 0; i < 5; ++i) {
        EXPECT_EQ(entries[i].index, i);
        EXPECT_EQ(entries[i].pc, 0x1000 + 4 * i);
    }
}

TEST(Tracer, WrapKeepsNewestCapacityEntriesOldestFirst)
{
    Tracer tracer(4);
    for (uint64_t i = 0; i < 10; ++i)
        tracer.record(0x2000 + 4 * i, nopAt(static_cast<uint32_t>(i)), i);
    EXPECT_EQ(tracer.capacity(), 4u);
    EXPECT_EQ(tracer.recorded(), 10u);
    const auto entries = tracer.entries();
    ASSERT_EQ(entries.size(), 4u);
    // The window is the last 4 records, in execution order.
    for (uint64_t i = 0; i < 4; ++i) {
        EXPECT_EQ(entries[i].index, 6 + i);
        EXPECT_EQ(entries[i].pc, 0x2000 + 4 * (6 + i));
    }
}

TEST(Tracer, WrapExactlyAtCapacityBoundary)
{
    Tracer tracer(4);
    for (uint64_t i = 0; i < 4; ++i)
        tracer.record(4 * i, nopAt(0), i);
    const auto at = tracer.entries();
    ASSERT_EQ(at.size(), 4u);
    EXPECT_EQ(at.front().index, 0u);
    // One more record evicts exactly the oldest entry.
    tracer.record(0x40, nopAt(0), 4);
    const auto after = tracer.entries();
    ASSERT_EQ(after.size(), 4u);
    EXPECT_EQ(after.front().index, 1u);
    EXPECT_EQ(after.back().index, 4u);
}

TEST(Tracer, ClearResetsWindow)
{
    Tracer tracer(4);
    for (uint64_t i = 0; i < 6; ++i)
        tracer.record(4 * i, nopAt(0), i);
    tracer.clear();
    EXPECT_EQ(tracer.recorded(), 0u);
    EXPECT_TRUE(tracer.entries().empty());
    tracer.record(0x8, nopAt(0), 7);
    const auto entries = tracer.entries();
    ASSERT_EQ(entries.size(), 1u);
    EXPECT_EQ(entries[0].index, 7u);
}

TEST(Tracer, DumpDisassemblesEveryCapturedEntry)
{
    Tracer tracer(3);
    for (uint64_t i = 0; i < 5; ++i)
        tracer.record(0x100 + 4 * i, nopAt(static_cast<uint32_t>(i)), i);
    const std::string dump = tracer.dump();
    // Three lines, one per surviving entry, tagged with the dynamic
    // instruction number.
    EXPECT_EQ(std::count(dump.begin(), dump.end(), '\n'), 3);
    EXPECT_NE(dump.find("#2"), std::string::npos);
    EXPECT_NE(dump.find("#4"), std::string::npos);
    EXPECT_EQ(dump.find("#1 "), std::string::npos);
}

TEST(Tracer, FatalPcErrorCarriesRecentInstructionWindow)
{
    // jr to a garbage address leaves the text segment: the fatal error
    // must embed the tracer's window so generated-interpreter bugs are
    // debuggable post mortem.
    Core core;
    Tracer tracer(16);
    core.setTracer(&tracer);
    core.loadProgram(assembler::assemble(R"(
        li a0, 3
        li a1, 4
        add a2, a0, a1
        li t0, 0xdead00
        jr t0
    )"));
    try {
        core.run();
        FAIL() << "expected a fatal PC error";
    } catch (const FatalError &err) {
        const std::string msg = err.what();
        EXPECT_NE(msg.find("outside text segment"), std::string::npos);
        EXPECT_NE(msg.find("recent instructions:"), std::string::npos);
        // The window holds the actual trailing instructions (jr is a
        // jalr-zero alias and disassembles as such).
        EXPECT_NE(msg.find("jalr"), std::string::npos);
        EXPECT_NE(msg.find("add"), std::string::npos);
    }
}

TEST(Tracer, FatalPcErrorWithoutTracerHasNoWindow)
{
    Core core;
    core.loadProgram(assembler::assemble(R"(
        li t0, 0xdead00
        jr t0
    )"));
    try {
        core.run();
        FAIL() << "expected a fatal PC error";
    } catch (const FatalError &err) {
        const std::string msg = err.what();
        EXPECT_NE(msg.find("outside text segment"), std::string::npos);
        EXPECT_EQ(msg.find("recent instructions:"), std::string::npos);
    }
}

} // namespace
} // namespace tarch::core
