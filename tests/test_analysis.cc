/**
 * @file
 * Static-verifier tests: every diagnostic fires on a minimal
 * hand-written reproducer and stays silent on its corrected twin, the
 * exit-code mapping distinguishes clean/warn/error, the
 * .verify_indirect_targets directive seeds the CFG, and — the
 * permanent ratchet — all six generated interpreter images (2 engines
 * x 3 ISA variants) are lint-clean.
 */

#include <gtest/gtest.h>

#include "analysis/checks.h"
#include "assembler/assembler.h"
#include "vm/image.h"
#include "vm/js/interp_gen.h"
#include "vm/lua/interp_gen.h"
#include "vm/variant.h"

namespace tarch {
namespace {

using analysis::Report;
using analysis::Severity;

Report
verify(const std::string &source)
{
    return analysis::verifyImage(assembler::assemble(source));
}

/** True if some finding matches severity, check id and message text. */
bool
hasFinding(const Report &report, Severity severity, const std::string &check,
           const std::string &needle)
{
    for (const analysis::Finding &f : report.findings)
        if (f.severity == severity && f.check == check &&
            f.message.find(needle) != std::string::npos)
            return true;
    return false;
}

::testing::AssertionResult
isClean(const Report &report)
{
    if (report.findings.empty())
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure() << "\n" << report.render();
}

// ---------------------------------------------------------------------
// Typed-config reaching state.

TEST(TypedState, UnconfiguredTldIsAnError)
{
    const Report r = verify(R"(
_start:
    li t0, 0x100000
    tld a0, 0(t0)
    halt
)");
    EXPECT_TRUE(hasFinding(r, Severity::Error, "typed-state",
                           "`tld` is reachable with R_offset, R_shift, and "
                           "R_mask unconfigured"));
    EXPECT_EQ(r.exitCode(), 2);
}

TEST(TypedState, ConfiguredTldTwinIsClean)
{
    EXPECT_TRUE(isClean(verify(R"(
_start:
    li t1, 3
    setoffset t1
    setshift t1
    setmask t1
    li t0, 0x100000
    tld a0, 0(t0)
    halt
)")));
}

TEST(TypedState, XaddAfterFlushTrtIsAnError)
{
    const Report r = verify(R"(
_start:
    thdl miss
    li t1, 1
    set_trt t1
    flush_trt
    li a1, 1
    li a2, 2
    xadd a0, a1, a2
    halt
miss:
    halt
)");
    EXPECT_TRUE(hasFinding(r, Severity::Error, "typed-state",
                           "`xadd` is reachable with the TRT unconfigured"));
    // The path condition names the in-block flush.
    bool blamed_flush = false;
    for (const analysis::Finding &f : r.findings)
        if (f.path.find("flush_trt") != std::string::npos)
            blamed_flush = true;
    EXPECT_TRUE(blamed_flush);
}

TEST(TypedState, ReinstalledTrtTwinIsClean)
{
    EXPECT_TRUE(isClean(verify(R"(
_start:
    thdl miss
    li t1, 1
    set_trt t1
    flush_trt
    set_trt t1
    li a1, 1
    li a2, 2
    xadd a0, a1, a2
    halt
miss:
    halt
)")));
}

TEST(TypedState, ThdlMissingOnOnePathIsAnError)
{
    const Report r = verify(R"(
_start:
    li t1, 1
    set_trt t1
    li a1, 1
    li a2, 2
    beq a1, a2, has_hdl
    j join
has_hdl:
    thdl miss
join:
    xadd a0, a1, a2
    halt
miss:
    halt
)");
    EXPECT_TRUE(hasFinding(r, Severity::Error, "typed-state",
                           "`xadd` is reachable with R_hdl unconfigured"));
    // The path condition names the handler-less predecessor.
    bool blamed_pred = false;
    for (const analysis::Finding &f : r.findings)
        if (f.path.find("predecessor") != std::string::npos)
            blamed_pred = true;
    EXPECT_TRUE(blamed_pred);
}

TEST(TypedState, ThdlOnBothPathsTwinIsClean)
{
    EXPECT_TRUE(isClean(verify(R"(
_start:
    thdl miss
    li t1, 1
    set_trt t1
    li a1, 1
    li a2, 2
    beq a1, a2, other
    j join
other:
    j join
join:
    xadd a0, a1, a2
    halt
miss:
    halt
)")));
}

TEST(TypedState, SettypeLessChkldIsAnError)
{
    const Report r = verify(R"(
_start:
    thdl miss
    li t0, 0x100000
    chkld a0, 0(t0)
    halt
miss:
    halt
)");
    EXPECT_TRUE(hasFinding(r, Severity::Error, "typed-state",
                           "`chkld` is reachable with the expected "
                           "checked-load type unconfigured"));
}

TEST(TypedState, SettypeChkldTwinIsClean)
{
    EXPECT_TRUE(isClean(verify(R"(
_start:
    thdl miss
    li t1, 5
    settype t1
    li t0, 0x100000
    chkld a0, 0(t0)
    halt
miss:
    halt
)")));
}

// ---------------------------------------------------------------------
// Def-before-use.

TEST(DefUse, UndefinedFprReadIsAnError)
{
    const Report r = verify(R"(
_start:
    fadd.d f0, f1, f2
    halt
)");
    EXPECT_TRUE(hasFinding(r, Severity::Error, "def-use",
                           "read of f1, which is never written"));
    EXPECT_TRUE(hasFinding(r, Severity::Error, "def-use",
                           "read of f2, which is never written"));
}

TEST(DefUse, LoadedFprTwinIsClean)
{
    EXPECT_TRUE(isClean(verify(R"(
_start:
    li t0, 0x100000
    fld f1, 0(t0)
    fld f2, 8(t0)
    fadd.d f0, f1, f2
    halt
)")));
}

TEST(DefUse, PartiallyWrittenGprIsAWarning)
{
    const Report r = verify(R"(
_start:
    beq zero, gp, skip
    li a1, 7
skip:
    add a2, a1, a1
    halt
)");
    EXPECT_TRUE(hasFinding(r, Severity::Warning, "def-use",
                           "a1 may be read before it is written"));
    EXPECT_EQ(r.exitCode(), 1);
}

TEST(DefUse, JoinPathConditionNamesTheOffendingPredecessor)
{
    // Three-way join: a1 is written on both branch arms but not on the
    // straight-line fallthrough, so the finding must carry a path
    // condition naming a predecessor on which it arrives unwritten --
    // and render() must print it on the "path:" line.
    const Report r = verify(R"(
_start:
    beq zero, gp, one
    beq zero, tp, two
    jal zero, join
one:
    li a1, 1
    jal zero, join
two:
    li a1, 2
join:
    add a2, a1, a1
    halt
)");
    const analysis::Finding *found = nullptr;
    for (const analysis::Finding &f : r.findings)
        if (f.check == "def-use" &&
            f.message.find("a1 may be read before it is written") !=
                std::string::npos)
            found = &f;
    ASSERT_NE(found, nullptr) << r.render();
    EXPECT_NE(found->path.find("unwritten when reached from predecessor"),
              std::string::npos)
        << found->describe();
    // The offending predecessor is the fallthrough jump, not either of
    // the arms that do write a1.
    EXPECT_NE(found->path.find("_start+"), std::string::npos)
        << found->path;
    EXPECT_NE(r.render().find("path:"), std::string::npos);
}

// ---------------------------------------------------------------------
// CFG sanity.

TEST(CfgSanity, BranchPastTextEndIsAnError)
{
    // 0x2000 is in branch range but past the two-instruction text
    // section, so only the verifier can reject it.
    const Report r = verify(R"(
_start:
    beq zero, zero, 0x2000
    halt
)");
    EXPECT_TRUE(hasFinding(r, Severity::Error, "cfg",
                           "outside the text region"));
}

TEST(CfgSanity, BranchToLabelTwinIsClean)
{
    EXPECT_TRUE(isClean(verify(R"(
_start:
    beq zero, zero, done
done:
    halt
)")));
}

TEST(CfgSanity, StoreIntoTextIsAnError)
{
    const Report r = verify(R"(
_start:
    la t0, _start
    li t1, 7
    sd t1, 0(t0)
    halt
)");
    EXPECT_TRUE(hasFinding(r, Severity::Error, "cfg",
                           "writes into the text region"));
}

TEST(CfgSanity, StoreIntoDataTwinIsClean)
{
    EXPECT_TRUE(isClean(verify(R"(
_start:
    li t0, 0x100000
    li t1, 7
    sd t1, 0(t0)
    halt
)")));
}

TEST(CfgSanity, UnreachableBlockIsAWarning)
{
    const Report r = verify(R"(
_start:
    j end
dead:
    li a0, 1
    j end
end:
    halt
)");
    EXPECT_TRUE(hasFinding(r, Severity::Warning, "cfg", "unreachable code"));
    EXPECT_EQ(r.exitCode(), 1);
}

TEST(CfgSanity, FallthroughOffTextEndIsAnError)
{
    const Report r = verify(R"(
_start:
    li a0, 1
)");
    EXPECT_TRUE(hasFinding(r, Severity::Error, "cfg",
                           "falls through past the end"));
}

TEST(CfgSanity, SysZeroTerminates)
{
    // The generated interpreters end with `vm_exit: li a0, 0; sys 0`;
    // the exit syscall must count as a terminator.
    EXPECT_TRUE(isClean(verify(R"(
_start:
    li a0, 0
    sys 0
)")));
}

TEST(CfgSanity, IndirectTargetsDirectiveSeedsTheCfg)
{
    // Without seeds: the jr's successors are unknown and the handler
    // looks unreachable.
    const Report no_seeds = verify(R"(
_start:
    la t0, h1
    jr t0
h1:
    halt
)");
    EXPECT_TRUE(hasFinding(no_seeds, Severity::Warning, "cfg",
                           "no indirect-target seeds"));
    EXPECT_TRUE(hasFinding(no_seeds, Severity::Warning, "cfg",
                           "unreachable code"));

    // The directive supplies them and the image is clean.
    EXPECT_TRUE(isClean(verify(R"(
_start:
    la t0, h1
    jr t0
h1:
    halt
.verify_indirect_targets h1
)")));
}

TEST(CfgSanity, DispatchTableDataWordsSeedTheCfg)
{
    // Without a directive, 8-aligned data dwords holding text addresses
    // are treated as dispatch-table entries (the jumptable idiom).
    EXPECT_TRUE(isClean(verify(R"(
_start:
    li t1, 0x100000
    ld t0, 0(t1)
    jr t0
h1:
    halt
.data
.dword h1
)")));
}

// ---------------------------------------------------------------------
// Exit codes (the CLI returns Report::exitCode() directly).

TEST(ExitCodes, DistinguishCleanWarningError)
{
    EXPECT_EQ(verify("_start:\n    halt\n").exitCode(), 0);
    EXPECT_EQ(verify(R"(
_start:
    j end
dead:
    j end
end:
    halt
)")
                  .exitCode(),
              1);
    EXPECT_EQ(verify("_start:\n    li a0, 1\n").exitCode(), 2);
}

// ---------------------------------------------------------------------
// The ratchet: every generated interpreter image is lint-clean.

struct ImageCase {
    bool js;
    vm::Variant variant;
};

class GeneratedImages : public ::testing::TestWithParam<ImageCase>
{
};

TEST_P(GeneratedImages, LintClean)
{
    const ImageCase c = GetParam();
    const vm::GuestLayout layout;
    const std::string source =
        c.js ? vm::js::generateInterp(c.variant, layout, layout.code,
                                      layout.consts, 4)
                   .asmText
             : vm::lua::generateInterp(c.variant, layout, layout.code,
                                       layout.consts)
                   .asmText;
    assembler::AsmOptions opts;
    opts.textBase = layout.interpText;
    opts.dataBase = layout.interpData;
    const Report report =
        analysis::verifyImage(assembler::assemble(source, opts));
    EXPECT_TRUE(isClean(report));
    EXPECT_EQ(report.exitCode(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, GeneratedImages,
    ::testing::Values(ImageCase{false, vm::Variant::Baseline},
                      ImageCase{false, vm::Variant::Typed},
                      ImageCase{false, vm::Variant::CheckedLoad},
                      ImageCase{true, vm::Variant::Baseline},
                      ImageCase{true, vm::Variant::Typed},
                      ImageCase{true, vm::Variant::CheckedLoad}),
    [](const ::testing::TestParamInfo<ImageCase> &info) {
        std::string name = std::string(info.param.js ? "js_" : "lua_") +
                           std::string(vm::variantName(info.param.variant));
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

} // namespace
} // namespace tarch
