// The tarch-router cluster front-end: consistent-hash ring stability,
// the per-shard health state machine (ejection, backoff, re-probe),
// the priority shed-queue, and a Router wired to real in-process
// Server shards over Unix sockets — key-affine forwarding, shedding
// under overload, shard-death failover with ConnectionLost answers,
// heal-after-restart, drain, and framing-error isolation.  Plus the
// HedgedClient: hedged duplicates of one slow request collapsing into
// the shard's single-flight source memo.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <set>
#include <string>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include <algorithm>

#include "common/log.h"
#include "common/strutil.h"
#include "serve/client.h"
#include "serve/hedged_client.h"
#include "serve/protocol.h"
#include "serve/router.h"
#include "serve/server.h"

namespace fs = std::filesystem;

namespace tarch::serve {
namespace {

// ---------------------------------------------------------------------
// HashRing.

TEST(HashRing, EmptyRingHasNoOwner)
{
    HashRing ring;
    EXPECT_TRUE(ring.empty());
    EXPECT_EQ(ring.owner(42), HashRing::npos);
    EXPECT_TRUE(ring.owners(42, 3).empty());
}

TEST(HashRing, OwnerIsStableAndOwnersAreDistinct)
{
    HashRing ring;
    for (size_t i = 0; i < 4; ++i)
        ring.insert(i, "shard" + std::to_string(i), 64);
    for (uint64_t key = 0; key < 100; ++key) {
        const size_t owner = ring.owner(key * 0x9e3779b97f4a7c15ULL);
        ASSERT_LT(owner, 4u);
        const auto walk = ring.owners(key * 0x9e3779b97f4a7c15ULL, 4);
        ASSERT_EQ(walk.size(), 4u);
        EXPECT_EQ(walk[0], owner);
        EXPECT_EQ(std::set<size_t>(walk.begin(), walk.end()).size(), 4u);
    }
}

TEST(HashRing, RemovingAShardMovesOnlyItsOwnKeys)
{
    constexpr size_t kShards = 4;
    constexpr uint64_t kKeys = 8'000;
    HashRing ring;
    for (size_t i = 0; i < kShards; ++i)
        ring.insert(i, "shard" + std::to_string(i), 64);

    std::vector<size_t> before(kKeys);
    for (uint64_t k = 0; k < kKeys; ++k)
        before[k] = ring.owner(k * 0x9e3779b97f4a7c15ULL + 1);

    ring.erase(2);
    uint64_t moved = 0, was_on_removed = 0;
    for (uint64_t k = 0; k < kKeys; ++k) {
        const size_t after = ring.owner(k * 0x9e3779b97f4a7c15ULL + 1);
        ASSERT_NE(after, 2u);
        if (before[k] == 2) {
            was_on_removed++;
        } else {
            // The consistent-hashing contract: keys not owned by the
            // removed shard DO NOT move.
            EXPECT_EQ(after, before[k]) << "key " << k;
        }
        if (after != before[k])
            moved++;
    }
    EXPECT_EQ(moved, was_on_removed);
    // ~1/4 of the keyspace lived on the removed shard (vnode variance
    // allowed for).
    EXPECT_GT(was_on_removed, kKeys / 8);
    EXPECT_LT(was_on_removed, kKeys / 2);
}

TEST(HashRing, AddingAShardOnlyStealsKeysForItself)
{
    constexpr uint64_t kKeys = 8'000;
    HashRing ring;
    for (size_t i = 0; i < 3; ++i)
        ring.insert(i, "shard" + std::to_string(i), 64);
    std::vector<size_t> before(kKeys);
    for (uint64_t k = 0; k < kKeys; ++k)
        before[k] = ring.owner(k * 0x9e3779b97f4a7c15ULL + 7);

    ring.insert(3, "shard3", 64);
    uint64_t moved = 0;
    for (uint64_t k = 0; k < kKeys; ++k) {
        const size_t after = ring.owner(k * 0x9e3779b97f4a7c15ULL + 7);
        if (after != before[k]) {
            // A moved key may only move TO the new shard.
            EXPECT_EQ(after, 3u);
            moved++;
        }
    }
    // ~1/4 of keys land on the newcomer.
    EXPECT_GT(moved, kKeys / 8);
    EXPECT_LT(moved, kKeys / 2);
}

// ---------------------------------------------------------------------
// ShardHealth.

TEST(ShardHealth, EjectsAfterConsecutiveFailuresAndReprobes)
{
    ShardHealth::Options opts;
    opts.ejectAfter = 3;
    opts.backoffFloorMs = 100;
    opts.backoffCapMs = 400;
    ShardHealth h(opts);

    EXPECT_EQ(h.state(), ShardHealth::State::Healthy);
    EXPECT_TRUE(h.admit(0));
    h.recordFailure(0);
    h.recordFailure(0);
    EXPECT_EQ(h.state(), ShardHealth::State::Healthy);
    h.recordFailure(0);  // third strike
    EXPECT_EQ(h.state(), ShardHealth::State::Ejected);
    EXPECT_EQ(h.ejections(), 1u);
    EXPECT_EQ(h.backoffMs(), 100u);

    // Out of rotation until the backoff expires...
    EXPECT_FALSE(h.admit(50));
    EXPECT_FALSE(h.admit(99));
    // ...then exactly ONE probe is admitted.
    EXPECT_TRUE(h.admit(100));
    EXPECT_EQ(h.state(), ShardHealth::State::Probing);
    EXPECT_FALSE(h.admit(100));
    EXPECT_FALSE(h.admit(10'000));

    // Probe failure doubles the backoff.
    h.recordFailure(100);
    EXPECT_EQ(h.state(), ShardHealth::State::Ejected);
    EXPECT_EQ(h.backoffMs(), 200u);
    EXPECT_FALSE(h.admit(299));
    EXPECT_TRUE(h.admit(300));
    h.recordFailure(300);
    EXPECT_EQ(h.backoffMs(), 400u);
    // The doubling saturates at the cap.
    EXPECT_TRUE(h.admit(700));
    h.recordFailure(700);
    EXPECT_EQ(h.backoffMs(), 400u);
    EXPECT_EQ(h.ejections(), 4u);

    // A probe success heals fully: streak and backoff reset.
    EXPECT_TRUE(h.admit(1'100));
    h.recordSuccess();
    EXPECT_EQ(h.state(), ShardHealth::State::Healthy);
    EXPECT_EQ(h.backoffMs(), 0u);
    EXPECT_TRUE(h.admit(1'100));
    // The next ejection starts from the floor again.
    h.recordFailure(2'000);
    h.recordFailure(2'000);
    h.recordFailure(2'000);
    EXPECT_EQ(h.backoffMs(), 100u);
}

TEST(ShardHealth, SuccessResetsTheFailureStreak)
{
    ShardHealth::Options opts;
    opts.ejectAfter = 3;
    ShardHealth h(opts);
    for (int round = 0; round < 5; ++round) {
        h.recordFailure(0);
        h.recordFailure(0);
        h.recordSuccess();  // never three in a row
    }
    EXPECT_EQ(h.state(), ShardHealth::State::Healthy);
    EXPECT_EQ(h.ejections(), 0u);
}

TEST(ShardHealth, StragglerFailuresWhileEjectedAreIgnored)
{
    ShardHealth::Options opts;
    opts.ejectAfter = 1;
    opts.backoffFloorMs = 100;
    ShardHealth h(opts);
    h.recordFailure(0);
    EXPECT_EQ(h.state(), ShardHealth::State::Ejected);
    // In-flight requests from before the ejection failing late must
    // not extend or double the backoff.
    h.recordFailure(10);
    h.recordFailure(20);
    EXPECT_EQ(h.ejections(), 1u);
    EXPECT_EQ(h.backoffMs(), 100u);
    EXPECT_TRUE(h.admit(100));
}

// ---------------------------------------------------------------------
// ShedQueue.

TEST(ShedQueue, PopsHighestPriorityFirstFifoWithinLane)
{
    ShedQueue<int> q(8);
    EXPECT_TRUE(q.push(1, RoutePriority::Batch).accepted);
    EXPECT_TRUE(q.push(2, RoutePriority::Cell).accepted);
    EXPECT_TRUE(q.push(3, RoutePriority::Source).accepted);
    EXPECT_TRUE(q.push(4, RoutePriority::Cell).accepted);
    EXPECT_EQ(q.size(), 4u);
    int out = 0;
    ASSERT_TRUE(q.pop(out));
    EXPECT_EQ(out, 2);  // cells first, FIFO
    ASSERT_TRUE(q.pop(out));
    EXPECT_EQ(out, 4);
    ASSERT_TRUE(q.pop(out));
    EXPECT_EQ(out, 3);  // then sources
    ASSERT_TRUE(q.pop(out));
    EXPECT_EQ(out, 1);  // batches last
    EXPECT_FALSE(q.pop(out));
    EXPECT_EQ(q.size(), 0u);
}

TEST(ShedQueue, FullQueueEvictsYoungestLowerPriorityEntry)
{
    ShedQueue<int> q(2);
    ASSERT_TRUE(q.push(10, RoutePriority::Batch).accepted);
    ASSERT_TRUE(q.push(11, RoutePriority::Batch).accepted);
    // A cell arriving at a full queue evicts the YOUNGEST batch.
    const auto res = q.push(20, RoutePriority::Cell);
    EXPECT_TRUE(res.accepted);
    ASSERT_TRUE(res.evicted);
    EXPECT_EQ(res.victim, 11);
    int out = 0;
    ASSERT_TRUE(q.pop(out));
    EXPECT_EQ(out, 20);
    ASSERT_TRUE(q.pop(out));
    EXPECT_EQ(out, 10);
}

TEST(ShedQueue, FullQueueShedsIncomingWhenNothingIsLessImportant)
{
    ShedQueue<int> q(2);
    ASSERT_TRUE(q.push(10, RoutePriority::Cell).accepted);
    ASSERT_TRUE(q.push(11, RoutePriority::Source).accepted);
    // An incoming batch outranks nothing queued: it is shed itself.
    const auto res = q.push(30, RoutePriority::Batch);
    EXPECT_FALSE(res.accepted);
    ASSERT_TRUE(res.evicted);
    EXPECT_EQ(res.victim, 30);
    // Same for a source when only cells and an older source are queued:
    // equal priority does not evict.
    const auto res2 = q.push(31, RoutePriority::Source);
    EXPECT_FALSE(res2.accepted);
    EXPECT_EQ(res2.victim, 31);
    EXPECT_EQ(q.size(), 2u);
}

// ---------------------------------------------------------------------
// Router over real shards.

struct TempDir {
    fs::path path;
    TempDir()
    {
        static std::atomic<int> counter{0};
        path = fs::temp_directory_path() /
               strformat("tarch_router_test_%ld_%d", (long)::getpid(),
                         counter++);
        fs::remove_all(path);
        fs::create_directories(path);
    }
    ~TempDir() { fs::remove_all(path); }
    std::string str() const { return path.string(); }
};

class RouterTest : public ::testing::Test
{
  protected:
    TempDir dir;
    std::vector<std::unique_ptr<Server>> shards;
    std::unique_ptr<Router> router;

    std::string shardSock(size_t i) const
    {
        return dir.str() + "/shard" + std::to_string(i) + ".sock";
    }
    std::string routerSock() const { return dir.str() + "/router.sock"; }

    void
    startShard(size_t i)
    {
        Server::Config cfg;
        cfg.unixPath = shardSock(i);
        cfg.jobs = 1;
        cfg.sim.cacheDir = dir.str() + "/cache" + std::to_string(i);
        cfg.sim.diskCache = false;
        auto server = std::make_unique<Server>(cfg);
        server->start();
        if (shards.size() <= i)
            shards.resize(i + 1);
        shards[i] = std::move(server);
    }

    void
    startRouter(size_t nshards, size_t window = 128, size_t queue = 256,
                uint32_t backoff_floor_ms = 50)
    {
        for (size_t i = 0; i < nshards; ++i)
            startShard(i);
        Router::Config cfg;
        cfg.unixPath = routerSock();
        for (size_t i = 0; i < nshards; ++i) {
            Endpoint ep;
            ep.unixPath = shardSock(i);
            cfg.shards.push_back(ep);
        }
        cfg.windowPerShard = window;
        cfg.queuePerShard = queue;
        cfg.ejectAfter = 3;
        cfg.backoffFloorMs = backoff_floor_ms;
        router = std::make_unique<Router>(cfg);
        router->start();
    }

    void
    TearDown() override
    {
        if (router)
            router->stop();
        for (auto &s : shards)
            if (s)
                s->stop();
    }

    Client connect() { return Client::connectUnix(routerSock()); }

    static proto::SourceRequest
    quickSource(int n)
    {
        proto::SourceRequest req;
        req.variant = 1;
        req.source = strformat("print(%d)\n", n);
        return req;
    }
};

TEST_F(RouterTest, ForwardsWithKeyAffinity)
{
    startRouter(2);
    Client client = connect();
    proto::SourceRequest req = quickSource(7);
    for (int i = 0; i < 5; ++i) {
        const Client::Outcome outcome = client.runSource(req);
        ASSERT_TRUE(outcome.ok) << outcome.error.message;
        EXPECT_NE(outcome.result.output.find("7"), std::string::npos);
    }
    const Router::Health health = router->health();
    EXPECT_EQ(health.forwarded, 5u);
    EXPECT_EQ(health.completed, 5u);
    EXPECT_EQ(health.shedBusy, 0u);
    ASSERT_EQ(health.shards.size(), 2u);
    // Content-addressed routing: all five repeats of one source land
    // on the SAME shard (which one is up to the ring).
    const uint64_t a = health.shards[0].forwarded;
    const uint64_t b = health.shards[1].forwarded;
    EXPECT_EQ(a + b, 5u);
    EXPECT_TRUE(a == 5u || b == 5u) << a << " vs " << b;
}

TEST_F(RouterTest, DistinctKeysSpreadAcrossShards)
{
    startRouter(2);
    Client client = connect();
    for (int i = 0; i < 24; ++i)
        ASSERT_TRUE(client.runSource(quickSource(i)).ok);
    const Router::Health health = router->health();
    ASSERT_EQ(health.shards.size(), 2u);
    // With 24 distinct keys both shards see work (P[one-sided] ~ 2^-24
    // under a fair ring; the 64-vnode ring is fair enough).
    EXPECT_GT(health.shards[0].forwarded, 0u);
    EXPECT_GT(health.shards[1].forwarded, 0u);
}

TEST_F(RouterTest, PingStatsAndUnknownKindAnsweredLocally)
{
    startRouter(1);
    Client client = connect();
    EXPECT_TRUE(client.ping());
    const std::string json = client.stats();
    EXPECT_NE(json.find("\"schema\":\"tarch-router-stats-v2\""),
              std::string::npos);
    EXPECT_NE(json.find("\"shards\":["), std::string::npos);
    EXPECT_NE(json.find("\"uptime_seconds\":"), std::string::npos);
    EXPECT_NE(json.find("\"replies_by_code\":{\"ok\":"),
              std::string::npos);

    const uint64_t id = client.sendRequest(
        static_cast<proto::MsgKind>(99), "");
    ASSERT_NE(id, 0u);
    Client::Reply reply;
    ASSERT_TRUE(client.readReply(reply));
    EXPECT_EQ(static_cast<proto::MsgKind>(reply.kind),
              proto::MsgKind::Error);
    proto::ErrorBody error;
    ASSERT_TRUE(proto::decodeErrorBody(reply.payload, error));
    EXPECT_EQ(error.code,
              static_cast<uint16_t>(proto::ErrorCode::UnknownKind));
}

TEST_F(RouterTest, MalformedPayloadGetsBadFrameAndConnectionSurvives)
{
    startRouter(1);
    Client client = connect();
    const std::string frame = proto::encodeFrame(
        proto::MsgKind::RunCell, 5, std::string(3, '\xff'));
    ASSERT_TRUE(client.sendRaw(frame.data(), frame.size()));
    Client::Reply reply;
    ASSERT_TRUE(client.readReply(reply));
    EXPECT_EQ(static_cast<proto::MsgKind>(reply.kind),
              proto::MsgKind::Error);
    proto::ErrorBody error;
    ASSERT_TRUE(proto::decodeErrorBody(reply.payload, error));
    EXPECT_EQ(error.code,
              static_cast<uint16_t>(proto::ErrorCode::BadFrame));
    // The connection survives — and real work still routes on it.
    EXPECT_TRUE(client.ping());
    EXPECT_TRUE(client.runSource(quickSource(1)).ok);
}

TEST_F(RouterTest, ShedsLowestPriorityWithRetryableBusyUnderOverload)
{
    // One shard, a 1-deep window and a 1-deep queue: the third
    // concurrent request MUST be shed with a retryable BUSY.
    startRouter(1, /*window=*/1, /*queue=*/1);
    Client client = connect();

    // Slow enough to still be in flight while the rest arrive.
    proto::SourceRequest slow;
    slow.variant = 1;
    slow.source = "local s = 0\nfor i = 1, 60000 do s = s + i end\n"
                  "print(s)\n";
    const std::string payload = proto::encodeSourceRequest(slow);

    constexpr int kCount = 5;
    std::vector<uint64_t> ids;
    for (int i = 0; i < kCount; ++i) {
        const uint64_t id =
            client.sendRequest(proto::MsgKind::RunSource, payload);
        ASSERT_NE(id, 0u);
        ids.push_back(id);
    }
    int ok = 0, busy = 0;
    for (int i = 0; i < kCount; ++i) {
        Client::Reply reply;
        ASSERT_TRUE(client.readReply(reply));
        EXPECT_NE(std::find(ids.begin(), ids.end(), reply.requestId),
                  ids.end());
        if (static_cast<proto::MsgKind>(reply.kind) ==
            proto::MsgKind::Error) {
            proto::ErrorBody error;
            ASSERT_TRUE(proto::decodeErrorBody(reply.payload, error));
            EXPECT_EQ(error.code,
                      static_cast<uint16_t>(proto::ErrorCode::Busy));
            EXPECT_EQ(error.retryable, 1);
            busy++;
        } else {
            EXPECT_EQ(static_cast<proto::MsgKind>(reply.kind),
                      proto::MsgKind::CellResult);
            ok++;
        }
    }
    EXPECT_GE(ok, 1);
    EXPECT_GE(busy, 1);
    EXPECT_EQ(ok + busy, kCount);
    EXPECT_EQ(router->health().shedBusy, (uint64_t)busy);
}

TEST_F(RouterTest, DeadShardFailsOverThenEjects)
{
    startRouter(2);
    Client client = connect();
    // Warm both backends so the ring placement is active.
    for (int i = 0; i < 8; ++i)
        ASSERT_TRUE(client.runSource(quickSource(i)).ok);

    // Kill shard 1 outright.
    shards[1]->stop();

    // Every key still gets an answer: keys owned by the dead shard see
    // a connect failure inside the router and fail over to shard 0.
    for (int i = 0; i < 16; ++i) {
        const Client::Outcome outcome = client.runSource(quickSource(i));
        ASSERT_TRUE(outcome.ok) << outcome.error.message;
    }
    const Router::Health health = router->health();
    ASSERT_EQ(health.shards.size(), 2u);
    EXPECT_GE(health.shards[1].failures, 1u);
    // Enough touches eject it from rotation.
    EXPECT_GE(health.shards[1].ejections, 1u);
    // Ejected, or already probing for a comeback — never healthy.
    EXPECT_NE(health.shards[1].state, "healthy");
}

// ---------------------------------------------------------------------
// Stateful sessions through the router (docs/SERVING.md).

TEST_F(RouterTest, SessionSticksToOneShardAndMigratesWhenItDies)
{
    startRouter(2);
    Client client = connect();

    // The router assigns the id when the client opens with 0.
    proto::OpenSessionRequest open;
    open.engine = 0;
    open.variant = 1;
    open.sessionId = 0;
    open.source = "c = 0";
    const Client::SessionOutcome opened = client.openSession(open);
    ASSERT_TRUE(opened.ok) << opened.error.message;
    const uint64_t id = opened.reply.sessionId;
    ASSERT_NE(id, 0u);

    proto::SubmitChunkRequest chunk;
    chunk.sessionId = id;
    chunk.source = "c = c + 1\nprint(c)";
    const Client::SessionOutcome one = client.submitChunk(chunk);
    ASSERT_TRUE(one.ok) << one.error.message;
    EXPECT_EQ(one.reply.output, "1\n");

    // A client-visible snapshot synchronously refreshes the router's
    // blob cache, so the migration below cannot race the background
    // refresh.
    const Client::SessionOutcome snap = client.snapshotSession(id);
    ASSERT_TRUE(snap.ok) << snap.error.message;
    ASSERT_FALSE(snap.snapshot.blob.empty());

    Router::Health health = router->health();
    EXPECT_GE(health.sessionsTracked, 1u);
    EXPECT_EQ(health.sessionsMigrated, 0u);
    // Session affinity: only the owning shard has seen traffic.
    ASSERT_EQ(health.shards.size(), 2u);
    ASSERT_TRUE(health.shards[0].forwarded == 0 ||
                health.shards[1].forwarded == 0);
    const size_t owner = health.shards[0].forwarded > 0 ? 0 : 1;

    // Kill the owner.  The next chunk fails over to the survivor,
    // which answers UnknownSession — the router restores the cached
    // snapshot there and replays the chunk, invisibly to the client.
    shards[owner]->stop();
    const Client::SessionOutcome migrated = client.submitChunk(chunk);
    ASSERT_TRUE(migrated.ok) << migrated.error.message;
    EXPECT_EQ(migrated.reply.output, "2\n");
    health = router->health();
    EXPECT_GE(health.sessionsMigrated, 1u);
    EXPECT_NE(health.toJson().find("\"sessions_migrated\":"),
              std::string::npos);

    // The session keeps running on its new owner.
    const Client::SessionOutcome after = client.submitChunk(chunk);
    ASSERT_TRUE(after.ok) << after.error.message;
    EXPECT_EQ(after.reply.output, "3\n");
    EXPECT_TRUE(client.closeSession(id).ok);
    EXPECT_EQ(router->health().sessionsTracked, 0u);
}

TEST_F(RouterTest, RestoreWithZeroIdIsRejectedAtTheRouter)
{
    startRouter(1);
    Client client = connect();
    // A zero id would leave the router with no affinity key to route
    // or migrate by, so it refuses rather than forwarding.
    proto::RestoreSessionRequest req;
    req.sessionId = 0;
    req.blob = "not-a-blob";
    const Client::SessionOutcome outcome = client.restoreSession(req);
    ASSERT_FALSE(outcome.ok);
    ASSERT_FALSE(outcome.closed);
    EXPECT_EQ(outcome.error.code,
              static_cast<uint16_t>(proto::ErrorCode::BadRequest));
    EXPECT_TRUE(client.ping());
}

/** A backend that accepts one connection, reads a little, and slams
    the door mid-conversation — the abrupt death a graceful in-process
    Server::stop() cannot fake. */
struct AbruptBackend {
    std::string path;
    int listenFd = -1;
    std::thread th;

    explicit AbruptBackend(const std::string &p) : path(p)
    {
        listenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        EXPECT_GE(listenFd, 0);
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, path.c_str(),
                     sizeof(addr.sun_path) - 1);
        ::unlink(path.c_str());
        EXPECT_EQ(::bind(listenFd,
                         reinterpret_cast<sockaddr *>(&addr),
                         sizeof(addr)),
                  0);
        EXPECT_EQ(::listen(listenFd, 8), 0);
        th = std::thread([this] {
            const int fd = ::accept(listenFd, nullptr, nullptr);
            if (fd < 0)
                return;
            // Read past the router's pipelined 20-byte Hello frame so
            // the request itself is provably in flight before the
            // abrupt close — otherwise the router's request send can
            // fail outright and it correctly fails over instead of
            // owing a ConnectionLost.
            char buf[64];
            ssize_t total = 0;
            while (total <= 20) {
                const ssize_t n = ::read(fd, buf, sizeof(buf));
                if (n <= 0)
                    break;
                total += n;
            }
            ::close(fd);  // mid-request, without a reply
        });
    }
    ~AbruptBackend()
    {
        ::shutdown(listenFd, SHUT_RDWR);
        ::close(listenFd);
        if (th.joinable())
            th.join();
    }
};

TEST_F(RouterTest, InFlightRequestsOfADeadShardGetConnectionLost)
{
    AbruptBackend backend(dir.str() + "/abrupt.sock");
    Router::Config cfg;
    cfg.unixPath = routerSock();
    Endpoint ep;
    ep.unixPath = backend.path;
    cfg.shards.push_back(ep);
    router = std::make_unique<Router>(cfg);
    router->start();

    Client client = connect();
    const uint64_t id = client.sendRequest(
        proto::MsgKind::RunSource,
        proto::encodeSourceRequest(quickSource(1)));
    ASSERT_NE(id, 0u);

    // The backend dies mid-request: the router must answer what it
    // owed with a retryable ConnectionLost, never hang or fabricate.
    Client::Reply reply;
    ASSERT_TRUE(client.readReply(reply));
    EXPECT_EQ(reply.requestId, id);
    ASSERT_EQ(static_cast<proto::MsgKind>(reply.kind),
              proto::MsgKind::Error);
    proto::ErrorBody error;
    ASSERT_TRUE(proto::decodeErrorBody(reply.payload, error));
    EXPECT_EQ(error.code,
              static_cast<uint16_t>(proto::ErrorCode::ConnectionLost));
    EXPECT_EQ(error.retryable, 1);
    EXPECT_GE(router->health().connectionLost, 1u);
}

TEST_F(RouterTest, EjectedShardHealsAfterRestart)
{
    startRouter(2, 128, 256, /*backoff_floor_ms=*/50);
    Client client = connect();
    for (int i = 0; i < 8; ++i)
        ASSERT_TRUE(client.runSource(quickSource(i)).ok);

    shards[1]->stop();
    // Hammer until the router ejects shard 1 (3 consecutive failures).
    for (int i = 0; i < 16; ++i)
        ASSERT_TRUE(client.runSource(quickSource(i)).ok);
    ASSERT_GE(router->health().shards[1].failures, 3u);

    // Bring the shard back on the same endpoint.
    startShard(1);

    // Keep offering traffic — the SAME key set that proved some keys
    // route to shard 1 above, so a probe is guaranteed to be offered:
    // once the backoff expires it lands on the healed shard and the
    // shard returns to rotation.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    bool healed = false;
    uint64_t forwarded_before = router->health().shards[1].forwarded;
    while (std::chrono::steady_clock::now() < deadline) {
        for (int i = 0; i < 16; ++i)
            ASSERT_TRUE(client.runSource(quickSource(i)).ok);
        const Router::Health health = router->health();
        if (health.shards[1].state == "healthy" &&
            health.shards[1].forwarded > forwarded_before) {
            healed = true;
            break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    EXPECT_TRUE(healed);
    EXPECT_GE(router->health().shards[1].ejections, 1u);
}

TEST_F(RouterTest, DrainAnswersInFlightThenClosesAndRefuses)
{
    startRouter(1);
    Client worker = connect();
    proto::SourceRequest slow;
    slow.variant = 1;
    slow.source = "local s = 0\nfor i = 1, 60000 do s = s + i end\n"
                  "print(s)\n";
    const uint64_t id = worker.sendRequest(
        proto::MsgKind::RunSource, proto::encodeSourceRequest(slow));
    ASSERT_NE(id, 0u);
    // Make sure the router actually dispatched the request before the
    // drain starts — otherwise the drain can overtake it and answer
    // Draining instead of the real result.
    const auto forwarded_by =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (router->health().forwarded < 1 &&
           std::chrono::steady_clock::now() < forwarded_by)
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    ASSERT_GE(router->health().forwarded, 1u);

    Client ctl = connect();
    ASSERT_TRUE(ctl.drain());
    // The in-flight request is still answered with its real result.
    Client::Reply reply;
    ASSERT_TRUE(worker.readReply(reply));
    EXPECT_EQ(reply.requestId, id);
    EXPECT_EQ(static_cast<proto::MsgKind>(reply.kind),
              proto::MsgKind::CellResult);

    router->waitDrained();
    EXPECT_TRUE(router->drained());
    // Both connections end cleanly, and new connects are refused.
    EXPECT_FALSE(worker.readReply(reply));
    EXPECT_THROW(connect(), FatalError);
    EXPECT_NE(router->health().toJson().find("\"draining\":true"),
              std::string::npos);
}

TEST_F(RouterTest, RequestsDuringDrainGetRetryableDraining)
{
    startRouter(1);
    Client client = connect();
    ASSERT_TRUE(client.ping());
    router->requestDrain();
    const Client::Outcome outcome = client.runSource(quickSource(1));
    // Either answered with a retryable Draining error, or the close
    // raced the request — never a hang or garbled bytes.
    if (!outcome.closed && !outcome.lost()) {
        ASSERT_FALSE(outcome.ok);
        EXPECT_EQ(outcome.error.code,
                  static_cast<uint16_t>(proto::ErrorCode::Draining));
        EXPECT_EQ(outcome.error.retryable, 1);
    }
    router->waitDrained();
}

// ---------------------------------------------------------------------
// HedgedClient.

TEST_F(RouterTest, HedgedDuplicateCollapsesIntoShardSingleFlight)
{
    // Two ring slots onto the SAME daemon: the hedge lands where the
    // first attempt went, exactly like a router shard would, and the
    // shard's source memo single-flight absorbs the duplicate.
    startShard(0);
    HedgedClient::Options opts;
    Endpoint ep;
    ep.unixPath = shardSock(0);
    opts.endpoints = {ep, ep};
    opts.defaultHedgeMs = 5;  // hedge early and deliberately
    opts.minSamples = ~0ull;  // keep the fixed hedge delay
    HedgedClient hedged(opts);

    proto::SourceRequest slow;
    slow.variant = 1;
    slow.source = "local s = 0\nfor i = 1, 60000 do s = s + i end\n"
                  "print(s)\n";
    const Client::Outcome outcome = hedged.runSource(slow);
    ASSERT_TRUE(outcome.ok) << outcome.error.message;
    EXPECT_EQ(hedged.counters().requests, 1u);
    EXPECT_EQ(hedged.counters().hedges, 1u);

    // The daemon saw two RunSource frames but simulated ONCE: the
    // duplicate either waited on the leader's flight or hit the memo.
    // runSource() returns the moment the winner replies — the losing
    // duplicate may still be in the shard's queue, so poll until the
    // shard has accounted for it.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    Server::Health health = shards[0]->health();
    while (health.sim.singleFlightWaits + health.sim.sourceMemHits < 1 &&
           std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        health = shards[0]->health();
    }
    EXPECT_EQ(health.sim.simulated, 1u);
    EXPECT_GE(health.sim.singleFlightWaits + health.sim.sourceMemHits,
              1u);
}

TEST(HedgedClientUnit, RetryBudgetStarvesHedgingNotFirstAttempts)
{
    // No endpoints reachable: every request fails fast, no budget is
    // ever earned back, and hedging is denied once the initial tokens
    // run out — the client must not amplify an outage.
    HedgedClient::Options opts;
    Endpoint ep;
    ep.unixPath = "/nonexistent/tarch-test.sock";
    opts.endpoints = {ep, ep};
    opts.retryBudgetInitial = 2.0;
    opts.retryBudgetRatio = 0.0;
    HedgedClient hedged(opts);

    proto::CellRequest req;
    req.benchmark = "fibo";
    for (int i = 0; i < 10; ++i) {
        const Client::Outcome outcome = hedged.runCell(req);
        EXPECT_FALSE(outcome.ok);
        EXPECT_TRUE(outcome.lost());
        EXPECT_EQ(outcome.error.retryable, 1);
    }
    EXPECT_EQ(hedged.counters().requests, 10u);
    EXPECT_EQ(hedged.counters().hedges, 0u);  // nothing ever in flight
}

TEST(HedgedClientUnit, WinnerLatencyFeedsTheHedgeDelay)
{
    HedgedClient::Options opts;
    Endpoint ep;
    ep.unixPath = "/nonexistent/tarch-test.sock";
    opts.endpoints = {ep};
    opts.defaultHedgeMs = 77;
    HedgedClient hedged(opts);
    // Cold client: the default hedge delay applies.
    EXPECT_EQ(hedged.hedgeDelayUs(), 77'000u);
}

} // namespace
} // namespace tarch::serve
