// Stateful VM session tests (docs/SERVING.md, "Stateful sessions"):
// follow-on MiniScript chunks run on the same machine with globals,
// functions, heap objects and interned strings persisting across
// chunks; prepare/commit is transactional around verifier rejection;
// and a session snapshotted between chunks resumes bit-identically.
//
// Chunked-session output is checked against the one-shot run of the
// concatenated source, so the tests never hard-code engine number
// formatting.

#include <gtest/gtest.h>

#include <numeric>

#include "core/stats.h"
#include "snapshot/session_vm.h"

namespace tarch::snapshot {
namespace {

std::string
oneShotOutput(EngineId engine, const std::vector<std::string> &chunks)
{
    std::string all;
    for (const std::string &chunk : chunks)
        all += chunk + "\n";
    SessionVm::Config cfg;
    cfg.engine = engine;
    SessionVm vm(cfg, all);
    EXPECT_EQ(vm.run(), 0);
    return vm.output();
}

/** Run @p chunks through a session, committing and running each. */
std::string
sessionOutput(EngineId engine, const std::vector<std::string> &chunks)
{
    SessionVm::Config cfg;
    cfg.engine = engine;
    SessionVm vm(cfg, chunks[0]);
    EXPECT_EQ(vm.run(), 0);
    for (size_t i = 1; i < chunks.size(); ++i) {
        std::string error;
        EXPECT_TRUE(vm.prepare(chunks[i], error)) << error;
        EXPECT_TRUE(vm.commit(error)) << error;
        EXPECT_EQ(vm.run(), 0) << "chunk " << i;
    }
    EXPECT_EQ(vm.chunks(), chunks);
    return vm.output();
}

class BothEngines : public ::testing::TestWithParam<EngineId>
{
};

INSTANTIATE_TEST_SUITE_P(Session, BothEngines,
                         ::testing::Values(EngineId::Lua, EngineId::Js),
                         [](const auto &info) {
                             return info.param == EngineId::Lua ? "Lua"
                                                                : "Js";
                         });

TEST_P(BothEngines, GlobalsPersistAcrossChunks)
{
    const std::vector<std::string> chunks = {
        "x = 1\nprint(x)",
        "x = x + 1\nprint(x)",
        "x = x * 10\nprint(x)",
    };
    EXPECT_EQ(sessionOutput(GetParam(), chunks),
              oneShotOutput(GetParam(), chunks));
}

TEST_P(BothEngines, FunctionsDefinedEarlierAreCallableLater)
{
    const std::vector<std::string> chunks = {
        "function inc(n) return n + 1 end\nx = 0",
        "x = inc(inc(x))\nprint(x)",
        "function twice(n) return inc(inc(n)) end\nprint(twice(x))",
        "print(twice(inc(x)))",
    };
    EXPECT_EQ(sessionOutput(GetParam(), chunks),
              oneShotOutput(GetParam(), chunks));
}

TEST_P(BothEngines, HeapObjectsAndStringsPersist)
{
    const std::vector<std::string> chunks = {
        "t = {}\ni = 0\nwhile i < 8 do t[i] = i * i i = i + 1 end",
        "s = 0\ni = 0\nwhile i < 8 do s = s + t[i] i = i + 1 end\n"
        "print(s)",
        "name = \"total\" .. \":\"",
        "print(name .. s)\nt[100] = s\nprint(t[100])",
    };
    EXPECT_EQ(sessionOutput(GetParam(), chunks),
              oneShotOutput(GetParam(), chunks));
}

TEST_P(BothEngines, FloatZeroGlobalSurvivesChunkBoundary)
{
    // +0.0 has all-zero raw bits — the one value an "uninitialized
    // slot" heuristic could clobber when a later chunk re-lays the
    // global table.
    const std::vector<std::string> chunks = {
        "z = 0.0\nprint(z)",
        "print(z)\nprint(z + 1.5)",
    };
    EXPECT_EQ(sessionOutput(GetParam(), chunks),
              oneShotOutput(GetParam(), chunks));
}

TEST_P(BothEngines, CompileErrorLeavesSessionIntact)
{
    SessionVm::Config cfg;
    cfg.engine = GetParam();
    SessionVm vm(cfg, "x = 41");
    EXPECT_EQ(vm.run(), 0);

    std::string error;
    EXPECT_FALSE(vm.prepare("x = x +", error));
    EXPECT_FALSE(error.empty());
    EXPECT_EQ(vm.stagedProgram(), nullptr);

    // Arity errors against a function seeded from an earlier chunk are
    // caught at compile time too.
    ASSERT_TRUE(vm.prepare("function f(a) return a end", error)) << error;
    ASSERT_TRUE(vm.commit(error)) << error;
    EXPECT_EQ(vm.run(), 0);
    EXPECT_FALSE(vm.prepare("print(f(1, 2))", error));

    // The session keeps working after rejections.
    ASSERT_TRUE(vm.prepare("x = x + 1\nprint(x)", error)) << error;
    ASSERT_TRUE(vm.commit(error)) << error;
    EXPECT_EQ(vm.run(), 0);
    EXPECT_NE(vm.output().find("42"), std::string::npos);
}

TEST_P(BothEngines, DiscardStagedIsTransactional)
{
    SessionVm::Config cfg;
    cfg.engine = GetParam();
    SessionVm vm(cfg, "x = 1");
    EXPECT_EQ(vm.run(), 0);

    std::string error;
    ASSERT_TRUE(vm.prepare("x = 1000000\nprint(x)", error)) << error;
    ASSERT_NE(vm.stagedProgram(), nullptr);
    vm.discardStaged();  // verifier said no
    EXPECT_EQ(vm.stagedProgram(), nullptr);
    EXPECT_FALSE(vm.commit(error));
    EXPECT_EQ(vm.chunks().size(), 1u);

    ASSERT_TRUE(vm.prepare("x = x + 1\nprint(x)", error)) << error;
    ASSERT_TRUE(vm.commit(error)) << error;
    EXPECT_EQ(vm.run(), 0);
    EXPECT_NE(vm.output().find("2"), std::string::npos);
    EXPECT_EQ(vm.output().find("1000000"), std::string::npos);
}

TEST_P(BothEngines, SnapshotBetweenChunksResumesBitIdentically)
{
    SessionVm::Config cfg;
    cfg.engine = GetParam();
    const std::vector<std::string> chunks = {
        "acc = 0\nfunction bump(n) return n + 7 end",
        "acc = bump(acc)\nprint(acc)",
        "acc = bump(acc * 2)\nprint(acc)",
    };

    // Control session runs all three chunks uninterrupted.
    SessionVm control(cfg, chunks[0]);
    EXPECT_EQ(control.run(), 0);
    std::string error;
    for (size_t i = 1; i < chunks.size(); ++i) {
        ASSERT_TRUE(control.prepare(chunks[i], error)) << error;
        ASSERT_TRUE(control.commit(error)) << error;
        EXPECT_EQ(control.run(), 0);
    }

    // The migrated session snapshots after chunk 2 and resumes
    // elsewhere (encode -> decode -> restore, the wire path).
    SessionVm origin(cfg, chunks[0]);
    EXPECT_EQ(origin.run(), 0);
    ASSERT_TRUE(origin.prepare(chunks[1], error)) << error;
    ASSERT_TRUE(origin.commit(error)) << error;
    EXPECT_EQ(origin.run(), 0);

    Snapshot decoded;
    ASSERT_TRUE(decode(encode(origin.snapshot(99)), decoded, error))
        << error;
    std::unique_ptr<SessionVm> resumed =
        SessionVm::restore(decoded, error);
    ASSERT_NE(resumed, nullptr) << error;
    EXPECT_EQ(resumed->chunks(), origin.chunks());

    ASSERT_TRUE(resumed->prepare(chunks[2], error)) << error;
    ASSERT_TRUE(resumed->commit(error)) << error;
    EXPECT_EQ(resumed->run(), 0);

    EXPECT_EQ(resumed->output(), control.output());
    EXPECT_EQ(core::describeStatsDiff(control.stats(),
                                      resumed->stats()),
              "");
}

TEST(SessionLua, ManyChunksAccumulate)
{
    SessionVm vm(SessionVm::Config{}, "total = 0");
    EXPECT_EQ(vm.run(), 0);
    std::string error;
    for (int i = 1; i <= 12; ++i) {
        ASSERT_TRUE(
            vm.prepare("total = total + " + std::to_string(i), error))
            << error;
        ASSERT_TRUE(vm.commit(error)) << error;
        EXPECT_EQ(vm.run(), 0);
    }
    ASSERT_TRUE(vm.prepare("print(total)", error)) << error;
    ASSERT_TRUE(vm.commit(error)) << error;
    EXPECT_EQ(vm.run(), 0);
    EXPECT_EQ(vm.output(), "78\n");
    EXPECT_EQ(vm.chunks().size(), 14u);
}

} // namespace
} // namespace tarch::snapshot
