// Health checks on the benchmark suite itself: every script parses and
// compiles on both backends, and representative benchmarks produce
// their known-correct outputs end-to-end.

#include <gtest/gtest.h>

#include "harness/benchmarks.h"
#include "harness/experiment.h"
#include "script/parser.h"
#include "vm/js/compiler.h"
#include "vm/lua/compiler.h"

namespace tarch::harness {
namespace {

class EveryBenchmark : public ::testing::TestWithParam<int>
{
  protected:
    const BenchmarkInfo &info() const { return benchmarks()[GetParam()]; }
};

TEST_P(EveryBenchmark, ParsesAndCompilesOnBothBackends)
{
    const script::Chunk chunk = script::parse(info().source);
    const auto lua_module = vm::lua::compile(chunk);
    EXPECT_FALSE(lua_module.protos[0].code.empty());
    const script::Chunk chunk2 = script::parse(info().source);
    const auto js_module = vm::js::compile(chunk2);
    EXPECT_FALSE(js_module.protos[0].code.empty());
    // Every proto ends in a RETURN on both backends.
    for (const auto &proto : lua_module.protos) {
        ASSERT_FALSE(proto.code.empty()) << proto.name;
        EXPECT_EQ(static_cast<vm::lua::Op>(proto.code.back() & 0x3F),
                  vm::lua::Op::RETURN)
            << proto.name;
    }
    for (const auto &proto : js_module.protos) {
        ASSERT_FALSE(proto.code.empty()) << proto.name;
        EXPECT_EQ(static_cast<vm::js::Op>(proto.code.back() & 0xFF),
                  vm::js::Op::RETURN)
            << proto.name;
    }
}

INSTANTIATE_TEST_SUITE_P(Suite, EveryBenchmark, ::testing::Range(0, 11),
                         [](const auto &param_info) {
                             std::string name =
                                 benchmarks()[param_info.param].name;
                             for (char &c : name) {
                                 if (c == '-')
                                     c = '_';
                             }
                             return name;
                         });

TEST(BenchmarkOutputs, PiDigitsAreCorrectOnTypedLua)
{
    const RunResult r = runOne(Engine::Lua, vm::Variant::Typed,
                               benchmark("pidigits"));
    EXPECT_EQ(r.output, "31415926535897932384626433832795028841971693993751"
                        "0582097494\n");
}

TEST(BenchmarkOutputs, SievePrimeCountsOnCheckedLoadJs)
{
    const RunResult r = runOne(Engine::Js, vm::Variant::CheckedLoad,
                               benchmark("n-sieve"));
    EXPECT_EQ(r.output, "1229\n669\n367\n");
}

TEST(BenchmarkOutputs, FannkuchChecksumOnBaselineLua)
{
    const RunResult r = runOne(Engine::Lua, vm::Variant::Baseline,
                               benchmark("fannkuch-redux"));
    EXPECT_EQ(r.output, "228\n16\n");
}

TEST(BenchmarkOutputs, KNucleotideHitsTheHashSlowPath)
{
    const RunResult r = runOne(Engine::Lua, vm::Variant::Typed,
                               benchmark("k-nucleotide"));
    // Paper Figure 9: k-nucleotide has a substantial type-miss rate
    // because its table keys are strings.
    EXPECT_GT(r.stats.trt.misses(), 1000u);
    const double hit_rate =
        static_cast<double>(r.stats.trt.hits) /
        static_cast<double>(r.stats.trt.lookups);
    EXPECT_LT(hit_rate, 0.9);
}

} // namespace
} // namespace tarch::harness
