// Unit tests for the front-end predictors: gshare, BTB, RAS, and the
// combined BranchUnit policies.

#include <gtest/gtest.h>

#include "branch/branch_unit.h"
#include "branch/btb.h"
#include "branch/gshare.h"
#include "branch/ras.h"

namespace tarch::branch {
namespace {

TEST(Gshare, LearnsAlwaysTaken)
{
    // History shifts during warmup, so training must continue past the
    // point where the all-taken history saturates (7 bits).
    Gshare g;
    const uint64_t pc = 0x1000;
    for (int i = 0; i < 20; ++i)
        g.update(pc, true);
    EXPECT_TRUE(g.predict(pc));
}

TEST(Gshare, LearnsAlwaysNotTaken)
{
    Gshare g;
    const uint64_t pc = 0x1000;
    for (int i = 0; i < 20; ++i)
        g.update(pc, false);
    EXPECT_FALSE(g.predict(pc));
}

TEST(Gshare, HistoryDisambiguatesAlternation)
{
    // A strictly alternating branch becomes predictable once history is
    // part of the index: after warmup the pattern locks in.
    Gshare g({128, 7});
    const uint64_t pc = 0x2000;
    bool dir = false;
    int mispredicts = 0;
    for (int i = 0; i < 400; ++i) {
        dir = !dir;
        if (g.predict(pc) != dir && i >= 200)
            ++mispredicts;
        g.update(pc, dir);
    }
    EXPECT_EQ(mispredicts, 0);
}

TEST(Gshare, HistoryAdvances)
{
    Gshare g({128, 7});
    const uint64_t h0 = g.history();
    g.update(0x1000, true);
    EXPECT_NE(g.history(), h0);
}

TEST(Btb, LookupAfterUpdate)
{
    Btb btb;
    EXPECT_FALSE(btb.lookup(0x1000).has_value());
    btb.update(0x1000, 0x2000);
    ASSERT_TRUE(btb.lookup(0x1000).has_value());
    EXPECT_EQ(*btb.lookup(0x1000), 0x2000u);
    btb.update(0x1000, 0x3000);
    EXPECT_EQ(*btb.lookup(0x1000), 0x3000u);
}

TEST(Btb, LruEvictionAtCapacity)
{
    Btb btb({2});
    btb.update(0x10, 0x1);
    btb.update(0x20, 0x2);
    btb.lookup(0x10);             // refresh 0x10
    btb.update(0x30, 0x3);        // evicts 0x20
    EXPECT_TRUE(btb.lookup(0x10).has_value());
    EXPECT_FALSE(btb.lookup(0x20).has_value());
    EXPECT_TRUE(btb.lookup(0x30).has_value());
}

TEST(Ras, PushPopOrder)
{
    Ras ras({2});
    ras.push(0x100);
    ras.push(0x200);
    EXPECT_EQ(ras.pop(), 0x200u);
    EXPECT_EQ(ras.pop(), 0x100u);
    EXPECT_FALSE(ras.pop().has_value());
}

TEST(Ras, OverflowsCircularly)
{
    Ras ras({2});
    ras.push(0x1);
    ras.push(0x2);
    ras.push(0x3);  // overwrites 0x1
    EXPECT_EQ(ras.pop(), 0x3u);
    EXPECT_EQ(ras.pop(), 0x2u);
    EXPECT_FALSE(ras.pop().has_value());
}

TEST(BranchUnit, ColdTakenBranchMispredicts)
{
    BranchUnit bu;
    EXPECT_TRUE(bu.condBranch(0x1000, true, 0x2000));
    EXPECT_EQ(bu.stats().condMispredicts, 1u);
}

TEST(BranchUnit, ColdNotTakenBranchPredictsFine)
{
    // Not-taken falls through; a cold BTB cannot redirect, so the
    // default next-line fetch is correct.
    BranchUnit bu;
    EXPECT_FALSE(bu.condBranch(0x1000, false, 0x2000));
}

TEST(BranchUnit, WarmLoopBranchPredicts)
{
    BranchUnit bu;
    int misses = 0;
    for (int i = 0; i < 100; ++i) {
        if (bu.condBranch(0x1000, true, 0x900))
            ++misses;
    }
    EXPECT_LE(misses, 10);  // history warmup + cold BTB only
    EXPECT_EQ(bu.stats().condBranches, 100u);
}

TEST(BranchUnit, DirectJumpTrainsBtb)
{
    BranchUnit bu;
    EXPECT_TRUE(bu.directJump(0x1000, 0x4000, false, 0x1004));
    EXPECT_FALSE(bu.directJump(0x1000, 0x4000, false, 0x1004));
}

TEST(BranchUnit, ReturnUsesRas)
{
    BranchUnit bu;
    // call pushes the return address...
    bu.directJump(0x1000, 0x4000, true, 0x1004);
    // ...so the matching return predicts correctly even when cold.
    EXPECT_FALSE(bu.indirectJump(0x4010, 0x1004, false, true, 0x4014));
    // An unmatched return mispredicts.
    EXPECT_TRUE(bu.indirectJump(0x4020, 0x1004, false, true, 0x4024));
}

TEST(BranchUnit, IndirectJumpLastTargetPrediction)
{
    BranchUnit bu;
    EXPECT_TRUE(bu.indirectJump(0x1000, 0xA000, false, false, 0x1004));
    EXPECT_FALSE(bu.indirectJump(0x1000, 0xA000, false, false, 0x1004));
    // Target change (interpreter dispatch pattern) mispredicts once.
    EXPECT_TRUE(bu.indirectJump(0x1000, 0xB000, false, false, 0x1004));
    EXPECT_FALSE(bu.indirectJump(0x1000, 0xB000, false, false, 0x1004));
}

} // namespace
} // namespace tarch::branch
