// Unit tests for the host-call registry and its interaction with the
// guest (argument passing, heap allocation, cost charging, errors).

#include <gtest/gtest.h>

#include "assembler/assembler.h"
#include "common/log.h"
#include "core/core.h"
#include "vm/runtime.h"

namespace tarch::core {
namespace {

TEST(HostcallRegistry, MetadataAndInvocation)
{
    HostcallRegistry reg;
    int calls = 0;
    reg.add(3, "triple", {10, 20}, [&](HostEnv &env) {
        ++calls;
        env.regs.writeGpr(isa::reg::a0,
                          env.regs.gpr(isa::reg::a0).v * 3);
    });
    EXPECT_TRUE(reg.has(3));
    EXPECT_FALSE(reg.has(4));
    EXPECT_EQ(reg.name(3), "triple");
    EXPECT_EQ(reg.cost(3).instructions, 10u);

    RegFile regs;
    mem::MainMemory memory;
    std::string out;
    uint64_t brk = 0x1000000;
    HostEnv env{regs, memory, out, brk};
    regs.writeGpr(isa::reg::a0, 7);
    reg.invoke(3, env);
    EXPECT_EQ(calls, 1);
    EXPECT_EQ(regs.gpr(isa::reg::a0).v, 21u);
}

TEST(HostcallRegistry, DuplicateAndMissingIdsAreFatal)
{
    HostcallRegistry reg;
    reg.add(1, "a", {}, [](HostEnv &) {});
    EXPECT_THROW(reg.add(1, "b", {}, [](HostEnv &) {}), FatalError);
    EXPECT_THROW(reg.name(9), FatalError);
    EXPECT_THROW(reg.cost(9), FatalError);
}

TEST(Hostcall, GuestWithoutRegistryIsFatal)
{
    Core core;  // no registry
    core.loadProgram(assembler::assemble("hcall 1\nhalt"));
    EXPECT_THROW(core.run(), FatalError);
}

TEST(Hostcall, UnregisteredIdIsFatal)
{
    HostcallRegistry reg;
    reg.add(1, "only", {}, [](HostEnv &) {});
    Core core({}, &reg);
    core.loadProgram(assembler::assemble("hcall 2\nhalt"));
    EXPECT_THROW(core.run(), FatalError);
}

TEST(Hostcall, HeapAllocationIsAlignedAndMonotonic)
{
    Core core;
    const uint64_t a = core.allocHeap(5);
    const uint64_t b = core.allocHeap(16);
    const uint64_t c = core.allocHeap(1);
    EXPECT_EQ(a % 8, 0u);
    EXPECT_EQ(b % 8, 0u);
    EXPECT_GE(b, a + 5);
    EXPECT_GE(c, b + 16);
    EXPECT_EQ(core.heapBreak(), c + 1);
}

TEST(Hostcall, InternerDeduplicatesAndRoundTrips)
{
    Core core;
    vm::Interner interner;
    const uint64_t s1 = interner.intern(core, "hello");
    const uint64_t s2 = interner.intern(core, "hello");
    const uint64_t s3 = interner.intern(core, "world");
    EXPECT_EQ(s1, s2);
    EXPECT_NE(s1, s3);
    EXPECT_EQ(vm::Interner::read(core, s1), "hello");
    EXPECT_EQ(vm::Interner::read(core, s3), "world");
    EXPECT_EQ(core.memory().read64(s1), 5u);  // length field
    const uint64_t empty = interner.intern(core, "");
    EXPECT_EQ(vm::Interner::read(core, empty), "");
}

TEST(Hostcall, ShadowHashStoresPerTableAndKeyKind)
{
    vm::ShadowHash shadow;
    shadow.set(0x100, false, 7, {42, 1});
    shadow.set(0x100, true, 7, {99, 2});   // same key, string space
    shadow.set(0x200, false, 7, {13, 3});  // same key, other table
    EXPECT_EQ(shadow.get(0x100, false, 7).value, 42u);
    EXPECT_EQ(shadow.get(0x100, true, 7).value, 99u);
    EXPECT_EQ(shadow.get(0x200, false, 7).value, 13u);
    EXPECT_EQ(shadow.get(0x300, false, 7).tag, 0);  // miss -> empty
    EXPECT_EQ(shadow.size(), 3u);
}

TEST(Hostcall, CostsChargedPerInvocation)
{
    HostcallRegistry reg;
    reg.add(1, "noop", {7, 13}, [](HostEnv &) {});
    Core core({}, &reg);
    core.loadProgram(assembler::assemble(R"(
        li a1, 10
l:      hcall 1
        addi a1, a1, -1
        bnez a1, l
        halt
    )"));
    core.run();
    const auto stats = core.collectStats();
    EXPECT_EQ(stats.hostcalls, 10u);
    // 10 lumps of 7 instructions on top of the real ones.
    EXPECT_EQ(stats.instructions, 1u + 30u + 1u + 10u * 7u);
    EXPECT_GE(stats.cycles, 10u * 13u);
}

} // namespace
} // namespace tarch::core
