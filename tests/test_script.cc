// Unit tests for the MiniScript front end: lexer and parser.

#include <gtest/gtest.h>

#include "common/log.h"
#include "script/lexer.h"
#include "script/parser.h"

namespace tarch::script {
namespace {

TEST(Lexer, NumbersIntAndFloat)
{
    const auto toks = tokenize("12 0x1F 3.5 1e3 2.5e-2");
    ASSERT_EQ(toks.size(), 6u);  // + Eof
    EXPECT_EQ(toks[0].kind, Tok::Int);
    EXPECT_EQ(toks[0].ival, 12);
    EXPECT_EQ(toks[1].ival, 31);
    EXPECT_EQ(toks[2].kind, Tok::Float);
    EXPECT_DOUBLE_EQ(toks[2].fval, 3.5);
    EXPECT_DOUBLE_EQ(toks[3].fval, 1000.0);
    EXPECT_DOUBLE_EQ(toks[4].fval, 0.025);
}

TEST(Lexer, KeywordsVsNames)
{
    const auto toks = tokenize("if iffy then end ender");
    EXPECT_EQ(toks[0].kind, Tok::If);
    EXPECT_EQ(toks[1].kind, Tok::Name);
    EXPECT_EQ(toks[1].text, "iffy");
    EXPECT_EQ(toks[2].kind, Tok::Then);
    EXPECT_EQ(toks[3].kind, Tok::End);
    EXPECT_EQ(toks[4].text, "ender");
}

TEST(Lexer, OperatorsAndComments)
{
    const auto toks = tokenize("a <= b ~= c // d .. e -- comment\n+ f");
    EXPECT_EQ(toks[1].kind, Tok::Le);
    EXPECT_EQ(toks[3].kind, Tok::Ne);
    EXPECT_EQ(toks[5].kind, Tok::DSlash);
    EXPECT_EQ(toks[7].kind, Tok::Concat);
    EXPECT_EQ(toks[9].kind, Tok::Plus);
    EXPECT_EQ(toks[10].kind, Tok::Name);
}

TEST(Lexer, StringsWithEscapes)
{
    const auto toks = tokenize(R"("a\nb" 'c')");
    EXPECT_EQ(toks[0].kind, Tok::String);
    EXPECT_EQ(toks[0].text, "a\nb");
    EXPECT_EQ(toks[1].text, "c");
}

TEST(Lexer, LineNumbersTracked)
{
    const auto toks = tokenize("a\nb\n\nc");
    EXPECT_EQ(toks[0].line, 1);
    EXPECT_EQ(toks[1].line, 2);
    EXPECT_EQ(toks[2].line, 4);
}

TEST(Lexer, RejectsBadChars)
{
    EXPECT_THROW(tokenize("a @ b"), FatalError);
    EXPECT_THROW(tokenize("\"unterminated"), FatalError);
}

TEST(Parser, FunctionsAndMain)
{
    const Chunk chunk = parse(R"(
function f(a, b) return a + b end
function g() return 1 end
local x = f(1, 2)
print(x)
)");
    ASSERT_EQ(chunk.functions.size(), 2u);
    EXPECT_EQ(chunk.functions[0].name, "f");
    ASSERT_EQ(chunk.functions[0].params.size(), 2u);
    EXPECT_EQ(chunk.functions[0].params[1], "b");
    EXPECT_EQ(chunk.main.size(), 2u);
    EXPECT_EQ(chunk.main[0]->kind, Stmt::Kind::Local);
}

TEST(Parser, PrecedenceMulOverAdd)
{
    const Chunk chunk = parse("x = 1 + 2 * 3");
    const Expr &e = *chunk.main[0]->expr;
    ASSERT_EQ(e.kind, Expr::Kind::Binary);
    EXPECT_EQ(e.binop, BinOp::Add);
    EXPECT_EQ(e.rhs->binop, BinOp::Mul);
}

TEST(Parser, PrecedenceCmpBelowAnd)
{
    const Chunk chunk = parse("x = a < b and c < d");
    const Expr &e = *chunk.main[0]->expr;
    EXPECT_EQ(e.binop, BinOp::And);
    EXPECT_EQ(e.lhs->binop, BinOp::Lt);
    EXPECT_EQ(e.rhs->binop, BinOp::Lt);
}

TEST(Parser, UnaryBindsTighterThanMul)
{
    const Chunk chunk = parse("x = -a * b");
    const Expr &e = *chunk.main[0]->expr;
    EXPECT_EQ(e.binop, BinOp::Mul);
    EXPECT_EQ(e.lhs->kind, Expr::Kind::Unary);
}

TEST(Parser, IndexChainsAndIndexAssign)
{
    const Chunk chunk = parse("t[1][2] = 3\nx = t[i][j]");
    const Stmt &s = *chunk.main[0];
    EXPECT_EQ(s.kind, Stmt::Kind::IndexAssign);
    EXPECT_EQ(s.expr->kind, Expr::Kind::Index);  // target is t[1]
    const Stmt &s2 = *chunk.main[1];
    EXPECT_EQ(s2.expr->kind, Expr::Kind::Index);
    EXPECT_EQ(s2.expr->lhs->kind, Expr::Kind::Index);
}

TEST(Parser, NumericForDefaults)
{
    const Chunk chunk = parse("for i = 1, 10 do print(i) end");
    const Stmt &s = *chunk.main[0];
    EXPECT_EQ(s.kind, Stmt::Kind::NumFor);
    EXPECT_EQ(s.name, "i");
    EXPECT_EQ(s.step, nullptr);
    EXPECT_EQ(s.body.size(), 1u);
}

TEST(Parser, IfElseifElse)
{
    const Chunk chunk = parse(R"(
if a then x = 1
elseif b then x = 2
elseif c then x = 3
else x = 4 end
)");
    const Stmt &s = *chunk.main[0];
    EXPECT_EQ(s.elifs.size(), 2u);
    EXPECT_EQ(s.elseBody.size(), 1u);
}

TEST(Parser, TableConstructor)
{
    const Chunk chunk = parse("t = {1, 2.5, \"x\", a}");
    const Expr &e = *chunk.main[0]->expr;
    EXPECT_EQ(e.kind, Expr::Kind::TableCtor);
    EXPECT_EQ(e.args.size(), 4u);
}

TEST(Parser, CallStatementAndExpr)
{
    const Chunk chunk = parse("foo(1)\nx = bar(2, 3)");
    EXPECT_EQ(chunk.main[0]->kind, Stmt::Kind::ExprStmt);
    EXPECT_EQ(chunk.main[1]->expr->args.size(), 2u);
}

TEST(Parser, SyntaxErrors)
{
    EXPECT_THROW(parse("if a print(1) end"), FatalError);
    EXPECT_THROW(parse("for = 1, 2 do end"), FatalError);
    EXPECT_THROW(parse("x = "), FatalError);
    EXPECT_THROW(parse("function f( end"), FatalError);
}

} // namespace
} // namespace tarch::script
