// Unit tests for the two-pass assembler: labels, directives, pseudo
// expansion, symbolic data, and error reporting.

#include <gtest/gtest.h>

#include "assembler/assembler.h"
#include "common/log.h"
#include "isa/disasm.h"

namespace tarch::assembler {
namespace {

using isa::Opcode;

Program
ok(const std::string &src)
{
    return assemble(src);
}

TEST(Assembler, EmptyProgram)
{
    const Program p = ok("");
    EXPECT_TRUE(p.text.empty());
    EXPECT_TRUE(p.data.empty());
    EXPECT_EQ(p.entry, p.textBase);
}

TEST(Assembler, BasicInstructions)
{
    const Program p = ok(R"(
        add a0, a1, a2
        addi t0, t1, -42
        ld a0, 16(sp)
        sd a1, -8(sp)
        fadd.d f1, f2, f3
    )");
    ASSERT_EQ(p.text.size(), 5u);
    EXPECT_EQ(p.text[0].op, Opcode::ADD);
    EXPECT_EQ(p.text[1].imm, -42);
    EXPECT_EQ(p.text[2].op, Opcode::LD);
    EXPECT_EQ(p.text[2].imm, 16);
    EXPECT_EQ(p.text[3].op, Opcode::SD);
    EXPECT_EQ(p.text[3].imm, -8);
    EXPECT_EQ(p.text[4].op, Opcode::FADD_D);
    EXPECT_EQ(p.text[4].rd, 1);
}

TEST(Assembler, LabelsAndBranches)
{
    const Program p = ok(R"(
loop:
        addi a0, a0, -1
        bnez a0, loop
        beq a0, a1, done
        j loop
done:
        halt
    )");
    ASSERT_EQ(p.text.size(), 5u);
    EXPECT_EQ(p.symbol("loop"), p.textBase);
    // bnez at pc+4 targets loop (pc): imm = -4.
    EXPECT_EQ(p.text[1].op, Opcode::BNE);
    EXPECT_EQ(p.text[1].imm, -4);
    // beq at +8 targets done at +16: imm = +8.
    EXPECT_EQ(p.text[2].imm, 8);
    EXPECT_EQ(p.text[3].op, Opcode::JAL);
    EXPECT_EQ(p.text[3].rd, 0);
    EXPECT_EQ(p.text[3].imm, -12);
}

TEST(Assembler, LiSmallMediumLarge)
{
    const Program p = ok(R"(
        li a0, 5
        li a1, 100000
        li a2, 0x123456789AB
    )");
    // small: 1 instr; medium: lui+addi = 2; large: recursive.
    ASSERT_GE(p.text.size(), 5u);
    EXPECT_EQ(p.text[0].op, Opcode::ADDI);
    EXPECT_EQ(p.text[0].imm, 5);
    EXPECT_EQ(p.text[1].op, Opcode::LUI);
}

TEST(Assembler, LiNegativeMedium)
{
    const Program p = ok("li a0, -100000");
    ASSERT_EQ(p.text.size(), 2u);
    EXPECT_EQ(p.text[0].op, Opcode::LUI);
    // Reconstruct: (imm20 << 12) + lo12 must equal -100000.
    const int64_t value = (p.text[0].imm << 12) + p.text[1].imm;
    EXPECT_EQ(value, -100000);
}

TEST(Assembler, LaUsesSymbolAddress)
{
    const Program p = ok(R"(
        la a0, buf
        halt
        .data
buf:    .dword 7
    )");
    ASSERT_EQ(p.text.size(), 3u);
    const int64_t addr = (p.text[0].imm << 12) + p.text[1].imm;
    EXPECT_EQ(static_cast<uint64_t>(addr), p.symbol("buf"));
    EXPECT_EQ(p.symbol("buf"), p.dataBase);
}

TEST(Assembler, DataDirectives)
{
    const Program p = ok(R"(
        .data
bytes:  .byte 1, 2, 255
half:   .half 0x1234
word:   .word 0xDEADBEEF
        .align 3
dword:  .dword 0x0102030405060708
str:    .asciiz "hi\n"
sp:     .space 4
dbl:    .double 1.5, -2.0
    )");
    EXPECT_EQ(p.data[0], 1);
    EXPECT_EQ(p.data[2], 255);
    const uint64_t dword_off = p.symbol("dword") - p.dataBase;
    EXPECT_EQ(dword_off % 8, 0u);
    EXPECT_EQ(p.data[dword_off], 0x08);
    EXPECT_EQ(p.data[dword_off + 7], 0x01);
    const uint64_t str_off = p.symbol("str") - p.dataBase;
    EXPECT_EQ(p.data[str_off], 'h');
    EXPECT_EQ(p.data[str_off + 2], '\n');
    EXPECT_EQ(p.data[str_off + 3], 0);
    const uint64_t dbl_off = p.symbol("dbl") - p.dataBase;
    double d;
    memcpy(&d, p.data.data() + dbl_off, 8);
    EXPECT_EQ(d, 1.5);
    memcpy(&d, p.data.data() + dbl_off + 8, 8);
    EXPECT_EQ(d, -2.0);
}

TEST(Assembler, SymbolicDataWords)
{
    const Program p = ok(R"(
_start: halt
h1:     nop
        .data
table:  .dword h1, _start, h1+4
    )");
    const uint64_t off = p.symbol("table") - p.dataBase;
    uint64_t v;
    memcpy(&v, p.data.data() + off, 8);
    EXPECT_EQ(v, p.symbol("h1"));
    memcpy(&v, p.data.data() + off + 8, 8);
    EXPECT_EQ(v, p.symbol("_start"));
    memcpy(&v, p.data.data() + off + 16, 8);
    EXPECT_EQ(v, p.symbol("h1") + 4);
}

TEST(Assembler, EntryPoint)
{
    const Program p = ok(R"(
        nop
_start: halt
    )");
    EXPECT_EQ(p.entry, p.textBase + 4);
}

TEST(Assembler, PseudoExpansions)
{
    const Program p = ok(R"(
        nop
        mv a0, a1
        not a0, a1
        neg a0, a1
        seqz a0, a1
        snez a0, a1
        sext.w a0, a1
        jr ra
        ret
        call target
target: halt
    )");
    EXPECT_EQ(p.text[0].op, Opcode::ADDI);
    EXPECT_EQ(p.text[1].op, Opcode::ADDI);
    EXPECT_EQ(p.text[2].op, Opcode::XORI);
    EXPECT_EQ(p.text[2].imm, -1);
    EXPECT_EQ(p.text[3].op, Opcode::SUB);
    EXPECT_EQ(p.text[4].op, Opcode::SLTIU);
    EXPECT_EQ(p.text[5].op, Opcode::SLTU);
    EXPECT_EQ(p.text[6].op, Opcode::ADDIW);
    EXPECT_EQ(p.text[7].op, Opcode::JALR);
    EXPECT_EQ(p.text[8].op, Opcode::JALR);
    EXPECT_EQ(p.text[8].rs1, 1);
    EXPECT_EQ(p.text[9].op, Opcode::JAL);
    EXPECT_EQ(p.text[9].rd, 1);
}

TEST(Assembler, SwappedBranchPseudos)
{
    const Program p = ok(R"(
t:      bgt a0, a1, t
        ble a2, a3, t
        bgtu a4, a5, t
        bleu a6, a7, t
    )");
    EXPECT_EQ(p.text[0].op, Opcode::BLT);
    EXPECT_EQ(p.text[0].rs1, 11);  // swapped: blt a1, a0
    EXPECT_EQ(p.text[0].rs2, 10);
    EXPECT_EQ(p.text[1].op, Opcode::BGE);
    EXPECT_EQ(p.text[2].op, Opcode::BLTU);
    EXPECT_EQ(p.text[3].op, Opcode::BGEU);
}

TEST(Assembler, FpPseudos)
{
    const Program p = ok(R"(
        fmv.d f1, f2
        fneg.d f3, f4
        fabs.d f5, f6
    )");
    EXPECT_EQ(p.text[0].op, Opcode::FSGNJ_D);
    EXPECT_EQ(p.text[0].rs1, 2);
    EXPECT_EQ(p.text[0].rs2, 2);
    EXPECT_EQ(p.text[1].op, Opcode::FSGNJN_D);
    EXPECT_EQ(p.text[2].op, Opcode::FSGNJX_D);
}

TEST(Assembler, TypedInstructions)
{
    const Program p = ok(R"(
_start:
        thdl slow
        tld a0, 0(a1)
        tld a1, 16(a1)
        xadd a0, a0, a1
        tsd a0, 0(a2)
        tchk a0, a1
        tget a3, a0
        tset a3, a0
        setoffset a0
        setmask a0
        setshift a0
        set_trt a0
        flush_trt
        settype a0
        chklb a4, 8(a1)
slow:   halt
    )");
    EXPECT_EQ(p.text[0].op, Opcode::THDL);
    EXPECT_EQ(static_cast<uint64_t>(p.text[0].imm),
              p.symbol("slow") - p.textBase);
    EXPECT_EQ(p.text[1].op, Opcode::TLD);
    EXPECT_EQ(p.text[3].op, Opcode::XADD);
    EXPECT_EQ(p.text[4].op, Opcode::TSD);
    EXPECT_EQ(p.text[5].op, Opcode::TCHK);
    EXPECT_EQ(p.text[14].op, Opcode::CHKLB);
    EXPECT_EQ(p.text[14].imm, 8);
}

TEST(Assembler, EquDefinesConstants)
{
    const Program p = ok(R"(
        .equ SIZE, 24
        li a0, SIZE
    )");
    // li of symbolic constant uses la-form (lui+addi).
    const int64_t v = (p.text[0].imm << 12) + p.text[1].imm;
    EXPECT_EQ(v, 24);
}

TEST(Assembler, CommentsAndBlankLines)
{
    const Program p = ok(R"(
        # full-line comment
        nop  # trailing comment
        nop  // c++ style
    )");
    EXPECT_EQ(p.text.size(), 2u);
}

TEST(AssemblerErrors, UnknownMnemonic)
{
    EXPECT_THROW(ok("frobnicate a0, a1"), FatalError);
}

TEST(AssemblerErrors, UndefinedSymbol)
{
    EXPECT_THROW(ok("j nowhere"), FatalError);
}

TEST(AssemblerErrors, DuplicateLabel)
{
    EXPECT_THROW(ok("a: nop\na: nop"), FatalError);
}

TEST(AssemblerErrors, DataInText)
{
    EXPECT_THROW(ok(".dword 5"), FatalError);
}

TEST(AssemblerErrors, BadRegister)
{
    EXPECT_THROW(ok("add a0, a1, q9"), FatalError);
}

TEST(AssemblerErrors, ImmediateOutOfRange)
{
    EXPECT_THROW(ok("addi a0, a1, 999999"), FatalError);
}

} // namespace
} // namespace tarch::assembler
