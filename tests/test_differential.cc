// Differential property tests: seeded random MiniScript programs are
// executed by the host reference interpreter (src/script/interp.h) and
// by BOTH guest VMs on ALL THREE ISA variants.  Every combination must
// print exactly what the reference semantics dictate.
//
// The main suite drives the full fuzz subsystem (src/fuzz): the
// grammar-driven generator covers functions, tables, strings, nested
// loops, deliberate type-unstable sites and int32-overflow paths, and
// the oracle additionally checks machine-level stats invariants across
// all 12 engine/variant/deopt combinations.  The original narrow
// fixed-skeleton generator is kept below as a fixed-seed regression.

#include <gtest/gtest.h>

#include <random>

#include "common/log.h"
#include "common/strutil.h"
#include "fuzz/oracle.h"
#include "fuzz/progen.h"
#include "script/interp.h"
#include "script/parser.h"
#include "vm/js/js_vm.h"
#include "vm/lua/lua_vm.h"

namespace tarch {
namespace {

class FuzzDifferential : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(FuzzDifferential, OracleCleanOnGeneratedPrograms)
{
    const std::string source = fuzz::generateProgram(GetParam());
    SCOPED_TRACE(source);
    const fuzz::OracleResult result = fuzz::runOracle(source);
    ASSERT_TRUE(result.referenceOk) << result.referenceError;
    for (const fuzz::Divergence &d : result.divergences)
        ADD_FAILURE() << d.describe();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDifferential,
                         ::testing::Range<uint64_t>(0, 12));

// ---------------------------------------------------------------------
// Legacy fixed-skeleton generator, retained as a regression anchor: its
// output for a pinned seed must stay byte-identical across refactors of
// the front end, the compilers and the generated interpreters.

class ProgramGen
{
  public:
    explicit ProgramGen(uint32_t seed) : rng_(seed) {}

    std::string
    generate()
    {
        out_.clear();
        vars_.clear();
        // A helper function over two numeric parameters.
        line("function combine(a, b)");
        line("  if a < b then return a + b * 2 end");
        line("  return a - b");
        line("end");
        // Numeric locals.
        const int nvars = 3 + pick(3);
        for (int i = 0; i < nvars; ++i) {
            const std::string name = strformat("v%d", i);
            if (pick(3) == 0)
                line("local " + name + " = " +
                     strformat("%d.5", pick(9)));
            else
                line("local " + name + " = " +
                     strformat("%d", pick(21)));
            vars_.push_back(name);
        }
        // A table filled with expressions.
        line("local t = {}");
        const int fills = 2 + pick(4);
        for (int i = 0; i < fills; ++i)
            line(strformat("t[%d] = ", i + 1) + expr(2));
        // An accumulation loop.
        line("local acc = 0");
        line(strformat("for i = 1, %d do", 5 + pick(20)));
        line("  acc = acc + " + expr(2));
        line(strformat("  if acc > %d then break end", 100000 + pick(5000)));
        line("end");
        vars_.push_back("acc");
        // A while loop with a counter.
        line("local w = 0");
        line(strformat("local limit = %d", 3 + pick(8)));
        line("while w < limit do");
        line("  w = w + 1");
        line("end");
        vars_.push_back("w");
        // Prints: expressions, comparisons, table reads, calls, strings.
        const int prints = 4 + pick(5);
        for (int i = 0; i < prints; ++i) {
            switch (pick(6)) {
              case 0:
                line("print(" + expr(3) + ")");
                break;
              case 1:
                line(strformat("print(t[%d])", 1 + pick(fills + 2)));
                break;
              case 2:
                line("print(" + expr(2) + " < " + expr(2) + ")");
                break;
              case 3:
                line("print(combine(" + expr(1) + ", " + expr(1) + "))");
                break;
              case 4:
                line("print(\"x=\" .. " + expr(1) + ")");
                break;
              default:
                line("print((" + expr(2) + " == " + expr(2) +
                     ") and 1 or 2)");
                break;
            }
        }
        line("print(acc)");
        line("print(w)");
        return out_;
    }

  private:
    int pick(int n) { return static_cast<int>(rng_() % n); }

    void
    line(const std::string &text)
    {
        out_ += text;
        out_ += '\n';
    }

    /** A depth-bounded numeric expression over locals and literals. */
    std::string
    expr(int depth)
    {
        if (depth == 0 || pick(3) == 0) {
            switch (pick(4)) {
              case 0: return strformat("%d", pick(20));
              case 1: return strformat("%d.25", pick(8));
              case 2: return "-" + strformat("%d", 1 + pick(12));
              default:
                return vars_.empty()
                           ? strformat("%d", pick(20))
                           : vars_[pick(static_cast<int>(vars_.size()))];
            }
        }
        const char *ops[] = {"+", "-", "*", "+", "-"};
        switch (pick(8)) {
          case 0:  // floored division by a nonzero literal
            return "(" + expr(depth - 1) + strformat(" // %d)",
                                                     1 + pick(9));
          case 1:  // floored modulo by a nonzero literal
            return "(" + expr(depth - 1) + strformat(" %% %d)",
                                                     1 + pick(9));
          case 2:  // float division by a nonzero literal
            return "(" + expr(depth - 1) + strformat(" / %d)",
                                                     1 + pick(7));
          default:
            return "(" + expr(depth - 1) + " " + ops[pick(5)] + " " +
                   expr(depth - 1) + ")";
        }
    }

    std::mt19937 rng_;
    std::string out_;
    std::vector<std::string> vars_;
};

class LegacyDifferential : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(LegacyDifferential, AllEnginesAndVariantsMatchReference)
{
    ProgramGen gen(GetParam());
    const std::string source = gen.generate();
    SCOPED_TRACE(source);

    const script::Chunk chunk = script::parse(source);
    const std::string expected_lua =
        script::interpret(chunk, script::NumberStyle::Lua);
    const std::string expected_js =
        script::interpret(chunk, script::NumberStyle::Js);

    for (const vm::Variant variant :
         {vm::Variant::Baseline, vm::Variant::Typed,
          vm::Variant::CheckedLoad}) {
        {
            vm::lua::LuaVm::Options opts;
            opts.variant = variant;
            vm::lua::LuaVm lua(source, opts);
            lua.run();
            EXPECT_EQ(lua.output(), expected_lua)
                << "MiniLua/" << vm::variantName(variant);
        }
        {
            vm::js::JsVm::Options opts;
            opts.variant = variant;
            vm::js::JsVm js(source, opts);
            js.run();
            EXPECT_EQ(js.output(), expected_js)
                << "MiniJS/" << vm::variantName(variant);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(FixedSeeds, LegacyDifferential,
                         ::testing::Range(1u, 4u));

TEST(ReferenceInterp, BasicSemantics)
{
    const script::Chunk chunk = script::parse(R"(
local x = 7
print(x // 2)
print(-7 % 3)
print(1.5 + 1)
print(#"abc")
print(nil)
)");
    EXPECT_EQ(script::interpret(chunk, script::NumberStyle::Lua),
              "3\n2\n2.5\n3\nnil\n");
    EXPECT_EQ(script::interpret(chunk, script::NumberStyle::Js),
              "3\n2\n2.5\n3\nundefined\n");
}

TEST(ReferenceInterp, StepLimitGuards)
{
    const script::Chunk chunk = script::parse("while true do end");
    EXPECT_THROW(
        script::interpret(chunk, script::NumberStyle::Lua, 10'000),
        FatalError);
}

} // namespace
} // namespace tarch
