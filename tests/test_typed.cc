// Unit tests for the Typed Architecture structures: Type Rule Table CAM
// and the reconfigurable tag extract/insert codec, including the exact
// Lua and SpiderMonkey configurations from paper Table 4.

#include <gtest/gtest.h>

#include "common/log.h"
#include "typed/tag_codec.h"
#include "typed/type_rule_table.h"

namespace tarch::typed {
namespace {

// Paper Section 4.1 / 4.2 tag values.
constexpr uint8_t kLuaInt = 0x13;          // LUA_TNUMINT = 19
constexpr uint8_t kLuaFlt = 0x83;          // LUA_TNUMFLT=3 with F/I MSB
constexpr uint8_t kJsInt = 0x1;

TEST(TypeRuleTable, HitReturnsOutputTag)
{
    TypeRuleTable trt(8);
    trt.push({RuleOp::Add, kLuaInt, kLuaInt, kLuaInt});
    trt.push({RuleOp::Add, kLuaFlt, kLuaFlt, kLuaFlt});
    EXPECT_EQ(trt.lookup(RuleOp::Add, kLuaInt, kLuaInt), kLuaInt);
    EXPECT_EQ(trt.lookup(RuleOp::Add, kLuaFlt, kLuaFlt), kLuaFlt);
    EXPECT_FALSE(trt.lookup(RuleOp::Add, kLuaInt, kLuaFlt).has_value());
    EXPECT_FALSE(trt.lookup(RuleOp::Sub, kLuaInt, kLuaInt).has_value());
    EXPECT_EQ(trt.stats().lookups, 4u);
    EXPECT_EQ(trt.stats().hits, 2u);
    EXPECT_EQ(trt.stats().misses(), 2u);
}

TEST(TypeRuleTable, CapacityEnforced)
{
    TypeRuleTable trt(2);
    trt.push({RuleOp::Add, 1, 1, 1});
    trt.push({RuleOp::Sub, 1, 1, 1});
    EXPECT_THROW(trt.push({RuleOp::Mul, 1, 1, 1}), tarch::FatalError);
}

TEST(TypeRuleTable, FlushEmptiesTable)
{
    TypeRuleTable trt(8);
    trt.push({RuleOp::Add, 1, 1, 1});
    trt.flush();
    EXPECT_EQ(trt.size(), 0u);
    EXPECT_FALSE(trt.lookup(RuleOp::Add, 1, 1).has_value());
}

TEST(TypeRuleTable, EncodedRoundTrip)
{
    TypeRuleTable trt(8);
    const TypeRule rule{RuleOp::Chk, 0x05, 0x13, 0x05};
    trt.pushEncoded(TypeRuleTable::encode(rule));
    EXPECT_EQ(trt.lookup(RuleOp::Chk, 0x05, 0x13), 0x05);
}

// ---------------------------------------------------------------------
// Lua layout (Table 4): R_offset=0b001 (next dword), shift=0, mask=0xFF.

TagConfig
luaConfig()
{
    return TagConfig{0b001, 0, 0xFF};
}

TEST(TagCodec, LuaExtractIntAndFloat)
{
    const TagConfig cfg = luaConfig();
    EXPECT_FALSE(cfg.nanDetect());
    EXPECT_EQ(cfg.tagDwordOffset(), 8);

    const auto e1 = TagCodec::extract(cfg, 42, kLuaInt);
    EXPECT_EQ(e1.value, 42u);
    EXPECT_EQ(e1.tag, kLuaInt);
    EXPECT_FALSE(e1.fp);

    double pi = 3.14;
    uint64_t pi_bits;
    memcpy(&pi_bits, &pi, 8);
    const auto e2 = TagCodec::extract(cfg, pi_bits, kLuaFlt);
    EXPECT_EQ(e2.value, pi_bits);
    EXPECT_EQ(e2.tag, kLuaFlt);
    EXPECT_TRUE(e2.fp);  // MSB of tag doubles as F/I
}

TEST(TagCodec, LuaInsertWritesAdjacentTagDword)
{
    const TagConfig cfg = luaConfig();
    const auto ins = TagCodec::insert(cfg, 42, kLuaInt, false);
    EXPECT_EQ(ins.valueDword, 42u);
    EXPECT_TRUE(ins.writesTagDword);
    EXPECT_EQ(ins.tagDword, kLuaInt);
}

TEST(TagCodec, LuaPrevDwordOffset)
{
    TagConfig cfg{0b011, 0, 0xFF};
    EXPECT_EQ(cfg.tagDwordOffset(), -8);
}

// ---------------------------------------------------------------------
// SpiderMonkey layout (Table 4): R_offset=0b100 (NaN detect, same dword),
// shift=47, mask=0x0F.

TagConfig
jsConfig()
{
    return TagConfig{0b100, 47, 0x0F};
}

uint64_t
boxInt(int32_t v, uint8_t tag = kJsInt)
{
    return (0x1FFFULL << 51) | (static_cast<uint64_t>(tag) << 47) |
           static_cast<uint32_t>(v);
}

TEST(TagCodec, NanBoxDetector)
{
    EXPECT_TRUE(TagCodec::isNanBoxed(boxInt(5)));
    double d = 1.0;
    uint64_t bits;
    memcpy(&bits, &d, 8);
    EXPECT_FALSE(TagCodec::isNanBoxed(bits));
    // Canonical positive qNaN is not detected as a box.
    EXPECT_FALSE(TagCodec::isNanBoxed(0x7FF8000000000000ULL));
    // Negative infinity is not a box either (tag bits would be 0).
    EXPECT_FALSE(TagCodec::isNanBoxed(0xFFF0000000000000ULL));
}

TEST(TagCodec, JsExtractBoxedInt)
{
    const auto e = TagCodec::extract(jsConfig(), boxInt(123), boxInt(123));
    EXPECT_EQ(e.tag, kJsInt);
    EXPECT_FALSE(e.fp);
    EXPECT_EQ(e.value, 123u);
}

TEST(TagCodec, JsExtractNegativeIntPayload)
{
    const auto e = TagCodec::extract(jsConfig(), boxInt(-7), boxInt(-7));
    EXPECT_EQ(e.tag, kJsInt);
    EXPECT_EQ(static_cast<uint32_t>(e.value), static_cast<uint32_t>(-7));
}

TEST(TagCodec, JsExtractPlainDouble)
{
    double d = 2.5;
    uint64_t bits;
    memcpy(&bits, &d, 8);
    const auto e = TagCodec::extract(jsConfig(), bits, bits);
    EXPECT_EQ(e.tag, kFloatTag);
    EXPECT_TRUE(e.fp);
    EXPECT_EQ(e.value, bits);
}

TEST(TagCodec, JsInsertReboxesInt)
{
    const auto ins = TagCodec::insert(jsConfig(),
                                      static_cast<uint32_t>(-7), kJsInt,
                                      false);
    EXPECT_FALSE(ins.writesTagDword);
    EXPECT_EQ(ins.valueDword, boxInt(-7));
}

TEST(TagCodec, JsInsertPassesDoubleThrough)
{
    double d = -0.125;
    uint64_t bits;
    memcpy(&bits, &d, 8);
    const auto ins = TagCodec::insert(jsConfig(), bits, kFloatTag, true);
    EXPECT_EQ(ins.valueDword, bits);
}

TEST(TagCodec, JsRoundTripExtractInsert)
{
    // Property: extract(insert(x)) is the identity for boxed values.
    const TagConfig cfg = jsConfig();
    for (int32_t v : {0, 1, -1, 12345, -12345, INT32_MAX, INT32_MIN}) {
        for (uint8_t tag : {1, 2, 3, 5, 6}) {
            const auto ins =
                TagCodec::insert(cfg, static_cast<uint32_t>(v), tag, false);
            const auto ext =
                TagCodec::extract(cfg, ins.valueDword, ins.valueDword);
            EXPECT_EQ(ext.tag, tag);
            EXPECT_EQ(static_cast<uint32_t>(ext.value),
                      static_cast<uint32_t>(v));
        }
    }
}

TEST(TagCodec, SameDwordInsertMergesField)
{
    // Same-dword layout without NaN detection: tag field is merged into
    // the value word.
    TagConfig cfg{0b000, 56, 0xFF};
    const auto ins = TagCodec::insert(cfg, 0x00FFFFFFFFFFFFFFULL, 0xAB,
                                      false);
    EXPECT_FALSE(ins.writesTagDword);
    EXPECT_EQ(ins.valueDword >> 56, 0xABu);
    const auto ext = TagCodec::extract(cfg, ins.valueDword, ins.valueDword);
    EXPECT_EQ(ext.tag, 0xABu);
}

} // namespace
} // namespace tarch::typed
