// Structural tests of the interpreter generators: every variant of both
// engines assembles cleanly, exposes its marker symbols, and uses
// exactly the ISA features its variant is allowed to use in the hot
// handlers (paper Table 3).

#include <gtest/gtest.h>

#include "assembler/assembler.h"
#include "vm/image.h"
#include "vm/js/interp_gen.h"
#include "vm/lua/interp_gen.h"

namespace tarch::vm {
namespace {

struct GenCase {
    bool js;
    Variant variant;
};

class InterpGen : public ::testing::TestWithParam<GenCase>
{
  protected:
    std::string
    generate(std::vector<std::pair<std::string, std::string>> *markers =
                 nullptr)
    {
        const GuestLayout layout;
        if (GetParam().js) {
            auto result = js::generateInterp(GetParam().variant, layout,
                                             layout.code, layout.consts,
                                             4);
            if (markers)
                *markers = result.markers;
            return result.asmText;
        }
        auto result = lua::generateInterp(GetParam().variant, layout,
                                          layout.code, layout.consts);
        if (markers)
            *markers = result.markers;
        return result.asmText;
    }
};

TEST_P(InterpGen, AssemblesAndResolvesAllMarkers)
{
    std::vector<std::pair<std::string, std::string>> markers;
    const std::string text = generate(&markers);
    assembler::AsmOptions opts;
    opts.textBase = GuestLayout{}.interpText;
    opts.dataBase = GuestLayout{}.interpData;
    const assembler::Program program = assembler::assemble(text, opts);
    EXPECT_GT(program.text.size(), 300u);
    EXPECT_FALSE(markers.empty());
    for (const auto &[symbol, name] : markers) {
        EXPECT_NO_THROW(program.symbol(symbol)) << symbol << " / " << name;
    }
    // Entry point and exit are present.
    EXPECT_NO_THROW(program.symbol("_start"));
    EXPECT_NO_THROW(program.symbol("vm_exit"));
    EXPECT_NO_THROW(program.symbol("dispatch"));
}

TEST_P(InterpGen, HotHandlersUseOnlyTheirVariantsFeatures)
{
    const std::string text = generate();
    const bool has_xadd = text.find("xadd") != std::string::npos;
    const bool has_tld = text.find("tld ") != std::string::npos;
    const bool has_chk = text.find("chklb") != std::string::npos ||
                         text.find("chkld") != std::string::npos;
    const bool has_trt = text.find("set_trt") != std::string::npos;
    const bool has_thdl = text.find("thdl") != std::string::npos;
    switch (GetParam().variant) {
      case Variant::Baseline:
        EXPECT_FALSE(has_xadd);
        EXPECT_FALSE(has_tld);
        EXPECT_FALSE(has_chk);
        EXPECT_FALSE(has_trt);
        EXPECT_FALSE(has_thdl);
        break;
      case Variant::Typed:
        EXPECT_TRUE(has_xadd);
        EXPECT_TRUE(has_tld);
        EXPECT_TRUE(has_trt);
        EXPECT_TRUE(has_thdl);
        EXPECT_FALSE(has_chk);
        break;
      case Variant::CheckedLoad:
        EXPECT_TRUE(has_chk);
        EXPECT_TRUE(has_thdl);  // chklb redirects through R_hdl
        EXPECT_FALSE(has_xadd);
        EXPECT_FALSE(has_tld);
        EXPECT_FALSE(has_trt);
        break;
    }
}

TEST_P(InterpGen, TypedVariantMatchesPaperFigure3Shape)
{
    if (GetParam().variant != Variant::Typed)
        GTEST_SKIP();
    const std::string text = generate();
    // The transformed ADD: thdl slow_add; tld; tld; xadd; tsd (Fig. 3).
    const size_t add = text.find("op_add:");
    const size_t next = text.find("slow_add:");
    ASSERT_NE(add, std::string::npos);
    ASSERT_NE(next, std::string::npos);
    const std::string body = text.substr(add, next - add);
    EXPECT_NE(body.find("thdl slow_add"), std::string::npos);
    EXPECT_NE(body.find("xadd"), std::string::npos);
    EXPECT_NE(body.find("tsd"), std::string::npos);
    // And no software tag loads in the fast path.
    EXPECT_EQ(body.find("lbu"), std::string::npos);
}

TEST_P(InterpGen, SlowPathsExistForAllFiveHotBytecodes)
{
    const std::string text = generate();
    const bool js = GetParam().js;
    const char *lua_ops[] = {"slow_add:", "slow_sub:", "slow_mul:",
                             "slow_gettable:", "slow_settable:"};
    const char *js_ops[] = {"slow_add:", "slow_sub:", "slow_mul:",
                            "slow_getelem:", "slow_setelem:"};
    for (const char *label : (js ? js_ops : lua_ops))
        EXPECT_NE(text.find(label), std::string::npos) << label;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, InterpGen,
    ::testing::Values(GenCase{false, Variant::Baseline},
                      GenCase{false, Variant::Typed},
                      GenCase{false, Variant::CheckedLoad},
                      GenCase{true, Variant::Baseline},
                      GenCase{true, Variant::Typed},
                      GenCase{true, Variant::CheckedLoad}),
    [](const auto &info) {
        std::string name = info.param.js ? "Js" : "Lua";
        switch (info.param.variant) {
          case Variant::Baseline: return name + "Baseline";
          case Variant::Typed: return name + "Typed";
          default: return name + "CheckedLoad";
        }
    });

} // namespace
} // namespace tarch::vm
