// Tests for the Section 5 "OS interactions" support: the typed machine
// state (special registers, TRT contents, per-register tags) survives a
// save/clobber/restore cycle, so two typed processes can be interleaved
// by an OS.

#include <gtest/gtest.h>

#include "assembler/assembler.h"
#include "common/log.h"
#include "core/core.h"

namespace tarch::core {
namespace {

// A "process" that configures the Lua layout and loads typed operands.
const char *kProcessA = R"(
        li t0, 1
        setoffset t0
        li t0, 0
        setshift t0
        li t0, 255
        setmask t0
        li t0, 0x00131313     # (xadd, Int, Int) -> Int
        set_trt t0
        thdl slow_a
        la a1, slot
        tld a2, 0(a1)         # a2 = {30, Int}
        halt
slow_a: halt
        .data
slot:   .dword 30
        .dword 0x13
)";

// A different "process": NaN-box layout, different rules, other tags.
const char *kProcessB = R"(
        flush_trt
        li t0, 4              # NaN detect
        setoffset t0
        li t0, 47
        setshift t0
        li t0, 0x0F
        setmask t0
        li t0, 0x00020202     # (xadd, 2, 2) -> 2
        set_trt t0
        li t0, 0x00FFFFFF
        set_trt t0
        thdl slow_b
        li a2, 999            # clobber a2 with an untyped value
        halt
slow_b: halt
)";

// Process A resumes: the xadd must still hit with the restored state.
const char *kResumeA = R"(
        thdl slow_r
        xadd a3, a2, a2
        li a0, 1
        halt
slow_r: li a0, 0
        halt
)";

TEST(ContextSwitch, TypedStateSurvivesSaveRestore)
{
    Core core;
    core.loadProgram(assembler::assemble(kProcessA));
    core.run();
    ASSERT_EQ(core.regs().gpr(isa::reg::a2).t, 0x13);
    ASSERT_EQ(core.trt().size(), 1u);

    // OS switches away from process A...
    const TypedContext saved = core.saveTypedContext();
    EXPECT_EQ(saved.trtRules.size(), 1u);
    EXPECT_EQ(saved.tags[isa::reg::a2], 0x13);
    EXPECT_EQ(saved.state.tagConfig.offset, 1);

    // ...process B runs and reconfigures everything...
    core.loadProgram(assembler::assemble(kProcessB));
    core.setPc(0x1000);
    core.run();
    EXPECT_EQ(core.trt().size(), 2u);
    EXPECT_TRUE(core.typedState().tagConfig.nanDetect());
    EXPECT_EQ(core.regs().gpr(isa::reg::a2).t, typed::kUntypedTag);

    // ...and the OS restores process A's typed context.
    core.restoreTypedContext(saved);
    EXPECT_EQ(core.trt().size(), 1u);
    EXPECT_FALSE(core.typedState().tagConfig.nanDetect());
    EXPECT_EQ(core.regs().gpr(isa::reg::a2).t, 0x13);
    // Note: the *value* of a2 is ordinary architectural state the OS
    // saves through the normal register file; we restore it here.
    core.regs().writeGprTagged(isa::reg::a2, 30, 0x13, false);

    core.loadProgram(assembler::assemble(kResumeA));
    // loadProgram rebuilt memory/text; typed state is untouched by it,
    // but re-apply the restored context to mimic the OS resume order.
    core.restoreTypedContext(saved);
    core.regs().writeGprTagged(isa::reg::a2, 30, 0x13, false);
    core.setPc(0x1000);
    core.run();
    EXPECT_EQ(core.regs().gpr(isa::reg::a0).v, 1u)
        << "xadd should have hit the restored TRT";
    EXPECT_EQ(core.regs().gpr(isa::reg::a3).v, 60u);
    EXPECT_EQ(core.regs().gpr(isa::reg::a3).t, 0x13);
}

TEST(ContextSwitch, RestoreRespectsTrtCapacity)
{
    Core core;
    TypedContext ctx;
    for (int i = 0; i < 8; ++i)
        ctx.trtRules.push_back(
            {typed::RuleOp::Add, static_cast<uint8_t>(i),
             static_cast<uint8_t>(i), static_cast<uint8_t>(i)});
    core.restoreTypedContext(ctx);  // exactly at capacity: fine
    EXPECT_EQ(core.trt().size(), 8u);

    ctx.trtRules.push_back({typed::RuleOp::Add, 9, 9, 9});
    EXPECT_THROW(core.restoreTypedContext(ctx), tarch::FatalError);
}

TEST(ContextSwitch, SavedHandlerAndSettypeRegisters)
{
    Core core;
    core.loadProgram(assembler::assemble(R"(
        thdl target
        li t0, 0x42
        settype t0
target: halt
    )"));
    core.run();
    const TypedContext ctx = core.saveTypedContext();
    EXPECT_EQ(ctx.state.rhdl, 0x1000u + 12u);
    EXPECT_EQ(ctx.state.chklbExpectedType, 0x42u);
}

} // namespace
} // namespace tarch::core
