// Tests for the observability layer (src/obs/): probe-bus neutrality
// (attaching sinks never changes the measured stats), exact cycle
// attribution, the interval sampler's boundary semantics, the Chrome
// trace and stats-JSON exporters, tracer label annotations, and the
// hostcall region-accounting fix in Markers.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <string>

#include "assembler/assembler.h"
#include "common/log.h"
#include "core/core.h"
#include "core/hostcall.h"
#include "core/trace.h"
#include "fuzz/oracle.h"
#include "obs/json.h"
#include "obs/sampler.h"
#include "obs/session.h"
#include "vm/js/js_vm.h"
#include "vm/lua/lua_vm.h"

namespace tarch::obs {
namespace {

const char *kMixedLoop = R"(
local s = 0.0
for i = 1, 500 do s = s + i end
print(s)
)";

/** All 26 counters as one comparable string (plus derived rates, which
    are functions of the counters). */
std::string
statsKey(const core::CoreStats &stats)
{
    return statsToJson(stats);
}

core::CoreStats
runLua(const std::string &src, vm::Variant variant,
       const SessionConfig &obs, Artifacts *artifacts = nullptr)
{
    vm::lua::LuaVm::Options opts;
    opts.variant = variant;
    vm::lua::LuaVm vm(src, opts);
    Session session(vm.core(), obs);
    vm.run();
    const Artifacts rendered = session.finish();
    if (artifacts)
        *artifacts = rendered;
    return vm.core().collectStats();
}

// ---------------------------------------------------------------------
// Probe-bus neutrality: the acceptance criterion that instrumentation
// never changes what is measured.

TEST(ProbeBus, NoSinksMeansInactive)
{
    ProbeBus bus;
    EXPECT_FALSE(bus.active());
    Sink *sink = nullptr;
    struct Counter : Sink {
        int n = 0;
        void onEvent(const Event &) override { ++n; }
    } counter;
    sink = &counter;
    bus.attach(sink);
    EXPECT_TRUE(bus.active());
    bus.emit({EventKind::Retire, 0, 1, 0, 0});
    bus.detach(sink);
    EXPECT_FALSE(bus.active());
    EXPECT_EQ(counter.n, 1);
}

TEST(Obs, AttachedSinksLeaveAllCountersBitIdentical)
{
    SessionConfig everything;
    everything.profile = true;
    everything.chromeTrace = true;
    everything.intervalCycles = 1000;
    everything.statsJson = true;
    for (const vm::Variant variant :
         {vm::Variant::Baseline, vm::Variant::Typed,
          vm::Variant::CheckedLoad}) {
        const core::CoreStats plain =
            runLua(kMixedLoop, variant, SessionConfig{});
        const core::CoreStats instrumented =
            runLua(kMixedLoop, variant, everything);
        EXPECT_EQ(statsKey(plain), statsKey(instrumented))
            << "variant " << static_cast<int>(variant);
    }
}

TEST(Obs, AttachedSinksLeaveJsStatsBitIdentical)
{
    SessionConfig everything;
    everything.profile = true;
    everything.chromeTrace = true;
    everything.intervalCycles = 500;
    everything.statsJson = true;

    vm::js::JsVm::Options opts;
    opts.variant = vm::Variant::Typed;
    vm::js::JsVm plain(kMixedLoop, opts);
    plain.run();

    vm::js::JsVm vm(kMixedLoop, opts);
    Session session(vm.core(), everything);
    vm.run();
    session.finish();

    EXPECT_EQ(statsKey(plain.core().collectStats()),
              statsKey(vm.core().collectStats()));
}

// ---------------------------------------------------------------------
// Profiler attribution: exact by construction.

TEST(Profiler, RegionAndLabelCyclesSumToCoreCycles)
{
    vm::lua::LuaVm::Options opts;
    opts.variant = vm::Variant::Typed;
    vm::lua::LuaVm vm(kMixedLoop, opts);
    SessionConfig cfg;
    cfg.profile = true;
    Session session(vm.core(), cfg);
    vm.run();
    const core::CoreStats stats = vm.core().collectStats();

    const Profiler &prof = *session.profiler();
    uint64_t region_cycles = 0;
    uint64_t region_instrs = 0;
    for (const auto &[region, bucket] : prof.byRegion()) {
        region_cycles += bucket.cycles;
        region_instrs += bucket.instructions;
    }
    uint64_t label_cycles = 0;
    for (const auto &[label, bucket] : prof.byLabel())
        label_cycles += bucket.cycles;

    EXPECT_EQ(region_cycles, stats.cycles);
    EXPECT_EQ(label_cycles, stats.cycles);
    EXPECT_EQ(region_instrs, stats.instructions);
    EXPECT_EQ(prof.totalCycles(), stats.cycles);
    EXPECT_EQ(prof.totalInstructions(), stats.instructions);

    const Artifacts artifacts = session.finish();
    EXPECT_NE(artifacts.profileByHandler.find("cycles"), std::string::npos);
    EXPECT_NE(artifacts.profileFlat.find("cycles"), std::string::npos);
}

// ---------------------------------------------------------------------
// Chrome trace exporter.

TEST(ChromeTrace, ValidJsonWithSpansAndInstants)
{
    SessionConfig cfg;
    cfg.chromeTrace = true;
    Artifacts artifacts;
    runLua(kMixedLoop, vm::Variant::Typed, cfg, &artifacts);

    std::string error;
    EXPECT_TRUE(jsonWellFormed(artifacts.traceJson, &error)) << error;
    // Duration spans for handler regions and instant events (hostcalls
    // fire on every run; TRT misses on the mixed-type loop).
    EXPECT_NE(artifacts.traceJson.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(artifacts.traceJson.find("\"ph\":\"i\""), std::string::npos);
}

// ---------------------------------------------------------------------
// Stats JSON dump: schema gate + exact round-trip.

TEST(StatsJson, RoundTripsExactly)
{
    core::CoreStats stats;
    stats.instructions = 12345678901234567ULL;  // > 2^53: doubles lose it
    stats.cycles = 98765432109876543ULL;
    stats.loads = 7;
    stats.trt.lookups = 11;
    stats.trt.hits = 9;
    stats.hostcalls = 3;

    core::CoreStats back;
    std::string error;
    ASSERT_TRUE(statsFromJson(statsToJson(stats), back, &error)) << error;
    EXPECT_EQ(statsKey(stats), statsKey(back));
}

TEST(StatsJson, SchemaGateRejectsWrongVersion)
{
    std::string dump = statsToJson(core::CoreStats{});
    const size_t pos = dump.find(kStatsSchema);
    ASSERT_NE(pos, std::string::npos);
    dump.replace(pos, std::string(kStatsSchema).size(), "tarch-stats-v0");
    core::CoreStats back;
    std::string error;
    EXPECT_FALSE(statsFromJson(dump, back, &error));
    EXPECT_NE(error.find("schema"), std::string::npos);
}

TEST(StatsJson, RejectsMissingCounter)
{
    std::string dump = statsToJson(core::CoreStats{});
    const size_t pos = dump.find("\"loads\"");
    ASSERT_NE(pos, std::string::npos);
    dump.replace(pos, 7, "\"lauds\"");
    core::CoreStats back;
    EXPECT_FALSE(statsFromJson(dump, back, nullptr));
}

TEST(StatsJson, RejectsMalformedDocument)
{
    core::CoreStats back;
    std::string error;
    EXPECT_FALSE(statsFromJson("{\"schema\":", back, &error));
    EXPECT_FALSE(statsFromJson("", back, &error));
}

// ---------------------------------------------------------------------
// Interval sampler: boundary semantics pinned by the header comment.

/** A sampler driven by synthetic retires whose "stats" count events. */
struct SyntheticFeed {
    core::CoreStats stats;
    uint64_t cycle = 0;

    IntervalSampler
    makeSampler(uint64_t interval)
    {
        return IntervalSampler([this] { return stats; }, interval);
    }

    void
    retire(IntervalSampler &sampler, uint64_t at_cycle)
    {
        cycle = at_cycle;
        ++stats.instructions;
        stats.cycles = at_cycle;
        sampler.onEvent({EventKind::Retire, 0x1000, at_cycle, 0, 0});
    }
};

TEST(IntervalSampler, RunShorterThanOneIntervalYieldsOneFinalSample)
{
    SyntheticFeed feed;
    IntervalSampler sampler = feed.makeSampler(1'000'000);
    feed.retire(sampler, 3);
    feed.retire(sampler, 9);
    EXPECT_TRUE(sampler.samples().empty());
    sampler.finish();
    ASSERT_EQ(sampler.samples().size(), 1u);
    EXPECT_EQ(sampler.samples()[0].cycle, 9u);
    EXPECT_EQ(sampler.samples()[0].delta.instructions, 2u);
}

TEST(IntervalSampler, RunEndingExactlyOnBoundaryAddsNoExtraSample)
{
    SyntheticFeed feed;
    IntervalSampler sampler = feed.makeSampler(10);
    feed.retire(sampler, 4);
    feed.retire(sampler, 10);  // closes the [0,10] sample
    ASSERT_EQ(sampler.samples().size(), 1u);
    sampler.finish();
    EXPECT_EQ(sampler.samples().size(), 1u);
    EXPECT_EQ(sampler.samples()[0].cycle, 10u);
    EXPECT_EQ(sampler.samples()[0].delta.instructions, 2u);
}

TEST(IntervalSampler, IntervalOfOneCycleSamplesEveryRetire)
{
    SyntheticFeed feed;
    IntervalSampler sampler = feed.makeSampler(1);
    feed.retire(sampler, 1);
    feed.retire(sampler, 2);
    feed.retire(sampler, 5);  // multi-cycle stride across boundaries
    feed.retire(sampler, 6);
    sampler.finish();
    ASSERT_EQ(sampler.samples().size(), 4u);
    for (const IntervalSampler::Sample &s : sampler.samples())
        EXPECT_EQ(s.delta.instructions, 1u);
}

TEST(IntervalSampler, MultiCycleInstructionStridesSeveralBoundaries)
{
    SyntheticFeed feed;
    IntervalSampler sampler = feed.makeSampler(10);
    feed.retire(sampler, 35);  // crosses boundaries 10, 20, 30 at once
    ASSERT_EQ(sampler.samples().size(), 1u);
    EXPECT_EQ(sampler.samples()[0].cycle, 35u);
    feed.retire(sampler, 39);
    EXPECT_EQ(sampler.samples().size(), 1u);  // next boundary is 40
    feed.retire(sampler, 41);
    EXPECT_EQ(sampler.samples().size(), 2u);
}

TEST(IntervalSampler, DeltasSumExactlyToFinalAggregate)
{
    vm::lua::LuaVm vm(kMixedLoop);
    SessionConfig cfg;
    cfg.intervalCycles = 997;  // odd interval: exercise partial tail
    Session session(vm.core(), cfg);
    vm.run();
    const IntervalSampler &sampler = *session.sampler();
    const_cast<IntervalSampler &>(sampler).finish();
    const core::CoreStats final_stats = vm.core().collectStats();

    ASSERT_FALSE(sampler.samples().empty());
    core::CoreStats sum;
    for (const IntervalSampler::Sample &s : sampler.samples()) {
        const core::CoreStats &d = s.delta;
        sum.instructions += d.instructions;
        sum.cycles += d.cycles;
        sum.loads += d.loads;
        sum.stores += d.stores;
        sum.branches.condBranches += d.branches.condBranches;
        sum.branches.condMispredicts += d.branches.condMispredicts;
        sum.branches.jumps += d.branches.jumps;
        sum.branches.jumpMispredicts += d.branches.jumpMispredicts;
        sum.icache.accesses += d.icache.accesses;
        sum.icache.misses += d.icache.misses;
        sum.icache.writebacks += d.icache.writebacks;
        sum.dcache.accesses += d.dcache.accesses;
        sum.dcache.misses += d.dcache.misses;
        sum.dcache.writebacks += d.dcache.writebacks;
        sum.itlb.accesses += d.itlb.accesses;
        sum.itlb.misses += d.itlb.misses;
        sum.dtlb.accesses += d.dtlb.accesses;
        sum.dtlb.misses += d.dtlb.misses;
        sum.trt.lookups += d.trt.lookups;
        sum.trt.hits += d.trt.hits;
        sum.typeOverflowMisses += d.typeOverflowMisses;
        sum.chklbChecks += d.chklbChecks;
        sum.chklbMisses += d.chklbMisses;
        sum.deoptRedirects += d.deoptRedirects;
        sum.deoptProbes += d.deoptProbes;
        sum.hostcalls += d.hostcalls;
    }
    EXPECT_EQ(statsKey(sum), statsKey(final_stats));

    // The CSV renders header + one line per sample.
    const std::string csv = sampler.renderCsv();
    EXPECT_EQ(static_cast<size_t>(
                  std::count(csv.begin(), csv.end(), '\n')),
              sampler.samples().size() + 1);
    EXPECT_EQ(csv.compare(0, std::string(
                                 IntervalSampler::csvHeader())
                                 .size(),
                          IntervalSampler::csvHeader()),
              0);
}

// ---------------------------------------------------------------------
// Tracer label annotation (satellite).

TEST(Tracer, DumpAnnotatesNearestLabel)
{
    core::Core core({}, nullptr);
    core::Tracer tracer(16);
    core.setTracer(&tracer);
    core.loadProgram(assembler::assemble(R"(
_start: li a0, 1
inner:  addi a0, a0, 1
        addi a0, a0, 2
        halt
    )"));
    core.run();
    const std::string dump = tracer.dump();
    EXPECT_NE(dump.find("; _start"), std::string::npos);
    EXPECT_NE(dump.find("; inner"), std::string::npos);
    EXPECT_NE(dump.find("; inner+0x4"), std::string::npos);
}

// ---------------------------------------------------------------------
// Markers hostcall region accounting (satellite regression).

TEST(Markers, HostcallChargesLandOnTheRegionActiveAtTheHcall)
{
    core::HostcallRegistry reg;
    reg.add(1, "noop", {7, 13}, [](core::HostEnv &) {});
    core::Core core({}, &reg);
    const assembler::Program program = assembler::assemble(R"(
_start: li a1, 2
        jal ra, other
done:   halt
other:  hcall 1
        jalr zero, ra, 0
    )");
    // Markers must be registered before loadProgram resolves them to
    // text indexes.
    const size_t region_start =
        core.markers().add(program.symbols.at("_start"), "start");
    const size_t region_other =
        core.markers().add(program.symbols.at("other"), "other");
    core.loadProgram(program);
    core.run();
    const core::CoreStats stats = core.collectStats();

    // Regions are dynamic: "start" covers li + jal; once `other` is
    // fetched its region absorbs everything after, including the
    // post-return halt.  The 7-instruction hostcall lump lands on
    // "other" (active at the hcall): hcall + 7 + jr + halt = 10.
    EXPECT_EQ(core.markers().regionInstrs(region_start), 2u);
    EXPECT_EQ(core.markers().regionInstrs(region_other), 10u);
    // Every retired instruction (including the lump) is attributed.
    EXPECT_EQ(core.markers().regionInstrs(region_start) +
                  core.markers().regionInstrs(region_other),
              stats.instructions);
}

TEST(Markers, PerRegionTotalsPinToCoreInstructions)
{
    // A lua run with the interpreter's own handler markers: the sum of
    // all region instruction counts plus the pre-marker prologue must
    // equal CoreStats::instructions exactly (hostcall lumps included).
    vm::lua::LuaVm vm(kMixedLoop);
    SessionConfig cfg;
    cfg.profile = true;
    Session session(vm.core(), cfg);
    vm.run();
    const core::CoreStats stats = vm.core().collectStats();
    const Profiler &prof = *session.profiler();
    uint64_t attributed = 0;
    for (const auto &[region, bucket] : prof.byRegion())
        attributed += bucket.instructions;
    EXPECT_EQ(attributed, stats.instructions);
    EXPECT_GT(stats.hostcalls, 0u);  // print() went through an hcall
}

// ---------------------------------------------------------------------
// Instrumented fuzz replay (fuzz::replayInstrumented).

TEST(ReplayInstrumented, RendersArtifactsAndMatchesUninstrumentedStats)
{
    fuzz::RunConfig config;
    config.engine = fuzz::RunConfig::Engine::Lua;
    config.variant = vm::Variant::Typed;
    SessionConfig obs_cfg;
    obs_cfg.profile = true;
    obs_cfg.statsJson = true;
    Artifacts artifacts;
    const fuzz::RunRecord rec = fuzz::replayInstrumented(
        kMixedLoop, config, obs_cfg, artifacts);
    EXPECT_FALSE(rec.crashed);
    EXPECT_FALSE(artifacts.profileByHandler.empty());
    core::CoreStats back;
    std::string error;
    ASSERT_TRUE(statsFromJson(artifacts.statsJson, back, &error)) << error;
    EXPECT_EQ(statsKey(rec.stats), statsKey(back));

    // The instrumented replay measures the same run the oracle did.
    const fuzz::OracleResult oracle = fuzz::runOracle(kMixedLoop);
    ASSERT_TRUE(oracle.referenceOk);
    for (const fuzz::RunRecord &r : oracle.runs) {
        if (r.config.name() == config.name())
            EXPECT_EQ(statsKey(r.stats), statsKey(rec.stats));
    }
}

TEST(ReplayInstrumented, CrashedRunStillRendersArtifacts)
{
    fuzz::RunConfig config;
    fuzz::OracleOptions opts;
    opts.maxInstructions = 2'000;  // trip the runaway guard mid-run
    opts.verifyImages = false;
    SessionConfig obs_cfg;
    obs_cfg.chromeTrace = true;
    obs_cfg.statsJson = true;
    Artifacts artifacts;
    const fuzz::RunRecord rec = fuzz::replayInstrumented(
        "while 1 == 1 do end", config, obs_cfg, artifacts, opts);
    EXPECT_TRUE(rec.crashed);
    EXPECT_FALSE(rec.error.empty());
    // The trace up to the fatal instruction is still rendered and valid.
    std::string error;
    EXPECT_TRUE(jsonWellFormed(artifacts.traceJson, &error)) << error;
    EXPECT_FALSE(artifacts.statsJson.empty());
}

// ---------------------------------------------------------------------
// Session lifecycle.

TEST(Session, FinishIsIdempotentAndDetaches)
{
    vm::lua::LuaVm vm("print(1)");
    SessionConfig cfg;
    cfg.profile = true;
    cfg.statsJson = true;
    Session session(vm.core(), cfg);
    EXPECT_TRUE(vm.core().probeBus().active());
    vm.run();
    const Artifacts first = session.finish();
    EXPECT_FALSE(vm.core().probeBus().active());
    EXPECT_FALSE(first.statsJson.empty());
    const Artifacts second = session.finish();
    EXPECT_TRUE(second.statsJson.empty());
}

TEST(Session, NoConfigAttachesNothing)
{
    vm::lua::LuaVm vm("print(1)");
    Session session(vm.core(), SessionConfig{});
    EXPECT_FALSE(vm.core().probeBus().active());
}

} // namespace
} // namespace tarch::obs
