// The tarch-rpc-v1 wire protocol and the tarch_served engine: strict
// encode/decode round trips (every truncation, trailing byte, and
// out-of-range enum rejected), framing-error handling (bad magic/
// version, oversized length prefixes, mid-frame disconnects), and an
// in-process Server exercised over a Unix socket and TCP loopback —
// inline source runs gated by the static verifier, disk/memory cell
// cache reuse, pipelined and batched requests, backpressure (BUSY),
// per-request deadlines, and graceful drain.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <string>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "common/log.h"
#include "common/strutil.h"
#include "harness/experiment.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace fs = std::filesystem;

namespace tarch::serve {
namespace {

// ---------------------------------------------------------------------
// Protocol: header framing.

TEST(Protocol, FrameRoundTrip)
{
    const std::string frame =
        proto::encodeFrame(proto::MsgKind::RunCell, 0x1122334455667788ULL,
                           "payload!");
    ASSERT_EQ(frame.size(), proto::kHeaderSize + 8);
    proto::FrameHeader fh;
    ASSERT_EQ(proto::parseHeader(
                  reinterpret_cast<const uint8_t *>(frame.data()), fh,
                  proto::kMaxPayload),
              proto::HeaderStatus::Ok);
    EXPECT_EQ(fh.kind, static_cast<uint16_t>(proto::MsgKind::RunCell));
    EXPECT_EQ(fh.requestId, 0x1122334455667788ULL);
    EXPECT_EQ(fh.payloadLen, 8u);
}

TEST(Protocol, HeaderRejectsBadMagicVersionAndOversizedLength)
{
    std::string frame = proto::encodeFrame(proto::MsgKind::Ping, 1, "");
    proto::FrameHeader fh;

    std::string bad = frame;
    bad[0] = 'X';
    EXPECT_EQ(proto::parseHeader(
                  reinterpret_cast<const uint8_t *>(bad.data()), fh,
                  proto::kMaxPayload),
              proto::HeaderStatus::BadMagic);

    bad = frame;
    bad[4] = 0x7F; // version
    EXPECT_EQ(proto::parseHeader(
                  reinterpret_cast<const uint8_t *>(bad.data()), fh,
                  proto::kMaxPayload),
              proto::HeaderStatus::BadVersion);

    bad = proto::encodeFrame(proto::MsgKind::Ping, 1,
                             std::string(2000, 'x'));
    EXPECT_EQ(proto::parseHeader(
                  reinterpret_cast<const uint8_t *>(bad.data()), fh,
                  1000),
              proto::HeaderStatus::TooLarge);
}

TEST(Protocol, RequestKindsAndRetryability)
{
    EXPECT_TRUE(proto::isRequestKind(
        static_cast<uint16_t>(proto::MsgKind::RunCell)));
    EXPECT_TRUE(proto::isRequestKind(
        static_cast<uint16_t>(proto::MsgKind::Drain)));
    EXPECT_FALSE(proto::isRequestKind(
        static_cast<uint16_t>(proto::MsgKind::CellResult)));
    EXPECT_FALSE(proto::isRequestKind(
        static_cast<uint16_t>(proto::MsgKind::Error)));
    EXPECT_FALSE(proto::isRequestKind(42));

    EXPECT_TRUE(proto::errorRetryable(proto::ErrorCode::Busy));
    EXPECT_TRUE(proto::errorRetryable(proto::ErrorCode::Draining));
    EXPECT_FALSE(proto::errorRetryable(proto::ErrorCode::BadFrame));
    EXPECT_FALSE(
        proto::errorRetryable(proto::ErrorCode::DeadlineExceeded));
    EXPECT_FALSE(
        proto::errorRetryable(proto::ErrorCode::VerifyRejected));
}

// ---------------------------------------------------------------------
// Protocol: payload bodies — round trips and strict rejection.

proto::CellRequest
sampleCellRequest()
{
    proto::CellRequest req;
    req.engine = 1;
    req.variant = 2;
    req.wantStatsJson = 1;
    req.deadlineMs = 1234;
    req.benchmark = "fibo";
    return req;
}

TEST(Protocol, CellRequestRoundTrip)
{
    const proto::CellRequest req = sampleCellRequest();
    proto::CellRequest out;
    ASSERT_TRUE(
        proto::decodeCellRequest(proto::encodeCellRequest(req), out));
    EXPECT_EQ(out.engine, req.engine);
    EXPECT_EQ(out.variant, req.variant);
    EXPECT_EQ(out.wantStatsJson, req.wantStatsJson);
    EXPECT_EQ(out.deadlineMs, req.deadlineMs);
    EXPECT_EQ(out.benchmark, req.benchmark);
}

TEST(Protocol, CellRequestEveryTruncationAndTrailingByteRejected)
{
    const std::string payload =
        proto::encodeCellRequest(sampleCellRequest());
    proto::CellRequest out;
    for (size_t len = 0; len < payload.size(); ++len)
        EXPECT_FALSE(
            proto::decodeCellRequest(payload.substr(0, len), out))
            << "prefix of " << len << " bytes decoded";
    EXPECT_FALSE(proto::decodeCellRequest(payload + "x", out))
        << "trailing byte accepted";
}

TEST(Protocol, CellRequestRejectsOutOfRangeEnums)
{
    proto::CellRequest req = sampleCellRequest();
    req.engine = 9;
    proto::CellRequest out;
    EXPECT_FALSE(
        proto::decodeCellRequest(proto::encodeCellRequest(req), out));
    req = sampleCellRequest();
    req.variant = 3;
    EXPECT_FALSE(
        proto::decodeCellRequest(proto::encodeCellRequest(req), out));
}

TEST(Protocol, SourceRequestRoundTrip)
{
    proto::SourceRequest req;
    req.engine = 0;
    req.variant = 1;
    req.wantStatsJson = 0;
    req.lang = 1;
    req.deadlineMs = 99;
    req.source = "_start:\n    halt\n";
    proto::SourceRequest out;
    ASSERT_TRUE(
        proto::decodeSourceRequest(proto::encodeSourceRequest(req), out));
    EXPECT_EQ(out.lang, req.lang);
    EXPECT_EQ(out.source, req.source);
    EXPECT_EQ(out.deadlineMs, req.deadlineMs);
}

TEST(Protocol, BatchRoundTripAndAbsurdCountRejected)
{
    proto::BatchRequest batch;
    batch.cells.push_back(sampleCellRequest());
    batch.cells.push_back(sampleCellRequest());
    batch.cells[1].benchmark = "n-body";
    proto::BatchRequest out;
    ASSERT_TRUE(
        proto::decodeBatchRequest(proto::encodeBatchRequest(batch), out));
    ASSERT_EQ(out.cells.size(), 2u);
    EXPECT_EQ(out.cells[1].benchmark, "n-body");

    // A count claiming more cells than bytes present must be bounded,
    // not allocated and chased off the end of the buffer.
    std::string absurd(4, '\0');
    absurd[0] = '\x10';
    absurd[1] = '\x27'; // 10000 little-endian
    EXPECT_FALSE(proto::decodeBatchRequest(absurd, out));
}

TEST(Protocol, CellResultRoundTrip)
{
    proto::CellResult result;
    result.engine = 0;
    result.variant = 1;
    result.fromCache = 2;
    result.benchmark = "fibo";
    result.instructions = 0xDEADBEEFCAFEULL;
    result.cycles = 77;
    result.output = "6765\n";
    result.statsJson = "{\"schema\":\"tarch-stats-v1\"}";
    proto::CellResult out;
    ASSERT_TRUE(
        proto::decodeCellResult(proto::encodeCellResult(result), out));
    EXPECT_EQ(out.fromCache, 2);
    EXPECT_EQ(out.instructions, result.instructions);
    EXPECT_EQ(out.cycles, result.cycles);
    EXPECT_EQ(out.output, result.output);
    EXPECT_EQ(out.statsJson, result.statsJson);
}

TEST(Protocol, ErrorBodyAndBatchResultRoundTrip)
{
    proto::ErrorBody error;
    error.code = static_cast<uint16_t>(proto::ErrorCode::Busy);
    error.retryable = 1;
    error.message = "request queue is full";
    proto::ErrorBody error_out;
    ASSERT_TRUE(
        proto::decodeErrorBody(proto::encodeErrorBody(error), error_out));
    EXPECT_EQ(error_out.code, error.code);
    EXPECT_EQ(error_out.retryable, 1);
    EXPECT_EQ(error_out.message, error.message);

    proto::BatchResult batch;
    proto::BatchResult::Item ok_item;
    ok_item.ok = true;
    ok_item.result.benchmark = "fibo";
    ok_item.result.cycles = 5;
    proto::BatchResult::Item bad_item;
    bad_item.ok = false;
    bad_item.error = error;
    batch.items.push_back(ok_item);
    batch.items.push_back(bad_item);
    proto::BatchResult batch_out;
    ASSERT_TRUE(proto::decodeBatchResult(proto::encodeBatchResult(batch),
                                         batch_out));
    ASSERT_EQ(batch_out.items.size(), 2u);
    EXPECT_TRUE(batch_out.items[0].ok);
    EXPECT_EQ(batch_out.items[0].result.cycles, 5u);
    EXPECT_FALSE(batch_out.items[1].ok);
    EXPECT_EQ(batch_out.items[1].error.message, error.message);
}

TEST(Protocol, ErrorFrameIsSelfConsistent)
{
    const std::string frame = proto::errorFrame(
        42, proto::ErrorCode::UnknownBenchmark, "no such benchmark");
    proto::FrameHeader fh;
    ASSERT_EQ(proto::parseHeader(
                  reinterpret_cast<const uint8_t *>(frame.data()), fh,
                  proto::kMaxPayload),
              proto::HeaderStatus::Ok);
    EXPECT_EQ(fh.kind, static_cast<uint16_t>(proto::MsgKind::Error));
    EXPECT_EQ(fh.requestId, 42u);
    proto::ErrorBody error;
    ASSERT_TRUE(proto::decodeErrorBody(
        frame.substr(proto::kHeaderSize), error));
    EXPECT_EQ(error.code,
              static_cast<uint16_t>(proto::ErrorCode::UnknownBenchmark));
    EXPECT_EQ(error.retryable, 0);
    EXPECT_EQ(error.message, "no such benchmark");
}

// ---------------------------------------------------------------------
// Protocol: stateful-session payloads (docs/SERVING.md).

proto::OpenSessionRequest
sampleOpenSession()
{
    proto::OpenSessionRequest req;
    req.engine = 1;
    req.variant = 2;
    req.deadlineMs = 1234;
    req.sessionId = 0xABCDEF0123456789ULL;
    req.source = "x = 1\nprint(x)";
    return req;
}

/** Every proper prefix and every trailing byte must be rejected — the
    strict length-bounded discipline all tarch-rpc payloads follow. */
template <typename Payload, typename Decode>
void
expectStrictRejection(const std::string &payload, Decode decode)
{
    Payload out;
    for (size_t len = 0; len < payload.size(); ++len)
        EXPECT_FALSE(decode(payload.substr(0, len), out))
            << "prefix of " << len << "/" << payload.size()
            << " bytes decoded";
    EXPECT_FALSE(decode(payload + "x", out)) << "trailing byte accepted";
}

TEST(Protocol, SessionPayloadRoundTrips)
{
    const proto::OpenSessionRequest open = sampleOpenSession();
    proto::OpenSessionRequest open_out;
    ASSERT_TRUE(proto::decodeOpenSessionRequest(
        proto::encodeOpenSessionRequest(open), open_out));
    EXPECT_EQ(open_out.engine, open.engine);
    EXPECT_EQ(open_out.variant, open.variant);
    EXPECT_EQ(open_out.deadlineMs, open.deadlineMs);
    EXPECT_EQ(open_out.sessionId, open.sessionId);
    EXPECT_EQ(open_out.source, open.source);

    proto::SubmitChunkRequest chunk;
    chunk.deadlineMs = 7;
    chunk.sessionId = 42;
    chunk.source = "x = x + 1";
    proto::SubmitChunkRequest chunk_out;
    ASSERT_TRUE(proto::decodeSubmitChunkRequest(
        proto::encodeSubmitChunkRequest(chunk), chunk_out));
    EXPECT_EQ(chunk_out.sessionId, 42u);
    EXPECT_EQ(chunk_out.source, chunk.source);

    proto::SessionIdRequest sid;
    sid.sessionId = 99;
    proto::SessionIdRequest sid_out;
    ASSERT_TRUE(proto::decodeSessionIdRequest(
        proto::encodeSessionIdRequest(sid), sid_out));
    EXPECT_EQ(sid_out.sessionId, 99u);

    proto::RestoreSessionRequest restore;
    restore.deadlineMs = 11;
    restore.sessionId = 42;
    restore.blob = std::string("TSNP-not-really-a-blob");
    proto::RestoreSessionRequest restore_out;
    ASSERT_TRUE(proto::decodeRestoreSessionRequest(
        proto::encodeRestoreSessionRequest(restore), restore_out));
    EXPECT_EQ(restore_out.sessionId, 42u);
    EXPECT_EQ(restore_out.blob, restore.blob);

    proto::SessionReply reply;
    reply.sessionId = 42;
    reply.chunkIndex = 3;
    reply.instructions = 1000;
    reply.cycles = 2000;
    reply.output = "7\n";
    proto::SessionReply reply_out;
    ASSERT_TRUE(proto::decodeSessionReply(
        proto::encodeSessionReply(reply), reply_out));
    EXPECT_EQ(reply_out.chunkIndex, 3u);
    EXPECT_EQ(reply_out.output, "7\n");

    proto::SessionSnapshotResult snap;
    snap.sessionId = 42;
    snap.blob = "blobbytes";
    proto::SessionSnapshotResult snap_out;
    ASSERT_TRUE(proto::decodeSessionSnapshotResult(
        proto::encodeSessionSnapshotResult(snap), snap_out));
    EXPECT_EQ(snap_out.blob, "blobbytes");

    proto::SessionClosedResult closed;
    closed.sessionId = 42;
    proto::SessionClosedResult closed_out;
    ASSERT_TRUE(proto::decodeSessionClosedResult(
        proto::encodeSessionClosedResult(closed), closed_out));
    EXPECT_EQ(closed_out.sessionId, 42u);
}

TEST(Protocol, SessionPayloadsEveryTruncationAndTrailingByteRejected)
{
    expectStrictRejection<proto::OpenSessionRequest>(
        proto::encodeOpenSessionRequest(sampleOpenSession()),
        [](const std::string &p, proto::OpenSessionRequest &o) {
            return proto::decodeOpenSessionRequest(p, o);
        });

    proto::SubmitChunkRequest chunk;
    chunk.sessionId = 42;
    chunk.source = "x = x + 1";
    expectStrictRejection<proto::SubmitChunkRequest>(
        proto::encodeSubmitChunkRequest(chunk),
        [](const std::string &p, proto::SubmitChunkRequest &o) {
            return proto::decodeSubmitChunkRequest(p, o);
        });

    proto::SessionIdRequest sid;
    sid.sessionId = 99;
    expectStrictRejection<proto::SessionIdRequest>(
        proto::encodeSessionIdRequest(sid),
        [](const std::string &p, proto::SessionIdRequest &o) {
            return proto::decodeSessionIdRequest(p, o);
        });

    proto::RestoreSessionRequest restore;
    restore.sessionId = 42;
    restore.blob = "pretend-blob";
    expectStrictRejection<proto::RestoreSessionRequest>(
        proto::encodeRestoreSessionRequest(restore),
        [](const std::string &p, proto::RestoreSessionRequest &o) {
            return proto::decodeRestoreSessionRequest(p, o);
        });

    proto::SessionReply reply;
    reply.sessionId = 42;
    reply.output = "out\n";
    expectStrictRejection<proto::SessionReply>(
        proto::encodeSessionReply(reply),
        [](const std::string &p, proto::SessionReply &o) {
            return proto::decodeSessionReply(p, o);
        });

    proto::SessionSnapshotResult snap;
    snap.sessionId = 42;
    snap.blob = "blob";
    expectStrictRejection<proto::SessionSnapshotResult>(
        proto::encodeSessionSnapshotResult(snap),
        [](const std::string &p, proto::SessionSnapshotResult &o) {
            return proto::decodeSessionSnapshotResult(p, o);
        });

    proto::SessionClosedResult closed;
    closed.sessionId = 42;
    expectStrictRejection<proto::SessionClosedResult>(
        proto::encodeSessionClosedResult(closed),
        [](const std::string &p, proto::SessionClosedResult &o) {
            return proto::decodeSessionClosedResult(p, o);
        });
}

TEST(Protocol, SessionPayloadFieldValidation)
{
    // Out-of-range enums on open.
    proto::OpenSessionRequest open = sampleOpenSession();
    open.engine = 2;
    proto::OpenSessionRequest open_out;
    EXPECT_FALSE(proto::decodeOpenSessionRequest(
        proto::encodeOpenSessionRequest(open), open_out));
    open = sampleOpenSession();
    open.variant = 3;
    EXPECT_FALSE(proto::decodeOpenSessionRequest(
        proto::encodeOpenSessionRequest(open), open_out));
    // sessionId 0 is allowed on open (shard assigns) ...
    open = sampleOpenSession();
    open.sessionId = 0;
    EXPECT_TRUE(proto::decodeOpenSessionRequest(
        proto::encodeOpenSessionRequest(open), open_out));

    // ... but never on submit/snapshot/close, which address a session.
    proto::SubmitChunkRequest chunk;
    chunk.sessionId = 0;
    chunk.source = "x = 1";
    proto::SubmitChunkRequest chunk_out;
    EXPECT_FALSE(proto::decodeSubmitChunkRequest(
        proto::encodeSubmitChunkRequest(chunk), chunk_out));
    proto::SessionIdRequest sid;
    sid.sessionId = 0;
    proto::SessionIdRequest sid_out;
    EXPECT_FALSE(proto::decodeSessionIdRequest(
        proto::encodeSessionIdRequest(sid), sid_out));

    // Restore and snapshot-result must carry a blob.
    proto::RestoreSessionRequest restore;
    restore.sessionId = 42;
    restore.blob.clear();
    proto::RestoreSessionRequest restore_out;
    EXPECT_FALSE(proto::decodeRestoreSessionRequest(
        proto::encodeRestoreSessionRequest(restore), restore_out));
    proto::SessionSnapshotResult snap;
    snap.sessionId = 42;
    snap.blob.clear();
    proto::SessionSnapshotResult snap_out;
    EXPECT_FALSE(proto::decodeSessionSnapshotResult(
        proto::encodeSessionSnapshotResult(snap), snap_out));
}

TEST(Protocol, SessionKindsAreRequestKindsAndErrorCodesNamed)
{
    for (const proto::MsgKind kind :
         {proto::MsgKind::OpenSession, proto::MsgKind::SubmitChunk,
          proto::MsgKind::SnapshotSession, proto::MsgKind::RestoreSession,
          proto::MsgKind::CloseSession})
        EXPECT_TRUE(
            proto::isRequestKind(static_cast<uint16_t>(kind)));
    for (const proto::MsgKind kind :
         {proto::MsgKind::SessionOpened, proto::MsgKind::ChunkResult,
          proto::MsgKind::SessionSnapshot, proto::MsgKind::SessionClosed})
        EXPECT_FALSE(
            proto::isRequestKind(static_cast<uint16_t>(kind)));
    // A corrupt snapshot can never be fixed by retrying it; a shard
    // that forgot a session can serve it again after a migration.
    EXPECT_FALSE(proto::errorRetryable(proto::ErrorCode::BadSnapshot));
    EXPECT_FALSE(
        std::string(proto::errorCodeName(proto::ErrorCode::BadSnapshot))
            .empty());
    EXPECT_FALSE(
        std::string(
            proto::errorCodeName(proto::ErrorCode::UnknownSession))
            .empty());
    // Same-key affinity: every request of one session routes alike.
    EXPECT_EQ(proto::sessionRequestKey(42), proto::sessionRequestKey(42));
    EXPECT_NE(proto::sessionRequestKey(42), proto::sessionRequestKey(43));
}

// ---------------------------------------------------------------------
// Server integration over real sockets.

/** Fresh temp dir (cache + socket) per fixture; removed afterwards. */
struct TempServeDir {
    fs::path path;

    TempServeDir()
    {
        static std::atomic<int> counter{0};
        path = fs::temp_directory_path() /
               strformat("tarch_serve_test_%ld_%d", (long)::getpid(),
                         counter++);
        fs::remove_all(path);
        fs::create_directories(path);
    }
    ~TempServeDir() { fs::remove_all(path); }

    std::string str() const { return path.string(); }
    std::string sock() const { return (path / "s.sock").string(); }
};

constexpr uint8_t kVerifyRejectedCode =
    static_cast<uint8_t>(proto::ErrorCode::VerifyRejected);

/** Assembly the PR-3 verifier rejects: f1/f2 read but never written. */
const char *kBadAsm = "_start:\n    fadd.d f0, f1, f2\n    halt\n";

/** A MiniScript source slow enough (~hundreds of ms simulated) to sit
    visibly in the queue for the backpressure and deadline tests. */
const char *kSlowScript =
    "local s = 0\nfor i = 1, 60000 do s = s + i end\nprint(s)\n";

class ServeTest : public ::testing::Test
{
  protected:
    TempServeDir dir;
    std::unique_ptr<Server> server;
    /** Session-table knobs; set before startServer() to take effect. */
    SessionManager::Options sessionOpts;

    void
    startServer(unsigned jobs = 2, size_t queue_capacity = 64,
                int tcp_port = -1, uint32_t send_timeout_ms = 0)
    {
        Server::Config cfg;
        cfg.unixPath = dir.sock();
        cfg.tcpPort = tcp_port;
        cfg.jobs = jobs;
        cfg.queueCapacity = queue_capacity;
        cfg.sim.cacheDir = dir.str();
        cfg.sessions = sessionOpts;
        if (send_timeout_ms)
            cfg.sendTimeoutMs = send_timeout_ms;
        server = std::make_unique<Server>(cfg);
        server->start();
    }

    Client connect() { return Client::connectUnix(dir.sock()); }

    /** Fabricate a disk-cache cell for (Lua, benchmark, variant) so
        RunCell is served without simulating; returns the planted
        instruction count. */
    uint64_t
    plantDiskCell(const std::string &benchmark, vm::Variant variant,
                  const std::string &output = "planted\n")
    {
        const harness::BenchmarkInfo *info = nullptr;
        for (const harness::BenchmarkInfo &b : harness::benchmarks())
            if (b.name == benchmark)
                info = &b;
        EXPECT_NE(info, nullptr);
        harness::RunResult r;
        r.benchmark = benchmark;
        r.engine = harness::Engine::Lua;
        r.variant = variant;
        r.stats.instructions = 123456;
        r.stats.cycles = 234567;
        r.output = output;
        EXPECT_TRUE(harness::ensureCacheDir(dir.str()));
        EXPECT_TRUE(harness::saveCell(
            r,
            harness::cellPath(dir.str(), harness::Engine::Lua, benchmark,
                              variant),
            harness::cellKey(harness::Engine::Lua, *info, variant)));
        return r.stats.instructions;
    }
};

TEST_F(ServeTest, PingStatsAndHealthCounters)
{
    startServer();
    Client client = connect();
    EXPECT_TRUE(client.ping());
    const std::string json = client.stats();
    EXPECT_NE(json.find("\"schema\":\"tarch-serve-stats-v2\""),
              std::string::npos);
    EXPECT_NE(json.find("\"draining\":false"), std::string::npos);
    EXPECT_NE(json.find("\"uptime_seconds\":"), std::string::npos);
    EXPECT_NE(json.find("\"replies_by_code\":{\"ok\":"),
              std::string::npos);
    const Server::Health health = server->health();
    EXPECT_GE(health.received, 2u); // ping + stats
    EXPECT_EQ(health.framingErrors, 0u);
}

TEST_F(ServeTest, TcpLoopbackOnEphemeralPort)
{
    startServer(2, 64, /*tcp_port=*/0);
    ASSERT_GT(server->tcpPort(), 0);
    Client client = Client::connectTcp(server->tcpPort());
    EXPECT_TRUE(client.ping());
}

TEST_F(ServeTest, RunSourceMiniScript)
{
    startServer();
    Client client = connect();
    proto::SourceRequest req;
    req.variant = 1;
    req.wantStatsJson = 1;
    req.source = "print(1 + 2)\n";
    const Client::Outcome outcome = client.runSource(req);
    ASSERT_TRUE(outcome.ok);
    EXPECT_EQ(outcome.result.output, "3\n");
    EXPECT_GT(outcome.result.instructions, 0u);
    EXPECT_EQ(outcome.result.fromCache, 0);
    EXPECT_NE(outcome.result.statsJson.find("tarch-stats-v1"),
              std::string::npos);
}

TEST_F(ServeTest, RunSourceAssemblyRejectedByVerifier)
{
    startServer();
    Client client = connect();
    proto::SourceRequest req;
    req.lang = 1; // assembly
    req.source = kBadAsm;
    const Client::Outcome outcome = client.runSource(req);
    ASSERT_FALSE(outcome.ok);
    ASSERT_FALSE(outcome.closed);
    EXPECT_EQ(outcome.error.code, kVerifyRejectedCode);
    // The rendered findings report rides in the error message.
    EXPECT_NE(outcome.error.message.find("def-use"), std::string::npos);
    EXPECT_NE(outcome.error.message.find("f1"), std::string::npos);
    EXPECT_EQ(server->health().sim.verifyRejected, 1u);
    // The connection survives a rejected request.
    EXPECT_TRUE(client.ping());
}

TEST_F(ServeTest, RunSourceCompileErrorIsTyped)
{
    startServer();
    Client client = connect();
    proto::SourceRequest req;
    req.source = "print(\n"; // unterminated call
    const Client::Outcome outcome = client.runSource(req);
    ASSERT_FALSE(outcome.ok);
    EXPECT_EQ(outcome.error.code,
              static_cast<uint16_t>(proto::ErrorCode::CompileFailed));
    EXPECT_TRUE(client.ping());
}

TEST_F(ServeTest, UnknownBenchmarkIsTyped)
{
    startServer();
    Client client = connect();
    proto::CellRequest req;
    req.benchmark = "no-such-benchmark";
    const Client::Outcome outcome = client.runCell(req);
    ASSERT_FALSE(outcome.ok);
    EXPECT_EQ(outcome.error.code,
              static_cast<uint16_t>(proto::ErrorCode::UnknownBenchmark));
    EXPECT_EQ(outcome.error.retryable, 0);
}

TEST_F(ServeTest, RunCellFromDiskCacheThenMemoryCache)
{
    const uint64_t planted =
        plantDiskCell("fibo", vm::Variant::Typed);
    startServer();
    Client client = connect();
    proto::CellRequest req;
    req.variant = 1;
    req.benchmark = "fibo";

    const Client::Outcome first = client.runCell(req);
    ASSERT_TRUE(first.ok);
    EXPECT_EQ(first.result.fromCache, 2); // disk
    EXPECT_EQ(first.result.instructions, planted);
    EXPECT_EQ(first.result.output, "planted\n");
    EXPECT_TRUE(first.result.statsJson.empty()); // not asked for

    const Client::Outcome second = client.runCell(req);
    ASSERT_TRUE(second.ok);
    EXPECT_EQ(second.result.fromCache, 1); // memory
    EXPECT_EQ(second.result.instructions, planted);

    // Stats JSON is derivable even for cached cells.
    req.wantStatsJson = 1;
    const Client::Outcome third = client.runCell(req);
    ASSERT_TRUE(third.ok);
    EXPECT_NE(third.result.statsJson.find("tarch-stats-v1"),
              std::string::npos);

    const Server::Health health = server->health();
    EXPECT_EQ(health.sim.diskHits, 1u);
    EXPECT_EQ(health.sim.memHits, 2u);
    EXPECT_EQ(health.sim.simulated, 0u);
}

TEST_F(ServeTest, BatchMixesResultsAndTypedErrors)
{
    plantDiskCell("fibo", vm::Variant::Baseline);
    startServer();
    Client client = connect();
    proto::BatchRequest batch;
    proto::CellRequest good;
    good.benchmark = "fibo";
    batch.cells.push_back(good);
    proto::CellRequest bad;
    bad.benchmark = "no-such-benchmark";
    batch.cells.push_back(bad);
    batch.cells.push_back(good);

    proto::BatchResult result;
    proto::ErrorBody error;
    ASSERT_TRUE(client.runBatch(batch, result, error));
    ASSERT_EQ(result.items.size(), 3u);
    EXPECT_TRUE(result.items[0].ok);
    EXPECT_EQ(result.items[0].result.output, "planted\n");
    ASSERT_FALSE(result.items[1].ok);
    EXPECT_EQ(result.items[1].error.code,
              static_cast<uint16_t>(proto::ErrorCode::UnknownBenchmark));
    EXPECT_TRUE(result.items[2].ok);
    EXPECT_EQ(result.items[2].result.fromCache, 1); // memo from item 0
}

TEST_F(ServeTest, PipelinedRequestsAllAnsweredById)
{
    plantDiskCell("fibo", vm::Variant::Typed);
    startServer();
    Client client = connect();
    proto::CellRequest req;
    req.variant = 1;
    req.benchmark = "fibo";
    const std::string payload = proto::encodeCellRequest(req);

    constexpr int kCount = 16;
    std::vector<uint64_t> ids;
    for (int i = 0; i < kCount; ++i)
        ids.push_back(client.sendRequest(proto::MsgKind::RunCell,
                                         payload));

    std::vector<uint64_t> answered;
    for (int i = 0; i < kCount; ++i) {
        Client::Reply reply;
        ASSERT_TRUE(client.readReply(reply));
        EXPECT_EQ(reply.kind,
                  static_cast<uint16_t>(proto::MsgKind::CellResult));
        answered.push_back(reply.requestId);
    }
    std::sort(answered.begin(), answered.end());
    EXPECT_EQ(answered, ids); // every id answered exactly once
}

// ---------------------------------------------------------------------
// Robustness: malformed input never crashes or hangs the server.

TEST_F(ServeTest, MalformedPayloadGetsBadFrameAndConnectionSurvives)
{
    startServer();
    Client client = connect();
    const std::string frame = proto::encodeFrame(
        proto::MsgKind::RunCell, 7, std::string(3, '\xff'));
    ASSERT_TRUE(client.sendRaw(frame.data(), frame.size()));
    Client::Reply reply;
    ASSERT_TRUE(client.readReply(reply));
    EXPECT_EQ(reply.kind, static_cast<uint16_t>(proto::MsgKind::Error));
    EXPECT_EQ(reply.requestId, 7u);
    proto::ErrorBody error;
    ASSERT_TRUE(proto::decodeErrorBody(reply.payload, error));
    EXPECT_EQ(error.code,
              static_cast<uint16_t>(proto::ErrorCode::BadFrame));
    // Same connection keeps working.
    EXPECT_TRUE(client.ping());
}

TEST_F(ServeTest, UnknownRequestKindIsTypedAndSurvivable)
{
    startServer();
    Client client = connect();
    const std::string frame =
        proto::encodeFrame(static_cast<proto::MsgKind>(42), 9, "");
    ASSERT_TRUE(client.sendRaw(frame.data(), frame.size()));
    Client::Reply reply;
    ASSERT_TRUE(client.readReply(reply));
    proto::ErrorBody error;
    ASSERT_TRUE(proto::decodeErrorBody(reply.payload, error));
    EXPECT_EQ(error.code,
              static_cast<uint16_t>(proto::ErrorCode::UnknownKind));
    EXPECT_TRUE(client.ping());
}

TEST_F(ServeTest, BadMagicClosesOnlyTheOffendingConnection)
{
    startServer();
    Client offender = connect();
    Client bystander = connect();
    std::string junk(proto::kHeaderSize, '\xde');
    ASSERT_TRUE(offender.sendRaw(junk.data(), junk.size()));
    // The offender gets a final typed error, then EOF.
    Client::Reply reply;
    ASSERT_TRUE(offender.readReply(reply));
    EXPECT_EQ(reply.kind, static_cast<uint16_t>(proto::MsgKind::Error));
    proto::ErrorBody error;
    ASSERT_TRUE(proto::decodeErrorBody(reply.payload, error));
    EXPECT_EQ(error.code,
              static_cast<uint16_t>(proto::ErrorCode::BadMagic));
    EXPECT_FALSE(offender.readReply(reply)); // closed
    // The bystander and new connections are unaffected.
    EXPECT_TRUE(bystander.ping());
    Client fresh = connect();
    EXPECT_TRUE(fresh.ping());
    EXPECT_EQ(server->health().framingErrors, 1u);
}

TEST_F(ServeTest, OversizedLengthPrefixIsAFramingError)
{
    startServer();
    Client client = connect();
    // A syntactically valid header whose length prefix exceeds the
    // server's payload cap (default 16 MiB) — built via the encoder at
    // kMaxPayload, which the parser accepts but the server must not.
    const std::string frame = proto::encodeFrame(
        proto::MsgKind::RunCell, 3, std::string(1, 'x'));
    std::string header = frame.substr(0, proto::kHeaderSize);
    const uint32_t huge = 32u << 20;
    header[16] = static_cast<char>(huge & 0xFF);
    header[17] = static_cast<char>((huge >> 8) & 0xFF);
    header[18] = static_cast<char>((huge >> 16) & 0xFF);
    header[19] = static_cast<char>((huge >> 24) & 0xFF);
    ASSERT_TRUE(client.sendRaw(header.data(), header.size()));
    Client::Reply reply;
    ASSERT_TRUE(client.readReply(reply));
    proto::ErrorBody error;
    ASSERT_TRUE(proto::decodeErrorBody(reply.payload, error));
    EXPECT_EQ(error.code,
              static_cast<uint16_t>(proto::ErrorCode::PayloadTooLarge));
    EXPECT_FALSE(client.readReply(reply)); // connection closed
    Client fresh = connect();
    EXPECT_TRUE(fresh.ping());
}

TEST_F(ServeTest, TruncatedHeaderAndMidFrameDisconnectsAreTolerated)
{
    startServer();
    {
        // 5 bytes of a header, then disconnect.
        Client c = connect();
        ASSERT_TRUE(c.sendRaw("\x54\x52\x50\x43\x01", 5));
        c.close();
    }
    {
        // Full header promising 100 payload bytes, 10 delivered.
        Client c = connect();
        const std::string frame = proto::encodeFrame(
            proto::MsgKind::RunCell, 5, std::string(100, 'p'));
        ASSERT_TRUE(
            c.sendRaw(frame.data(), proto::kHeaderSize + 10));
        c.close();
    }
    // The server shrugs both off and keeps serving.
    Client fresh = connect();
    EXPECT_TRUE(fresh.ping());
    EXPECT_EQ(server->health().framingErrors, 0u); // disconnect != frame
}

// ---------------------------------------------------------------------
// Backpressure, deadlines, drain.

TEST_F(ServeTest, FullQueueAnswersRetryableBusy)
{
    startServer(/*jobs=*/1, /*queue_capacity=*/1);
    Client client = connect();
    proto::SourceRequest slow;
    slow.source = kSlowScript;
    const std::string payload = proto::encodeSourceRequest(slow);

    constexpr int kCount = 5;
    std::vector<uint64_t> ids;
    for (int i = 0; i < kCount; ++i)
        ids.push_back(
            client.sendRequest(proto::MsgKind::RunSource, payload));

    int ok = 0, busy = 0;
    for (int i = 0; i < kCount; ++i) {
        Client::Reply reply;
        ASSERT_TRUE(client.readReply(reply));
        if (reply.kind ==
            static_cast<uint16_t>(proto::MsgKind::CellResult)) {
            ++ok;
            continue;
        }
        ASSERT_EQ(reply.kind,
                  static_cast<uint16_t>(proto::MsgKind::Error));
        proto::ErrorBody error;
        ASSERT_TRUE(proto::decodeErrorBody(reply.payload, error));
        ASSERT_EQ(error.code,
                  static_cast<uint16_t>(proto::ErrorCode::Busy));
        EXPECT_EQ(error.retryable, 1);
        ++busy;
    }
    // 1 worker + 1 queue slot: at least one of the five ran and at
    // least one bounced; the exact split depends on worker timing.
    EXPECT_GE(ok, 1);
    EXPECT_GE(busy, 1);
    EXPECT_EQ(ok + busy, kCount);
    EXPECT_EQ(server->health().busyRejected,
              static_cast<uint64_t>(busy));
    EXPECT_TRUE(client.ping());
}

TEST_F(ServeTest, QueuedRequestPastDeadlineIsReapedNotSimulated)
{
    startServer(/*jobs=*/1, /*queue_capacity=*/4);
    Client client = connect();
    proto::SourceRequest slow;
    slow.source = kSlowScript;
    const uint64_t blocker_id = client.sendRequest(
        proto::MsgKind::RunSource, proto::encodeSourceRequest(slow));

    proto::SourceRequest doomed = slow;
    doomed.deadlineMs = 1; // expires while queued behind the blocker
    const uint64_t doomed_id = client.sendRequest(
        proto::MsgKind::RunSource, proto::encodeSourceRequest(doomed));

    bool doomed_errored = false, blocker_completed = false;
    for (int i = 0; i < 2; ++i) {
        Client::Reply reply;
        ASSERT_TRUE(client.readReply(reply));
        if (reply.requestId == doomed_id) {
            ASSERT_EQ(reply.kind,
                      static_cast<uint16_t>(proto::MsgKind::Error));
            proto::ErrorBody error;
            ASSERT_TRUE(proto::decodeErrorBody(reply.payload, error));
            EXPECT_EQ(error.code,
                      static_cast<uint16_t>(
                          proto::ErrorCode::DeadlineExceeded));
            doomed_errored = true;
        } else {
            EXPECT_EQ(reply.requestId, blocker_id);
            EXPECT_EQ(reply.kind,
                      static_cast<uint16_t>(proto::MsgKind::CellResult));
            blocker_completed = true;
        }
    }
    EXPECT_TRUE(doomed_errored);
    EXPECT_TRUE(blocker_completed);
    EXPECT_GE(server->health().deadlineExceeded, 1u);
    // The connection survives a reaped request.
    EXPECT_TRUE(client.ping());
}

TEST_F(ServeTest, DrainViaRpcAnswersInFlightThenCloses)
{
    plantDiskCell("fibo", vm::Variant::Typed);
    startServer();
    Client client = connect();
    proto::CellRequest req;
    req.variant = 1;
    req.benchmark = "fibo";
    ASSERT_TRUE(client.runCell(req).ok);

    ASSERT_TRUE(client.drain());
    server->waitDrained();
    EXPECT_TRUE(server->drained());

    // The drained server closed the connection cleanly...
    Client::Reply reply;
    EXPECT_FALSE(client.readReply(reply));
    // ...and refuses new ones.
    EXPECT_THROW(connect(), FatalError);

    const Server::Health health = server->health();
    EXPECT_TRUE(health.draining);
    EXPECT_EQ(health.inFlight, 0u);
    EXPECT_GE(health.completed, 1u);
}

TEST_F(ServeTest, RequestDuringDrainGetsDrainingOrCleanClose)
{
    startServer();
    Client client = connect();
    ASSERT_TRUE(client.ping());
    server->requestDrain();
    // Depending on how far the drain got, the in-flight connection
    // sees a retryable Draining error, a clean close, or — if the send
    // raced the close — a typed retryable ConnectionLost.  Never a
    // throw, a hang, or a garbled stream.
    proto::CellRequest req;
    req.benchmark = "fibo";
    const Client::Outcome outcome = client.runCell(req);
    if (!outcome.closed && !outcome.lost()) {
        ASSERT_FALSE(outcome.ok);
        EXPECT_EQ(outcome.error.code,
                  static_cast<uint16_t>(proto::ErrorCode::Draining));
        EXPECT_EQ(outcome.error.retryable, 1);
    }
    server->waitDrained();
}

TEST_F(ServeTest, SocketDeathMidReplyIsATypedRetryableOutcome)
{
    // A stand-in server that accepts one connection, reads the
    // request, answers with a TRUNCATED frame (a valid header
    // promising more bytes than it sends), and closes — the wire
    // behavior of a daemon killed mid-reply.
    const std::string path = dir.str() + "/liar.sock";
    const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(listen_fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    ASSERT_EQ(::bind(listen_fd, reinterpret_cast<sockaddr *>(&addr),
                     sizeof(addr)),
              0);
    ASSERT_EQ(::listen(listen_fd, 1), 0);
    std::thread peer([&] {
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0)
            return;
        uint8_t buf[256];
        (void)!::read(fd, buf, sizeof(buf));
        proto::CellResult result;
        result.output = "you will never read all of this\n";
        const std::string frame =
            proto::encodeFrame(proto::MsgKind::CellResult, 1,
                               proto::encodeCellResult(result));
        (void)!::write(fd, frame.data(), frame.size() / 2);
        ::close(fd);
    });

    Client client = Client::connectUnix(path);
    proto::CellRequest req;
    req.variant = 1;
    req.benchmark = "fibo";
    const Client::Outcome outcome = client.runCell(req);
    peer.join();
    ::close(listen_fd);

    // A typed, retryable ConnectionLost — callers can fail over to
    // another endpoint instead of dying on a FatalError throw...
    EXPECT_TRUE(outcome.lost());
    EXPECT_FALSE(outcome.ok);
    EXPECT_EQ(outcome.error.code,
              static_cast<uint16_t>(proto::ErrorCode::ConnectionLost));
    EXPECT_EQ(outcome.error.retryable, 1);
    EXPECT_FALSE(client.isOpen());
    // ...and every later call on the dead client stays typed too.
    const Client::Outcome again = client.runCell(req);
    EXPECT_TRUE(again.lost());
}

TEST_F(ServeTest, StalledReaderPartialSendClosesConnectionNotDaemon)
{
    // A reply far larger than the socket buffers and a client that
    // never reads: the worker's send blocks, SO_SNDTIMEO fires
    // mid-frame, and the server must CLOSE that connection — retrying
    // the send would splice a duplicate prefix into the stream and
    // desync every frame after it.
    const std::string big(4u << 20, 'x');
    plantDiskCell("fibo", vm::Variant::Typed, big);
    startServer(/*jobs=*/1, /*queue_capacity=*/64, /*tcp_port=*/-1,
                /*send_timeout_ms=*/200);
    Client stalled = connect();
    proto::CellRequest req;
    req.variant = 1;
    req.benchmark = "fibo";
    ASSERT_NE(stalled.sendRequest(proto::MsgKind::RunCell,
                                  proto::encodeCellRequest(req)),
              0u);
    // Stall: read nothing while the send timeout expires.
    std::this_thread::sleep_for(std::chrono::milliseconds(1500));

    // The server gave up on us mid-frame: the stream ends truncated,
    // never resynced-but-wrong.
    Client::Reply reply;
    const Client::IoStatus status = stalled.readFrame(reply);
    EXPECT_TRUE(status == Client::IoStatus::Lost ||
                status == Client::IoStatus::Closed);

    // The daemon itself shrugged it off: new connections still work.
    Client healthy = connect();
    EXPECT_TRUE(healthy.ping());
    req.benchmark = "fibo";
    EXPECT_TRUE(healthy.runCell(req).ok);
}

TEST_F(ServeTest, StopIsIdempotent)
{
    startServer();
    server->stop();
    server->stop();
    EXPECT_TRUE(server->drained());
}

TEST_F(ServeTest, ClosedConnectionsAreReclaimed)
{
    startServer();
    constexpr uint64_t kChurn = 8;
    for (uint64_t i = 0; i < kChurn; ++i) {
        Client client = connect();
        EXPECT_TRUE(client.ping());
        client.close();
    }
    // Each disconnect must be fully reclaimed (reader joined, fd
    // closed, connection forgotten) — a long-running daemon under
    // connection churn would otherwise run out of descriptors.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    Server::Health health;
    for (;;) {
        health = server->health();
        if (health.reclaimedConnections >= kChurn ||
            std::chrono::steady_clock::now() >= deadline)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_GE(health.reclaimedConnections, kChurn);
    EXPECT_EQ(health.activeConnections, 0u);
    EXPECT_NE(health.toJson().find("\"reclaimed_connections\":"),
              std::string::npos);
    // The server still accepts after the churn.
    Client again = connect();
    EXPECT_TRUE(again.ping());
}

// ---------------------------------------------------------------------
// Stateful sessions over real sockets (docs/SERVING.md).

proto::OpenSessionRequest
openCounter()
{
    proto::OpenSessionRequest req;
    req.engine = 0;           // Lua-semantics engine
    req.variant = 1;          // Typed
    req.source = "c = 0";
    return req;
}

proto::SubmitChunkRequest
incrementChunk(uint64_t session_id)
{
    proto::SubmitChunkRequest req;
    req.sessionId = session_id;
    req.source = "c = c + 1\nprint(c)";
    return req;
}

TEST_F(ServeTest, SessionLifecycleKeepsStateAcrossChunks)
{
    startServer();
    Client client = connect();

    const Client::SessionOutcome opened =
        client.openSession(openCounter());
    ASSERT_TRUE(opened.ok) << opened.error.message;
    const uint64_t id = opened.reply.sessionId;
    ASSERT_NE(id, 0u);
    EXPECT_EQ(opened.reply.chunkIndex, 1u);

    // Globals persist chunk to chunk; output is per-chunk, stats are
    // cumulative.
    Client::SessionOutcome one = client.submitChunk(incrementChunk(id));
    ASSERT_TRUE(one.ok) << one.error.message;
    EXPECT_EQ(one.reply.output, "1\n");
    EXPECT_EQ(one.reply.chunkIndex, 2u);
    Client::SessionOutcome two = client.submitChunk(incrementChunk(id));
    ASSERT_TRUE(two.ok) << two.error.message;
    EXPECT_EQ(two.reply.output, "2\n");
    EXPECT_EQ(two.reply.chunkIndex, 3u);
    EXPECT_GT(two.reply.instructions, one.reply.instructions);
    EXPECT_GT(two.reply.cycles, one.reply.cycles);

    const Client::SessionOutcome snap = client.snapshotSession(id);
    ASSERT_TRUE(snap.ok) << snap.error.message;
    EXPECT_FALSE(snap.snapshot.blob.empty());
    EXPECT_EQ(snap.snapshot.sessionId, id);

    const Client::SessionOutcome closed = client.closeSession(id);
    ASSERT_TRUE(closed.ok) << closed.error.message;
    EXPECT_EQ(closed.reply.sessionId, id);

    const Server::Health health = server->health();
    EXPECT_EQ(health.sessions.opened, 1u);
    EXPECT_EQ(health.sessions.closed, 1u);
    EXPECT_EQ(health.sessions.openNow, 0u);
    EXPECT_EQ(health.sessions.chunksRun, 3u); // open runs chunk 1
    EXPECT_EQ(health.sessions.snapshots, 1u);
    EXPECT_NE(health.toJson().find("\"sessions_open\":0"),
              std::string::npos);
    EXPECT_NE(health.toJson().find("\"sessions_opened\":1"),
              std::string::npos);
}

TEST_F(ServeTest, RejectedChunkLeavesSessionUsable)
{
    startServer();
    Client client = connect();
    const Client::SessionOutcome opened =
        client.openSession(openCounter());
    ASSERT_TRUE(opened.ok) << opened.error.message;
    const uint64_t id = opened.reply.sessionId;
    ASSERT_TRUE(client.submitChunk(incrementChunk(id)).ok);

    // A chunk that fails compilation answers a typed error and must
    // not disturb committed state (prepare/commit is transactional).
    proto::SubmitChunkRequest bad;
    bad.sessionId = id;
    bad.source = "c = c +";
    const Client::SessionOutcome rejected = client.submitChunk(bad);
    ASSERT_FALSE(rejected.ok);
    ASSERT_FALSE(rejected.closed);
    EXPECT_EQ(rejected.error.code,
              static_cast<uint16_t>(proto::ErrorCode::CompileFailed));

    const Client::SessionOutcome after =
        client.submitChunk(incrementChunk(id));
    ASSERT_TRUE(after.ok) << after.error.message;
    EXPECT_EQ(after.reply.output, "2\n");
    EXPECT_TRUE(client.closeSession(id).ok);
}

TEST_F(ServeTest, UnknownSessionIsACleanTypedError)
{
    startServer();
    Client client = connect();
    for (const auto &outcome :
         {client.submitChunk(incrementChunk(0xDEAD)),
          client.snapshotSession(0xDEAD), client.closeSession(0xDEAD)}) {
        ASSERT_FALSE(outcome.ok);
        ASSERT_FALSE(outcome.closed);
        EXPECT_EQ(
            outcome.error.code,
            static_cast<uint16_t>(proto::ErrorCode::UnknownSession));
    }
    // The connection survives; sessions are per-server, not per-conn.
    EXPECT_TRUE(client.ping());
}

TEST_F(ServeTest, SnapshotRestoreResumesBitIdenticalState)
{
    startServer();
    Client client = connect();
    const Client::SessionOutcome opened =
        client.openSession(openCounter());
    ASSERT_TRUE(opened.ok);
    const uint64_t id = opened.reply.sessionId;
    ASSERT_TRUE(client.submitChunk(incrementChunk(id)).ok);
    const Client::SessionOutcome snap = client.snapshotSession(id);
    ASSERT_TRUE(snap.ok);

    // Continue the live session one more step, note the output, then
    // rewind by restoring the blob: the replayed step must match.
    const Client::SessionOutcome live =
        client.submitChunk(incrementChunk(id));
    ASSERT_TRUE(live.ok);
    EXPECT_EQ(live.reply.output, "2\n");
    ASSERT_TRUE(client.closeSession(id).ok);

    proto::RestoreSessionRequest restore;
    restore.sessionId = id;
    restore.blob = snap.snapshot.blob;
    const Client::SessionOutcome restored =
        client.restoreSession(restore);
    ASSERT_TRUE(restored.ok) << restored.error.message;
    EXPECT_EQ(restored.reply.sessionId, id);
    const Client::SessionOutcome replay =
        client.submitChunk(incrementChunk(id));
    ASSERT_TRUE(replay.ok) << replay.error.message;
    EXPECT_EQ(replay.reply.output, live.reply.output);
    EXPECT_EQ(replay.reply.instructions, live.reply.instructions);
    EXPECT_EQ(replay.reply.cycles, live.reply.cycles);
    EXPECT_TRUE(client.closeSession(id).ok);
    EXPECT_GE(server->health().sessions.restored, 1u);
}

TEST_F(ServeTest, CorruptSnapshotBlobsAreCleanTypedErrors)
{
    startServer();
    Client client = connect();
    const Client::SessionOutcome opened =
        client.openSession(openCounter());
    ASSERT_TRUE(opened.ok);
    const uint64_t id = opened.reply.sessionId;
    ASSERT_TRUE(client.submitChunk(incrementChunk(id)).ok);
    const Client::SessionOutcome snap = client.snapshotSession(id);
    ASSERT_TRUE(snap.ok);
    ASSERT_TRUE(client.closeSession(id).ok);
    const std::string &blob = snap.snapshot.blob;

    // Representative corruptions through the real RPC path; the
    // exhaustive per-byte truncation/bit-flip sweep runs at codec
    // level in test_snapshot.cc.  Every one must answer BadSnapshot
    // (never retryable) and leave the connection usable.
    std::vector<std::string> corrupt;
    for (const size_t len :
         {size_t{1}, size_t{4}, blob.size() / 2, blob.size() - 1})
        corrupt.push_back(blob.substr(0, len));
    for (const size_t pos :
         {size_t{0}, size_t{8}, blob.size() / 2, blob.size() - 1}) {
        std::string flipped = blob;
        flipped[pos] = static_cast<char>(flipped[pos] ^ 0x40);
        corrupt.push_back(flipped);
    }
    corrupt.push_back(blob + "x");
    for (const std::string &bad : corrupt) {
        proto::RestoreSessionRequest req;
        req.sessionId = id;
        req.blob = bad;
        const Client::SessionOutcome outcome =
            client.restoreSession(req);
        ASSERT_FALSE(outcome.ok);
        ASSERT_FALSE(outcome.closed);
        EXPECT_EQ(outcome.error.code,
                  static_cast<uint16_t>(proto::ErrorCode::BadSnapshot));
        EXPECT_EQ(outcome.error.retryable, 0);
        EXPECT_NE(outcome.error.message.find("bad-snapshot"),
                  std::string::npos)
            << outcome.error.message;
    }
    // The pristine blob still restores after the abuse.
    proto::RestoreSessionRequest good;
    good.sessionId = id;
    good.blob = blob;
    EXPECT_TRUE(client.restoreSession(good).ok);
    EXPECT_TRUE(client.closeSession(id).ok);
}

TEST_F(ServeTest, IdleSessionsEvictToDiskAndResumeTransparently)
{
    sessionOpts.snapshotDir = (dir.path / "sessions").string();
    sessionOpts.idleEvictMs = 1;
    startServer();
    Client client = connect();
    const Client::SessionOutcome opened =
        client.openSession(openCounter());
    ASSERT_TRUE(opened.ok);
    const uint64_t id = opened.reply.sessionId;
    ASSERT_TRUE(client.submitChunk(incrementChunk(id)).ok);

    // Force the idle sweep (the reaper calls this on its tick) until
    // the session has been parked to disk.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (server->health().sessions.evicted == 0 &&
           std::chrono::steady_clock::now() < deadline) {
        server->sessions().sweepIdle();
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    Server::Health health = server->health();
    ASSERT_GE(health.sessions.evicted, 1u);
    EXPECT_EQ(health.sessions.openNow, 0u);

    // Addressing the evicted session resumes it from its snapshot
    // with state intact — the client cannot tell it was ever gone.
    const Client::SessionOutcome resumed =
        client.submitChunk(incrementChunk(id));
    ASSERT_TRUE(resumed.ok) << resumed.error.message;
    EXPECT_EQ(resumed.reply.output, "2\n");
    health = server->health();
    EXPECT_GE(health.sessions.resumed, 1u);
    EXPECT_EQ(health.sessions.openNow, 1u);
    EXPECT_TRUE(client.closeSession(id).ok);
}

TEST_F(ServeTest, DrainEvictsSessionsAndSurvivesRestart)
{
    sessionOpts.snapshotDir = (dir.path / "sessions").string();
    startServer();
    uint64_t id = 0;
    {
        Client client = connect();
        const Client::SessionOutcome opened =
            client.openSession(openCounter());
        ASSERT_TRUE(opened.ok);
        id = opened.reply.sessionId;
        ASSERT_TRUE(client.submitChunk(incrementChunk(id)).ok);
    }
    server->stop();
    EXPECT_GE(server->health().sessions.evicted, 1u);

    // A new server over the same snapshot dir serves the session.
    startServer();
    Client client = connect();
    const Client::SessionOutcome resumed =
        client.submitChunk(incrementChunk(id));
    ASSERT_TRUE(resumed.ok) << resumed.error.message;
    EXPECT_EQ(resumed.reply.output, "2\n");
    EXPECT_TRUE(client.closeSession(id).ok);
}

TEST_F(ServeTest, SessionMetricsAppearInExposition)
{
    startServer();
    Client client = connect();
    const Client::SessionOutcome opened =
        client.openSession(openCounter());
    ASSERT_TRUE(opened.ok);
    ASSERT_TRUE(client.snapshotSession(opened.reply.sessionId).ok);
    const std::string text = client.metricsText();
    for (const char *metric :
         {"tarch_serve_sessions_open", "tarch_serve_sessions_opened_total",
          "tarch_serve_session_chunks_total",
          "tarch_serve_snapshot_bytes",
          "tarch_serve_snapshot_latency_us"})
        EXPECT_NE(text.find(metric), std::string::npos) << metric;
}

TEST(SimServiceTest, NoCacheSkipsSingleFlightWait)
{
    SimService::Options opts;
    opts.memoryCache = false;
    opts.diskCache = false;
    SimService service(opts);
    proto::CellRequest req;
    req.engine = 0;
    req.variant = 1;
    req.benchmark = "fibo";

    // With every cache off the leader cannot publish its result, so
    // concurrent identical requests must simulate independently rather
    // than queue up behind a single flight they can never reuse.
    constexpr int kThreads = 3;
    std::atomic<int> ok{0};
    std::vector<std::thread> threads;
    for (int i = 0; i < kThreads; ++i)
        threads.emplace_back([&] {
            const proto::CellResult result = service.runCell(req);
            if (result.instructions > 0 && result.fromCache == 0)
                ok.fetch_add(1);
        });
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(ok.load(), kThreads);

    const SimService::Counters counters = service.counters();
    EXPECT_EQ(counters.simulated, (uint64_t)kThreads);
    EXPECT_EQ(counters.singleFlightWaits, 0u);
    EXPECT_EQ(counters.memHits, 0u);
    EXPECT_EQ(counters.diskHits, 0u);
}

TEST(SimServiceTest, SourceMemoServesRepeatsWithoutResimulating)
{
    SimService::Options opts;
    opts.diskCache = false;
    SimService service(opts);
    proto::SourceRequest req;
    req.variant = 1;
    req.source = "print(7)\n";

    const proto::CellResult first = service.runSource(req);
    EXPECT_EQ(first.fromCache, 0);
    const proto::CellResult second = service.runSource(req);
    EXPECT_EQ(second.fromCache, 1);
    EXPECT_EQ(second.output, first.output);

    const SimService::Counters counters = service.counters();
    // Source runs count toward `simulated` (they used to be omitted,
    // hiding the most expensive request class from the stats)...
    EXPECT_EQ(counters.simulated, 1u);
    // ...and the repeat was a memo hit, not a second simulation.
    EXPECT_EQ(counters.sourceMemHits, 1u);
}

TEST(SimServiceTest, ConcurrentIdenticalSourcesCollapseToOneSimulation)
{
    SimService::Options opts;
    opts.diskCache = false;
    SimService service(opts);
    proto::SourceRequest req;
    req.variant = 1;
    req.source = kSlowScript;

    // Hedged duplicates land here: the leader simulates, followers
    // either park on its flight or hit the memo it published.
    constexpr int kThreads = 3;
    std::atomic<int> fresh{0};
    std::vector<std::thread> threads;
    for (int i = 0; i < kThreads; ++i)
        threads.emplace_back([&] {
            const proto::CellResult result = service.runSource(req);
            EXPECT_FALSE(result.output.empty());
            if (result.fromCache == 0)
                fresh.fetch_add(1);
        });
    for (std::thread &t : threads)
        t.join();

    EXPECT_EQ(fresh.load(), 1);
    const SimService::Counters counters = service.counters();
    EXPECT_EQ(counters.simulated, 1u);
    EXPECT_EQ(counters.sourceMemHits, (uint64_t)(kThreads - 1));
}

} // namespace
} // namespace tarch::serve
