/**
 * @file
 * Load-generation measurement tests: the log-bucketed latency
 * histogram and the open-loop (coordinated-omission-free) latency
 * model from src/serve/loadgen.h.
 *
 * The centerpiece is a demonstration of the coordinated-omission
 * artifact itself: the same service-time series measured closed-loop
 * (latency = service time, the generator politely waits out a stall)
 * versus open-loop (latency runs from each request's scheduled start)
 * disagree by orders of magnitude at the tail when the server pauses.
 */

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "serve/loadgen.h"

namespace tarch::serve {
namespace {

// ---------------------------------------------------------------------
// LatencyHistogram.

TEST(LatencyHistogram, EmptyIsAllZero)
{
    LatencyHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.maxValue(), 0u);
    EXPECT_EQ(h.percentile(50.0), 0u);
    EXPECT_EQ(h.mean(), 0.0);
}

TEST(LatencyHistogram, SmallValuesAreExact)
{
    LatencyHistogram h;
    for (uint64_t v = 0; v < 32; ++v)
        h.record(v);
    EXPECT_EQ(h.count(), 32u);
    EXPECT_EQ(h.maxValue(), 31u);
    // Below 32 every value has its own bucket, so percentiles are
    // exact: the k-th of 32 samples is value k-1.
    EXPECT_EQ(h.percentile(50.0), 15u);
    EXPECT_EQ(h.percentile(100.0), 31u);
}

TEST(LatencyHistogram, LargeValuesStayWithinRelativeError)
{
    LatencyHistogram h;
    const std::vector<uint64_t> values = {100,    1'000,   10'000,
                                          55'555, 123'456, 9'999'999};
    for (const uint64_t v : values)
        h.record(v);
    EXPECT_EQ(h.count(), values.size());
    EXPECT_EQ(h.maxValue(), 9'999'999u);
    // Reported from the bucket ceiling: never below the true value,
    // and within the layout's ~1/32 relative error above it.
    for (size_t i = 0; i < values.size(); ++i) {
        // Aim mid-rank so float rounding can't tip ceil() over to the
        // next sample: pct maps to target rank i+1 exactly.
        const double pct = 100.0 * ((double)i + 0.5) / values.size();
        const uint64_t got = h.percentile(pct);
        EXPECT_GE(got, values[i]) << "p" << pct;
        EXPECT_LE(got, values[i] + values[i] / 16 + 1) << "p" << pct;
    }
}

TEST(LatencyHistogram, PercentileNeverExceedsObservedMax)
{
    LatencyHistogram h;
    h.record(1'000'000);
    // 1e6 rounds up to its bucket ceiling, but the report is clamped
    // to the observed max so p100 is honest.
    EXPECT_EQ(h.percentile(100.0), 1'000'000u);
    EXPECT_EQ(h.percentile(50.0), 1'000'000u);
}

TEST(LatencyHistogram, MergeMatchesCombinedRecording)
{
    LatencyHistogram a, b, both;
    for (uint64_t v = 1; v <= 1000; ++v) {
        ((v % 2) ? a : b).record(v * 17);
        both.record(v * 17);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), both.count());
    EXPECT_EQ(a.maxValue(), both.maxValue());
    EXPECT_EQ(a.mean(), both.mean());
    for (const double pct : {10.0, 50.0, 90.0, 99.0, 100.0})
        EXPECT_EQ(a.percentile(pct), both.percentile(pct)) << pct;
}

TEST(LatencyHistogram, MeanIsExactNotBucketed)
{
    LatencyHistogram h;
    h.record(1'000);
    h.record(3'000);
    EXPECT_EQ(h.mean(), 2'000.0);
}

// ---------------------------------------------------------------------
// Open-loop latency model.

TEST(OpenLoop, KeepingUpMeansLatencyEqualsService)
{
    // Service faster than the arrival interval: no queueing, open-loop
    // latency IS the service time.
    const std::vector<uint64_t> service(100, 500);
    const auto lat = openLoopLatencies(service, 1'000);
    ASSERT_EQ(lat.size(), service.size());
    for (const uint64_t l : lat)
        EXPECT_EQ(l, 500u);
}

TEST(OpenLoop, SteadyOverloadAccumulatesQueueingDelay)
{
    // Service 2x slower than arrivals: request i starts i*1000us late.
    const std::vector<uint64_t> service(50, 2'000);
    const auto lat = openLoopLatencies(service, 1'000);
    ASSERT_EQ(lat.size(), 50u);
    EXPECT_EQ(lat.front(), 2'000u);
    // latency_i = service + i * (service - interval)
    EXPECT_EQ(lat[10], 2'000u + 10u * 1'000u);
    EXPECT_EQ(lat.back(), 2'000u + 49u * 1'000u);
}

/** The coordinated-omission demonstration: one 100ms stall in an
    otherwise fast stream.  A closed-loop generator records the stall
    in exactly ONE sample (it stopped sending while the server was
    stuck), so p99 looks healthy; the open-loop accounting charges the
    stall to every request scheduled behind it. */
TEST(OpenLoop, CoordinatedOmissionHidesAStallClosedLoopOnly)
{
    constexpr uint64_t kIntervalUs = 1'000;  // 1000 req/s schedule
    constexpr uint64_t kFastUs = 100;
    constexpr uint64_t kStallUs = 100'000;  // one 100ms pause
    std::vector<uint64_t> service(1'000, kFastUs);
    service[200] = kStallUs;

    // Closed loop: latency == service time, nothing queues because the
    // generator waits for each reply before sending the next request.
    std::vector<uint64_t> closed = service;
    std::sort(closed.begin(), closed.end());
    const uint64_t closed_p99 = closed[(size_t)(0.99 * closed.size())];

    std::vector<uint64_t> open = openLoopLatencies(service, kIntervalUs);
    std::sort(open.begin(), open.end());
    const uint64_t open_p99 = open[(size_t)(0.99 * open.size())];

    // The closed loop swears the tail is fine...
    EXPECT_EQ(closed_p99, kFastUs);
    // ...while ~100 requests scheduled during the stall each waited a
    // large fraction of it: the honest p99 is ~1000x the closed one.
    EXPECT_GT(open_p99, 50 * closed_p99);
    EXPECT_GE(open.back(), kStallUs);

    // And the histogram pipeline preserves the story end to end.
    LatencyHistogram closed_h, open_h;
    for (const uint64_t v : service)
        closed_h.record(v);
    for (const uint64_t v : openLoopLatencies(service, kIntervalUs))
        open_h.record(v);
    EXPECT_GT(open_h.percentile(99.0), 50 * closed_h.percentile(99.0));
}

} // namespace
} // namespace tarch::serve
