// End-to-end tests of the Typed Architecture extension and the Checked
// Load extension running real guest code: tld/tsd layouts, polymorphic
// xadd/xsub/xmul with TRT hits and type mispredictions, tchk, thdl,
// tget/tset, overflow-induced misses, and chklb.

#include <gtest/gtest.h>

#include "assembler/assembler.h"
#include "core/core.h"
#include "typed/type_rule_table.h"

namespace tarch::core {
namespace {

constexpr uint8_t kLuaInt = 0x13;
constexpr uint8_t kLuaFlt = 0x83;

// Assembly prologue configuring the Lua layout (Table 4) and a TRT with
// the paper's Table 5 rules, using only guest instructions.
const char *kLuaSetup = R"(
        # R_offset = 0b001 (tag in next dword), shift 0, mask 0xFF
        li t0, 1
        setoffset t0
        li t0, 0
        setshift t0
        li t0, 0xFF
        setmask t0
        # TRT rules: (add|sub|mul, Int, Int -> Int), (.., Flt, Flt -> Flt)
        li t0, 0x00131313
        set_trt t0
        li t0, 0x01131313
        set_trt t0
        li t0, 0x02131313
        set_trt t0
        li t0, 0x00838383
        set_trt t0
        li t0, 0x01838383
        set_trt t0
        li t0, 0x02838383
        set_trt t0
)";

struct R {
    Core core;
    int exitCode;

    explicit R(const std::string &src, OverflowMode ovf = OverflowMode::Off)
        : core([&] {
              CoreConfig cfg;
              cfg.overflowMode = ovf;
              return cfg;
          }())
    {
        core.loadProgram(assembler::assemble(src));
        exitCode = core.run();
    }

    uint64_t a(unsigned n) { return core.regs().gpr(isa::reg::a0 + n).v; }
};

TEST(TypedCore, TldLoadsValueAndTagLuaLayout)
{
    R r(std::string(kLuaSetup) + R"(
        la a1, slot
        tld a2, 0(a1)
        tget a0, a2           # read tag back
        halt
        .data
slot:   .dword 42
        .dword 0x13           # tag byte in next dword
    )");
    EXPECT_EQ(r.a(0), kLuaInt);
    EXPECT_EQ(r.a(2), 42u);
    EXPECT_EQ(r.core.regs().gpr(isa::reg::a2).t, kLuaInt);
    EXPECT_FALSE(r.core.regs().gpr(isa::reg::a2).f);
}

TEST(TypedCore, XaddIntFastPath)
{
    R r(std::string(kLuaSetup) + R"(
        la a1, s1
        la a2, s2
        la a3, dst
        thdl slow
        tld a4, 0(a1)
        tld a5, 0(a2)
        xadd a6, a4, a5
        tsd a6, 0(a3)
        ld a0, 0(a3)          # value written
        lbu a7, 8(a3)         # tag written
        halt
slow:   li a0, 999
        halt
        .data
s1:     .dword 30
        .dword 0x13
s2:     .dword 12
        .dword 0x13
dst:    .dword 0, 0
    )");
    EXPECT_EQ(r.a(0), 42u);
    EXPECT_EQ(r.a(7), kLuaInt);
    const auto stats = r.core.collectStats();
    EXPECT_EQ(stats.trt.lookups, 1u);
    EXPECT_EQ(stats.trt.hits, 1u);
}

TEST(TypedCore, XaddFloatBindsToFpDatapath)
{
    R r(std::string(kLuaSetup) + R"(
        la a1, s1
        la a2, s2
        la a3, dst
        thdl slow
        tld a4, 0(a1)
        tld a5, 0(a2)
        xadd a6, a4, a5
        tsd a6, 0(a3)
        fld f1, 0(a3)
        la a7, expect
        fld f2, 0(a7)
        feq.d a0, f1, f2
        lbu a1, 8(a3)
        halt
slow:   li a0, 999
        halt
        .data
s1:     .double 1.25
        .dword 0x83
s2:     .double 2.5
        .dword 0x83
dst:    .dword 0, 0
expect: .double 3.75
    )");
    EXPECT_EQ(r.a(0), 1u) << "fp add wrong";
    EXPECT_EQ(r.a(1), kLuaFlt);
}

TEST(TypedCore, MixedTypesTakeSlowPath)
{
    R r(std::string(kLuaSetup) + R"(
        la a1, s1
        la a2, s2
        thdl slow
        tld a4, 0(a1)
        tld a5, 0(a2)
        xadd a6, a4, a5
        li a0, 0              # skipped on type miss
        halt
slow:   li a0, 777
        halt
        .data
s1:     .dword 30
        .dword 0x13
s2:     .double 1.5
        .dword 0x83
    )");
    EXPECT_EQ(r.a(0), 777u);
    const auto stats = r.core.collectStats();
    EXPECT_EQ(stats.trt.misses(), 1u);
}

TEST(TypedCore, UntypedOperandsMissTheTrt)
{
    R r(std::string(kLuaSetup) + R"(
        thdl slow
        li a4, 30             # untyped write
        li a5, 12
        xadd a6, a4, a5
        li a0, 0
        halt
slow:   li a0, 555
        halt
    )");
    EXPECT_EQ(r.a(0), 555u);
}

TEST(TypedCore, XsubXmulWork)
{
    R r(std::string(kLuaSetup) + R"(
        la a1, s1
        la a2, s2
        thdl slow
        tld a4, 0(a1)
        tld a5, 0(a2)
        xsub a6, a4, a5
        xmul a7, a4, a5
        mv a0, a6
        halt
slow:   li a0, 999
        halt
        .data
s1:     .dword 30
        .dword 0x13
s2:     .dword 12
        .dword 0x13
    )");
    EXPECT_EQ(r.a(0), 18u);
    EXPECT_EQ(r.a(7), 360u);
    EXPECT_EQ(r.core.regs().gpr(isa::reg::a7).t, kLuaInt);
}

TEST(TypedCore, TchkHitContinuesMissRedirects)
{
    R r(std::string(kLuaSetup) + R"(
        # add a tchk rule: (Table=0x05, Int=0x13) -> Table
        li t0, 0x03051305
        set_trt t0
        thdl slow
        la a1, tab
        la a2, key
        tld a3, 0(a1)
        tld a4, 0(a2)
        tchk a3, a4           # hits
        li a0, 1
        tchk a4, a3           # (Int, Table): no rule -> slow path
        li a0, 0
        halt
slow:   addi a0, a0, 100
        halt
        .data
tab:    .dword 0x2000
        .dword 0x05
key:    .dword 3
        .dword 0x13
    )");
    EXPECT_EQ(r.a(0), 101u);
}

TEST(TypedCore, TsetWritesTagOnly)
{
    R r(R"(
        li a1, 42
        li a2, 0x83
        tset a1, a2           # a1.t = 0x83, value untouched
        tget a0, a1
        halt
    )");
    EXPECT_EQ(r.a(0), 0x83u);
    EXPECT_EQ(r.a(1), 42u);
    EXPECT_TRUE(r.core.regs().gpr(isa::reg::a1).f);  // MSB set -> FP
}

TEST(TypedCore, FlushTrtDropsRules)
{
    R r(std::string(kLuaSetup) + R"(
        flush_trt
        thdl slow
        la a1, s1
        tld a4, 0(a1)
        xadd a6, a4, a4
        li a0, 0
        halt
slow:   li a0, 321
        halt
        .data
s1:     .dword 1
        .dword 0x13
    )");
    EXPECT_EQ(r.a(0), 321u);
    EXPECT_EQ(r.core.trt().size(), 0u);
}

// ------------------------------------------------------------------
// NaN-boxing (SpiderMonkey) layout.

const char *kJsSetup = R"(
        li t0, 4              # R_offset = 0b100: NaN detect, same dword
        setoffset t0
        li t0, 47
        setshift t0
        li t0, 0x0F
        setmask t0
        # TRT: (add, Int(1), Int(1)) -> Int; (add, Flt(0xFF), Flt) -> Flt
        li t0, 0x00010101
        set_trt t0
        li t0, 0x00FFFFFF
        set_trt t0
)";

TEST(TypedCoreJs, BoxedIntRoundTrip)
{
    R r(std::string(kJsSetup) + R"(
        la a1, v1
        la a2, v2
        la a3, dst
        thdl slow
        tld a4, 0(a1)
        tld a5, 0(a2)
        xadd a6, a4, a5
        tsd a6, 0(a3)
        ld a0, 0(a3)
        halt
slow:   li a0, 1
        halt
        .data
v1:     .dword 0xFFF880000000000A   # boxed int 10
v2:     .dword 0xFFF8800000000020   # boxed int 32
dst:    .dword 0
    )",
        OverflowMode::Int32);
    // Result must be boxed 42.
    EXPECT_EQ(r.a(0), 0xFFF8800000000000ULL + 42);
}

TEST(TypedCoreJs, PlainDoublesUseFpPath)
{
    R r(std::string(kJsSetup) + R"(
        la a1, v1
        la a3, dst
        thdl slow
        tld a4, 0(a1)
        tld a5, 8(a1)
        xadd a6, a4, a5
        tsd a6, 0(a3)
        fld f1, 0(a3)
        la a2, expect
        fld f2, 0(a2)
        feq.d a0, f1, f2
        halt
slow:   li a0, 99
        halt
        .data
v1:     .double 1.5, 2.25
dst:    .dword 0
expect: .double 3.75
    )",
        OverflowMode::Int32);
    EXPECT_EQ(r.a(0), 1u);
}

TEST(TypedCoreJs, Int32OverflowTriggersTypeMiss)
{
    R r(std::string(kJsSetup) + R"(
        la a1, v1
        thdl slow
        tld a4, 0(a1)
        tld a5, 8(a1)
        xadd a6, a4, a5      # INT32_MAX + 1 overflows
        li a0, 0
        halt
slow:   li a0, 42
        halt
        .data
v1:     .dword 0xFFF880007FFFFFFF   # boxed INT32_MAX
        .dword 0xFFF8800000000001   # boxed 1
    )",
        OverflowMode::Int32);
    EXPECT_EQ(r.a(0), 42u);
    EXPECT_EQ(r.core.collectStats().typeOverflowMisses, 1u);
}

TEST(TypedCoreJs, NegativeBoxedIntArithmetic)
{
    R r(std::string(kJsSetup) + R"(
        la a1, v1
        la a3, dst
        thdl slow
        tld a4, 0(a1)
        tld a5, 8(a1)
        xadd a6, a4, a5      # 10 + (-7) = 3
        tsd a6, 0(a3)
        ld a0, 0(a3)
        halt
slow:   li a0, 1
        halt
        .data
v1:     .dword 0xFFF880000000000A   # boxed 10
        .dword 0xFFF88000FFFFFFF9   # boxed -7
dst:    .dword 0
    )",
        OverflowMode::Int32);
    EXPECT_EQ(r.a(0), 0xFFF8800000000003ULL);
}

// ------------------------------------------------------------------
// Checked Load extension.

TEST(CheckedLoad, HitContinues)
{
    R r(R"(
        li t0, 0x13
        settype t0
        thdl slow
        la a1, slot
        chklb a2, 8(a1)       # tag matches
        ld a0, 0(a1)
        halt
slow:   li a0, 0
        halt
        .data
slot:   .dword 77
        .byte 0x13
    )");
    EXPECT_EQ(r.a(0), 77u);
    const auto stats = r.core.collectStats();
    EXPECT_EQ(stats.chklbChecks, 1u);
    EXPECT_EQ(stats.chklbMisses, 0u);
}

TEST(CheckedLoad, MismatchRedirectsToHandler)
{
    R r(R"(
        li t0, 0x13
        settype t0
        thdl slow
        la a1, slot
        chklb a2, 8(a1)       # tag is Float -> miss
        li a0, 0
        halt
slow:   li a0, 5
        halt
        .data
slot:   .double 1.5
        .byte 0x83
    )");
    EXPECT_EQ(r.a(0), 5u);
    EXPECT_EQ(r.core.collectStats().chklbMisses, 1u);
}

// ------------------------------------------------------------------
// Timing interactions.

TEST(TypedCoreTiming, TypeMissPaysRedirectPenalty)
{
    // Same instruction counts; one version type-misses every iteration.
    const std::string hit_src = std::string(kLuaSetup) + R"(
        la a1, s1
        li a2, 2000
        thdl slow
l:      tld a4, 0(a1)
        xadd a5, a4, a4
slow:   addi a2, a2, -1
        bnez a2, l
        halt
        .data
s1:     .dword 5
        .dword 0x13
    )";
    const std::string miss_src = std::string(kLuaSetup) + R"(
        la a1, s1
        li a2, 2000
        thdl slow
l:      tld a4, 0(a1)
        xadd a5, a4, a4
slow:   addi a2, a2, -1
        bnez a2, l
        halt
        .data
s1:     .dword 5
        .dword 0x44            # no TRT rule for tag 0x44
    )";
    R hit(hit_src);
    R miss(miss_src);
    const auto sh = hit.core.collectStats();
    const auto sm = miss.core.collectStats();
    EXPECT_EQ(sh.instructions, sm.instructions);
    EXPECT_EQ(sm.trt.misses(), 2000u);
    EXPECT_GT(sm.cycles, sh.cycles + 2 * 1900);
}

} // namespace
} // namespace tarch::core
