// End-to-end tests of the baseline core: assemble small guest programs,
// run them, and check architectural results, guest output, and timing
// model sanity.

#include <gtest/gtest.h>

#include "assembler/assembler.h"
#include "common/log.h"
#include "core/core.h"

namespace tarch::core {
namespace {

struct RunResult {
    int exitCode;
    CoreStats stats;
    std::string output;
    uint64_t a0;
};

RunResult
runAsm(const std::string &src, const CoreConfig &cfg = {},
       const HostcallRegistry *hostcalls = nullptr)
{
    Core core(cfg, hostcalls);
    core.loadProgram(assembler::assemble(src));
    const int code = core.run();
    return {code, core.collectStats(), core.output(),
            core.regs().gpr(isa::reg::a0).v};
}

TEST(Core, HaltStopsExecution)
{
    const auto r = runAsm("halt");
    EXPECT_EQ(r.exitCode, 0);
    EXPECT_EQ(r.stats.instructions, 1u);
}

TEST(Core, IntegerArithmetic)
{
    const auto r = runAsm(R"(
        li a0, 7
        li a1, 5
        add a2, a0, a1
        sub a3, a0, a1
        mul a4, a0, a1
        div a5, a0, a1
        rem a6, a0, a1
        add a0, a2, a3     # 12 + 2
        add a0, a0, a4     # + 35
        add a0, a0, a5     # + 1
        add a0, a0, a6     # + 2
        halt
    )");
    EXPECT_EQ(r.a0, 12u + 2 + 35 + 1 + 2);
}

TEST(Core, RiscvDivisionEdgeCases)
{
    const auto r = runAsm(R"(
        li a1, 5
        li a2, 0
        div a0, a1, a2      # div by zero -> -1
        halt
    )");
    EXPECT_EQ(static_cast<int64_t>(r.a0), -1);
}

TEST(Core, WordArithmeticSignExtends)
{
    const auto r = runAsm(R"(
        li a1, 0x7FFFFFFF
        li a2, 1
        addw a0, a1, a2     # wraps to INT32_MIN, sign extended
        halt
    )");
    EXPECT_EQ(static_cast<int64_t>(r.a0),
              static_cast<int64_t>(INT32_MIN));
}

TEST(Core, ShiftsAndLogic)
{
    const auto r = runAsm(R"(
        li a1, 0xF0
        slli a2, a1, 8      # 0xF000
        srli a3, a2, 4      # 0x0F00
        li a4, -16
        srai a5, a4, 2      # -4
        and a6, a2, a3      # 0
        or a0, a3, a6
        add a0, a0, a5
        halt
    )");
    EXPECT_EQ(r.a0, 0x0F00u - 4);
}

TEST(Core, LoadsAndStoresAllWidths)
{
    const auto r = runAsm(R"(
        la a1, buf
        li a2, -2
        sb a2, 0(a1)
        lb a3, 0(a1)        # -2
        lbu a4, 0(a1)       # 254
        li a2, 0x8000
        sh a2, 8(a1)
        lh a5, 8(a1)        # negative
        lhu a6, 8(a1)       # 0x8000
        add a0, a3, a4      # 252
        add a0, a0, a6      # + 0x8000
        halt
        .data
buf:    .space 16
    )");
    EXPECT_EQ(r.a0, 252u + 0x8000);
    EXPECT_EQ(r.stats.loads, 4u);
    EXPECT_EQ(r.stats.stores, 2u);
}

TEST(Core, DwordLoadStore)
{
    const auto r = runAsm(R"(
        la a1, buf
        li a2, 0x123456789
        sd a2, 0(a1)
        ld a0, 0(a1)
        halt
        .data
buf:    .dword 0
    )");
    EXPECT_EQ(r.a0, 0x123456789ULL);
}

TEST(Core, LoopComputesSum)
{
    const auto r = runAsm(R"(
        li a0, 0
        li a1, 1
        li a2, 101
loop:   add a0, a0, a1
        addi a1, a1, 1
        bne a1, a2, loop
        halt
    )");
    EXPECT_EQ(r.a0, 5050u);
}

TEST(Core, CallAndReturn)
{
    const auto r = runAsm(R"(
_start: li a0, 20
        call double_it
        call double_it
        halt
double_it:
        add a0, a0, a0
        ret
    )");
    EXPECT_EQ(r.a0, 80u);
}

TEST(Core, RecursiveFibonacciOnStack)
{
    const auto r = runAsm(R"(
_start: li a0, 10
        call fib
        halt
fib:    li t0, 2
        blt a0, t0, fib_base
        addi sp, sp, -16
        sd ra, 0(sp)
        sd a0, 8(sp)
        addi a0, a0, -1
        call fib
        ld t0, 8(sp)
        sd a0, 8(sp)
        addi a0, t0, -2
        call fib
        ld t0, 8(sp)
        add a0, a0, t0
        ld ra, 0(sp)
        addi sp, sp, 16
fib_base:
        ret
    )");
    EXPECT_EQ(r.a0, 55u);
}

TEST(Core, FloatingPoint)
{
    const auto r = runAsm(R"(
        la a1, vals
        fld f1, 0(a1)
        fld f2, 8(a1)
        fadd.d f3, f1, f2
        fmul.d f4, f1, f2
        fdiv.d f5, f4, f2       # back to f1
        fsqrt.d f6, f2          # 2.0
        feq.d a2, f5, f1
        flt.d a3, f1, f2
        fle.d a4, f2, f2
        add a0, a2, a3
        add a0, a0, a4
        halt
        .data
vals:   .double 1.5, 4.0
    )");
    EXPECT_EQ(r.a0, 3u);
}

TEST(Core, FpConversions)
{
    const auto r = runAsm(R"(
        li a1, -3
        fcvt.d.l f1, a1
        la a2, c
        fld f2, 0(a2)
        fadd.d f3, f1, f2       # -3.0 + 2.75 = -0.25
        fcvt.l.d a0, f3         # trunc -> 0
        fcvt.l.d a4, f1         # -3
        add a0, a0, a4
        halt
        .data
c:      .double 2.75
    )");
    EXPECT_EQ(static_cast<int64_t>(r.a0), -3);
}

TEST(Core, FmvMovesRawBits)
{
    const auto r = runAsm(R"(
        li a1, 0x3FF0000000000000   # 1.0
        fmv.d.x f1, a1
        fmv.d f2, f1
        fmv.x.d a0, f2
        halt
    )");
    EXPECT_EQ(r.a0, 0x3FF0000000000000ULL);
}

TEST(Core, SyscallOutput)
{
    const auto r = runAsm(R"(
        li a0, 'H'
        sys 1
        li a0, 'i'
        sys 1
        li a0, 10
        sys 1
        li a0, -42
        sys 2
        la a0, msg
        sys 4
        li a0, 0
        sys 0
        .data
msg:    .asciiz "!ok"
    )");
    EXPECT_EQ(r.output, "Hi\n-42!ok");
    EXPECT_EQ(r.exitCode, 0);
}

TEST(Core, ExitCodePropagates)
{
    const auto r = runAsm(R"(
        li a0, 3
        sys 0
    )");
    EXPECT_EQ(r.exitCode, 3);
}

TEST(Core, HostcallInvokesRegistryAndChargesCost)
{
    HostcallRegistry reg;
    reg.add(7, "answer", {100, 200}, [](HostEnv &env) {
        env.regs.writeGpr(isa::reg::a0, 42);
    });
    Core core({}, &reg);
    core.loadProgram(assembler::assemble("hcall 7\nhalt"));
    core.run();
    EXPECT_EQ(core.regs().gpr(isa::reg::a0).v, 42u);
    const auto stats = core.collectStats();
    EXPECT_EQ(stats.hostcalls, 1u);
    // 2 real instructions + 100 charged.
    EXPECT_EQ(stats.instructions, 102u);
    EXPECT_GE(stats.cycles, 200u);
}

TEST(Core, PcOutOfRangeIsFatal)
{
    Core core;
    core.loadProgram(assembler::assemble("jr zero"));
    EXPECT_THROW(core.run(), FatalError);
}

TEST(Core, InstructionLimitGuards)
{
    CoreConfig cfg;
    cfg.maxInstructions = 1000;
    Core core(cfg);
    core.loadProgram(assembler::assemble("spin: j spin"));
    EXPECT_THROW(core.run(), FatalError);
}

TEST(Core, SelfModifyingStoreIsObservedByTheVeryNextFetch)
{
    // Patch an ALREADY-EXECUTED pc (the loop body's addi) and loop back
    // over it: the second fetch of 'slot' must execute the new
    // encoding, under BOTH execution engines, with identical stats
    // (the predecoded engine had 'slot' cached in the live block; see
    // docs/FASTPATH.md for the invalidation contract).
    constexpr const char *src = R"(
_start: li a0, 0
        li a2, 0
slot:   addi a0, a0, 1
        bnez a2, done
        la t0, donor
        lw t1, 0(t0)
        la t2, slot
        sw t1, 0(t2)
        li a2, 1
        j slot
done:   halt
donor:  addi a0, a0, 7
)";
    CoreStats stats[2];
    for (const ExecMode mode : {ExecMode::Exact, ExecMode::Predecoded}) {
        CoreConfig cfg;
        cfg.execMode = mode;
        Core core(cfg);
        core.loadProgram(assembler::assemble(src));
        EXPECT_EQ(core.run(), 0) << execModeName(mode);
        // First pass adds 1, patched second pass adds 7.
        EXPECT_EQ(core.regs().gpr(isa::reg::a0).v, 8u) << execModeName(mode);
        stats[mode == ExecMode::Predecoded] = core.collectStats();
    }
    EXPECT_EQ(describeStatsDiff(stats[0], stats[1]), "");
}

TEST(Core, MarkersCountHandlerVisits)
{
    Core core;
    const auto program = assembler::assemble(R"(
        li a1, 10
loop:   addi a1, a1, -1
        bnez a1, loop
        halt
    )");
    core.markers().add(program.symbol("loop"), "loop_head");
    core.loadProgram(program);
    core.run();
    EXPECT_EQ(core.markers().hitsByName("loop_head"), 10u);
}

// ------------------------------------------------------------------
// Timing sanity.

TEST(CoreTiming, CyclesAtLeastInstructions)
{
    const auto r = runAsm(R"(
        li a1, 100
l:      addi a1, a1, -1
        bnez a1, l
        halt
    )");
    EXPECT_GE(r.stats.cycles, r.stats.instructions);
}

TEST(CoreTiming, LoadUseStallCosts)
{
    // Two versions of the same work; the dependent-load version must be
    // slower by roughly one cycle per iteration.
    const std::string dep = R"(
        la a1, buf
        li a2, 1000
l:      ld a3, 0(a1)
        add a4, a3, a3     # immediately uses the load
        addi a2, a2, -1
        bnez a2, l
        halt
        .data
buf:    .dword 1
    )";
    const std::string indep = R"(
        la a1, buf
        li a2, 1000
l:      ld a3, 0(a1)
        addi a2, a2, -1    # independent filler
        add a4, a3, a3
        bnez a2, l
        halt
        .data
buf:    .dword 1
    )";
    const auto r1 = runAsm(dep);
    const auto r2 = runAsm(indep);
    EXPECT_EQ(r1.stats.instructions, r2.stats.instructions);
    EXPECT_GT(r1.stats.cycles, r2.stats.cycles);
    EXPECT_NEAR(static_cast<double>(r1.stats.cycles - r2.stats.cycles),
                1000.0, 60.0);
}

TEST(CoreTiming, MispredictsCostCycles)
{
    // A data-dependent unpredictable branch pattern (LCG parity) vs. an
    // always-taken pattern of the same instruction count.
    const std::string noisy = R"(
        li a1, 12345
        li a2, 2000
        li a5, 1103515245
        li a6, 12345
l:      mul a1, a1, a5
        add a1, a1, a6
        srli a3, a1, 16
        andi a3, a3, 1
        beqz a3, skip
        nop
skip:   addi a2, a2, -1
        bnez a2, l
        halt
    )";
    const auto r = runAsm(noisy);
    EXPECT_GT(r.stats.branches.condMispredicts, 400u);
    EXPECT_GE(r.stats.cycles,
              r.stats.instructions + r.stats.branches.condMispredicts);
}

TEST(CoreTiming, IcacheColdMissesCounted)
{
    const auto r = runAsm(R"(
        li a1, 3
l:      addi a1, a1, -1
        bnez a1, l
        halt
    )");
    EXPECT_GE(r.stats.icache.misses, 1u);
    EXPECT_LE(r.stats.icache.misses, 2u);
    EXPECT_GT(r.stats.icache.accesses, 5u);
}

TEST(CoreTiming, DcacheMissesOnLargeStride)
{
    const auto r = runAsm(R"(
        li a1, 0x200000
        li a2, 512
l:      ld a3, 0(a1)
        addi a1, a1, 4096     # new block (and page) every time
        addi a2, a2, -1
        bnez a2, l
        halt
    )");
    EXPECT_GE(r.stats.dcache.misses, 500u);
    EXPECT_GT(r.stats.dtlb.misses, 400u);
    EXPECT_GT(r.stats.cycles, r.stats.instructions + 500 * 10);
}

} // namespace
} // namespace tarch::core
