// Unit + property tests for src/isa: opcode metadata, register naming,
// encode/decode round-trips, disassembly.

#include <gtest/gtest.h>

#include "isa/disasm.h"
#include "isa/encoding.h"
#include "isa/instr.h"
#include "isa/opcode.h"

namespace tarch::isa {
namespace {

TEST(OpcodeTable, EveryOpcodeHasAMnemonic)
{
    for (unsigned i = 0; i < kNumOpcodes; ++i) {
        const auto &info = opcodeInfo(static_cast<Opcode>(i));
        EXPECT_FALSE(info.mnemonic.empty()) << "opcode index " << i;
    }
}

TEST(OpcodeTable, MnemonicLookupIsInverse)
{
    for (unsigned i = 0; i < kNumOpcodes; ++i) {
        const auto op = static_cast<Opcode>(i);
        const auto found = opcodeFromMnemonic(opcodeInfo(op).mnemonic);
        ASSERT_TRUE(found.has_value());
        EXPECT_EQ(*found, op);
    }
    EXPECT_FALSE(opcodeFromMnemonic("bogus").has_value());
}

TEST(OpcodeTable, Classification)
{
    EXPECT_TRUE(isLoad(Opcode::LD));
    EXPECT_TRUE(isLoad(Opcode::TLD));
    EXPECT_TRUE(isLoad(Opcode::CHKLB));
    EXPECT_FALSE(isLoad(Opcode::SD));
    EXPECT_TRUE(isStore(Opcode::TSD));
    EXPECT_TRUE(isStore(Opcode::FSD));
    EXPECT_TRUE(isCondBranch(Opcode::BLTU));
    EXPECT_FALSE(isCondBranch(Opcode::JAL));
}

TEST(Registers, AbiNames)
{
    EXPECT_EQ(gprName(0), "zero");
    EXPECT_EQ(gprName(1), "ra");
    EXPECT_EQ(gprName(2), "sp");
    EXPECT_EQ(gprName(10), "a0");
    EXPECT_EQ(gprName(31), "t6");
    EXPECT_EQ(parseGpr("zero"), 0u);
    EXPECT_EQ(parseGpr("x13"), 13u);
    EXPECT_EQ(parseGpr("fp"), 8u);
    EXPECT_EQ(parseGpr("s11"), 27u);
    EXPECT_FALSE(parseGpr("x32").has_value());
    EXPECT_FALSE(parseGpr("q1").has_value());
}

TEST(Registers, FprNames)
{
    EXPECT_EQ(parseFpr("f0"), 0u);
    EXPECT_EQ(parseFpr("f31"), 31u);
    EXPECT_EQ(parseFpr("ft0"), 0u);
    EXPECT_EQ(parseFpr("ft8"), 28u);
    EXPECT_EQ(parseFpr("fa0"), 10u);
    EXPECT_EQ(parseFpr("fs0"), 8u);
    EXPECT_EQ(parseFpr("fs2"), 18u);
    EXPECT_FALSE(parseFpr("f32").has_value());
}

// ---------------------------------------------------------------------
// Property-style round-trip across all opcodes and several operand
// patterns per format.

struct EncodeCase {
    uint8_t rd, rs1, rs2;
    int64_t imm_small;
};

class EncodeRoundTrip : public ::testing::TestWithParam<unsigned> {};

TEST_P(EncodeRoundTrip, EncodeDecodeIdentity)
{
    const auto op = static_cast<Opcode>(GetParam());
    const auto &info = opcodeInfo(op);
    const int64_t imms_i[] = {0, 1, -1, 100, -100, 16383, -16384};
    const int64_t imms_b[] = {0, 4, -4, 400, -400, 65532, -65536};
    const int64_t imms_u[] = {0, 1, -1, 524287, -524288};

    for (uint8_t rd : {0, 1, 15, 31}) {
        for (uint8_t rs : {0, 7, 31}) {
            Instr instr;
            instr.op = op;
            switch (info.format) {
              case Format::R:
                instr.rd = rd; instr.rs1 = rs; instr.rs2 = 13;
                break;
              case Format::I:
                instr.rd = rd; instr.rs1 = rs;
                instr.imm = imms_i[(rd + rs) % 7];
                break;
              case Format::S:
                instr.rs1 = rs; instr.rs2 = rd;
                instr.imm = imms_i[(rd + rs) % 7];
                break;
              case Format::B:
                instr.rs1 = rs; instr.rs2 = rd;
                instr.imm = imms_b[(rd + rs) % 7];
                break;
              case Format::U:
                instr.rd = rd; instr.imm = imms_u[(rd + rs) % 5];
                break;
              case Format::J:
                instr.rd = rd;
                instr.imm = imms_b[(rd + rs) % 7] * 8;
                break;
              case Format::N:
                break;
            }
            const auto word = encode(instr);
            ASSERT_TRUE(word.has_value())
                << disassemble(instr) << " imm=" << instr.imm;
            const auto back = decode(*word);
            ASSERT_TRUE(back.has_value());
            EXPECT_EQ(*back, instr) << disassemble(instr);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, EncodeRoundTrip,
                         ::testing::Range(0u, kNumOpcodes));

TEST(Encoding, RejectsOutOfRangeImmediates)
{
    Instr instr{Opcode::ADDI, 1, 2, 0, 1 << 20};
    EXPECT_FALSE(encode(instr).has_value());
    instr = {Opcode::BEQ, 0, 1, 2, 1 << 20};
    EXPECT_FALSE(encode(instr).has_value());
    instr = {Opcode::BEQ, 0, 1, 2, 6};  // misaligned branch offset
    EXPECT_FALSE(encode(instr).has_value());
}

TEST(Encoding, DecodeRejectsBadOpcodeField)
{
    EXPECT_FALSE(decode(0x7F).has_value());
}

TEST(Disasm, RendersRepresentativeForms)
{
    EXPECT_EQ(disassemble({Opcode::ADD, 10, 11, 12, 0}), "add a0, a1, a2");
    EXPECT_EQ(disassemble({Opcode::LD, 10, 2, 0, 16}), "ld a0, 16(sp)");
    EXPECT_EQ(disassemble({Opcode::SD, 0, 2, 10, -8}), "sd a0, -8(sp)");
    EXPECT_EQ(disassemble({Opcode::BEQ, 0, 10, 11, 8}),
              "beq a0, a1, pc+8");
    EXPECT_EQ(disassemble({Opcode::FADD_D, 1, 2, 3, 0}),
              "fadd.d f1, f2, f3");
    EXPECT_EQ(disassemble({Opcode::TLD, 10, 11, 0, 0}), "tld a0, 0(a1)");
    EXPECT_EQ(disassemble({Opcode::XADD, 5, 6, 7, 0}), "xadd t0, t1, t2");
    EXPECT_EQ(disassemble({Opcode::FLUSH_TRT, 0, 0, 0, 0}), "flush_trt");
    EXPECT_EQ(disassemble({Opcode::HCALL, 0, 0, 0, 7}), "hcall 7");
}

} // namespace
} // namespace tarch::isa
