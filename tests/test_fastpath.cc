// Tier-1 suite for the predecoded basic-block fast path
// (src/core/fastpath.*, docs/FASTPATH.md).
//
// Two layers:
//  1. Block-cache unit tests at the assembly level: hit/miss counters,
//     invalidation on stores into text and on typed-config writes,
//     deterministic capacity eviction, and the self-modifying-code
//     ordering contract (a patched word is observed by the very next
//     fetch).
//  2. The exhaustive equivalence matrix: every interpreter image
//     (2 engines x 3 ISA variants) x every Table-7 benchmark runs under
//     both execution engines and must produce bit-identical results —
//     all 26 CoreStats counters, the guest output, the exit code, and
//     the final architectural register files (64-bit value, type tag
//     and F/I bit of every GPR plus every FPR).

#include <gtest/gtest.h>

#include <string>

#include "assembler/assembler.h"
#include "common/log.h"
#include "core/core.h"
#include "core/stats.h"
#include "harness/benchmarks.h"
#include "harness/experiment.h"
#include "vm/js/js_vm.h"
#include "vm/lua/lua_vm.h"

namespace tarch::core {
namespace {

CoreConfig
modeConfig(ExecMode mode)
{
    CoreConfig cfg;
    cfg.execMode = mode;
    return cfg;
}

/** Run @p src under one mode; the Core is returned for inspection. */
std::unique_ptr<Core>
runAsm(const std::string &src, const CoreConfig &cfg)
{
    auto core = std::make_unique<Core>(cfg);
    core->loadProgram(assembler::assemble(src));
    core->run();
    return core;
}

/** Assert full architectural equality between two finished cores. */
void
expectSameMachineState(Core &exact, Core &predecoded)
{
    EXPECT_EQ(describeStatsDiff(exact.collectStats(),
                                predecoded.collectStats()),
              "");
    EXPECT_EQ(exact.output(), predecoded.output());
    EXPECT_EQ(exact.exitCode(), predecoded.exitCode());
    EXPECT_EQ(exact.pc(), predecoded.pc());
    for (unsigned r = 0; r < isa::kNumGprs; ++r) {
        const TaggedReg &a = exact.regs().gpr(r);
        const TaggedReg &b = predecoded.regs().gpr(r);
        EXPECT_EQ(a.v, b.v) << "x" << r;
        EXPECT_EQ(a.t, b.t) << "x" << r << " tag";
        EXPECT_EQ(a.f, b.f) << "x" << r << " f/i";
    }
    for (unsigned r = 0; r < isa::kNumFprs; ++r)
        EXPECT_EQ(exact.regs().fpr(r), predecoded.regs().fpr(r))
            << "f" << r;
}

/** Run @p src in both modes, demand bit-identity, return the fast one. */
std::unique_ptr<Core>
runBothModes(const std::string &src, CoreConfig cfg = {})
{
    cfg.execMode = ExecMode::Exact;
    auto exact = runAsm(src, cfg);
    cfg.execMode = ExecMode::Predecoded;
    auto predecoded = runAsm(src, cfg);
    expectSameMachineState(*exact, *predecoded);
    return predecoded;
}

constexpr const char *kCountingLoop = R"(
        li a0, 0
        li a1, 100
loop:   addi a0, a0, 1
        blt a0, a1, loop
        halt
)";

TEST(FastPath, LoopHitsTheBlockCache)
{
    const auto core = runBothModes(kCountingLoop);
    EXPECT_EQ(core->regs().gpr(isa::reg::a0).v, 100u);
    const fastpath::FastPathStats &fs = core->fastPathStats();
    // The loop body block is built once and replayed ~99 times.
    EXPECT_GE(fs.blockBuilds, 1u);
    EXPECT_GE(fs.blockHits, 90u);
    EXPECT_GE(core->blockCache().size(), 1u);
    EXPECT_EQ(fs.storeInvalidations, 0u);
    EXPECT_EQ(fs.configInvalidations, 0u);
    EXPECT_EQ(fs.capacityFlushes, 0u);
}

TEST(FastPath, ExactModeNeverTouchesTheBlockCache)
{
    const auto core = runAsm(kCountingLoop, modeConfig(ExecMode::Exact));
    EXPECT_EQ(core->fastPathStats().blockBuilds, 0u);
    EXPECT_EQ(core->fastPathStats().blockHits, 0u);
    EXPECT_EQ(core->blockCache().size(), 0u);
}

// A store into the text segment must flush the block cache AND be
// observed by the very next fetch, even though the clobbered pc was
// predecoded as part of the currently-executing block.
constexpr const char *kSelfPatch = R"(
_start: la t0, donor
        lw t1, 0(t0)
        la t2, target
        sw t1, 0(t2)
target: li a0, 111
        halt
donor:  li a0, 222
)";

TEST(FastPath, StoreIntoTextIsObservedByTheNextFetch)
{
    const auto core = runBothModes(kSelfPatch);
    EXPECT_EQ(core->regs().gpr(isa::reg::a0).v, 222u);
    EXPECT_GE(core->fastPathStats().storeInvalidations, 1u);
}

TEST(FastPath, StoreOutsideTextDoesNotInvalidate)
{
    const auto core = runBothModes(R"(
        la t0, buf
        li t1, 7
        sd t1, 0(t0)
        ld a0, 0(t0)
        halt
        .data
buf:    .dword 0
)");
    // buf lives in the data image past the last instruction word.
    EXPECT_EQ(core->regs().gpr(isa::reg::a0).v, 7u);
    EXPECT_EQ(core->fastPathStats().storeInvalidations, 0u);
}

TEST(FastPath, TypedConfigWriteFlushesTheBlockCache)
{
    const auto core = runBothModes(R"(
        li t0, 48
        setoffset t0
        li a0, 5
        halt
)");
    EXPECT_EQ(core->regs().gpr(isa::reg::a0).v, 5u);
    EXPECT_GE(core->fastPathStats().configInvalidations, 1u);
}

TEST(FastPath, CapacityEvictionFlushesDeterministically)
{
    CoreConfig cfg;
    cfg.fastPath.maxBlocks = 1;  // loop head + loop body cannot coexist
    const auto core = runBothModes(kCountingLoop, cfg);
    EXPECT_EQ(core->regs().gpr(isa::reg::a0).v, 100u);
    EXPECT_GE(core->fastPathStats().capacityFlushes, 1u);
    EXPECT_LE(core->blockCache().size(), 1u);
}

TEST(FastPath, UndecodablePatchedWordIsACleanFatalInBothModes)
{
    // Patch the target with an undecodable word; executing it must
    // throw FatalError (not crash) under either execution engine.
    constexpr const char *src = R"(
_start: li t1, -1
        la t2, target
        sw t1, 0(t2)
target: li a0, 111
        halt
)";
    for (const ExecMode mode : {ExecMode::Exact, ExecMode::Predecoded}) {
        Core core(modeConfig(mode));
        core.loadProgram(assembler::assemble(src));
        EXPECT_THROW(core.run(), FatalError) << execModeName(mode);
    }
}

TEST(FastPath, InstructionLimitTripsAtTheSamePoint)
{
    CoreConfig cfg;
    cfg.maxInstructions = 57;  // mid-block, to exercise the fallback
    for (const ExecMode mode : {ExecMode::Exact, ExecMode::Predecoded}) {
        cfg.execMode = mode;
        Core core(cfg);
        core.loadProgram(assembler::assemble(kCountingLoop));
        EXPECT_THROW(core.run(), FatalError) << execModeName(mode);
        EXPECT_EQ(core.collectStats().instructions, 57u)
            << execModeName(mode);
    }
}

// ---------------------------------------------------------------------
// Exhaustive equivalence matrix: 2 engines x 3 variants x all Table-7
// benchmarks, each simulated by both execution engines.

using MatrixParam =
    std::tuple<harness::Engine, vm::Variant, size_t /* benchmark */>;

class FastPathEquivalence : public ::testing::TestWithParam<MatrixParam>
{
};

template <typename VmT>
void
runVmPair(const std::string &source, vm::Variant variant)
{
    typename VmT::Options opts;
    opts.variant = variant;

    opts.coreConfig.execMode = ExecMode::Exact;
    VmT exact(source, opts);
    const int exact_code = exact.run();

    opts.coreConfig.execMode = ExecMode::Predecoded;
    VmT predecoded(source, opts);
    const int predecoded_code = predecoded.run();

    EXPECT_EQ(exact_code, predecoded_code);
    expectSameMachineState(exact.core(), predecoded.core());
    // The fast path must actually have been exercised, or this matrix
    // proves nothing.
    EXPECT_GT(predecoded.core().fastPathStats().blockHits, 0u);
    EXPECT_EQ(exact.core().fastPathStats().blockBuilds, 0u);
}

TEST_P(FastPathEquivalence, BitIdenticalAcrossExecModes)
{
    const auto [engine, variant, bench] = GetParam();
    const harness::BenchmarkInfo &info = harness::benchmarks()[bench];
    SCOPED_TRACE(info.name);
    if (engine == harness::Engine::Lua)
        runVmPair<vm::lua::LuaVm>(info.source, variant);
    else
        runVmPair<vm::js::JsVm>(info.source, variant);
}

std::string
matrixName(const ::testing::TestParamInfo<MatrixParam> &info)
{
    const auto [engine, variant, bench] = info.param;
    std::string name = harness::engineName(engine);
    name += '_';
    name += vm::variantName(variant);
    name += '_';
    name += harness::benchmarks()[bench].name;
    for (char &c : name)
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return name;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, FastPathEquivalence,
    ::testing::Combine(
        ::testing::Values(harness::Engine::Lua, harness::Engine::Js),
        ::testing::Values(vm::Variant::Baseline, vm::Variant::Typed,
                          vm::Variant::CheckedLoad),
        ::testing::Range<size_t>(0, harness::benchmarks().size())),
    matrixName);

} // namespace
} // namespace tarch::core
