/**
 * @file
 * Type-inference and guard-elision tests: monomorphic sites lose
 * their guards in both engines, polymorphic sites keep them, the
 * narrowing/strong-update machinery is flow-sensitive, the verifier
 * rejects a hand-forged unsound rewrite, and the two soundness
 * regressions that the differential fuzzer caught (dead-code
 * specialization, MiniJS floor escaping int32) stay fixed.
 */

#include <gtest/gtest.h>

#include "analysis/elide.h"
#include "analysis/typeinf.h"
#include "script/parser.h"
#include "vm/js/compiler.h"
#include "vm/lua/compiler.h"

namespace tarch {
namespace {

using analysis::Report;
using analysis::Severity;
namespace elide = analysis::elide;
namespace typeinf = analysis::typeinf;

vm::lua::Module
luaComp(const std::string &src)
{
    return vm::lua::compile(script::parse(src));
}

vm::js::Module
jsComp(const std::string &src)
{
    return vm::js::compile(script::parse(src));
}

size_t
countLuaOp(const vm::lua::Module &m, vm::lua::Op op)
{
    size_t n = 0;
    for (const vm::lua::Proto &p : m.protos)
        for (uint32_t w : p.code)
            if (static_cast<vm::lua::Op>(w & 0x3F) == op)
                ++n;
    return n;
}

size_t
countJsOp(const vm::js::Module &m, vm::js::Op op)
{
    size_t n = 0;
    for (const vm::js::Proto &p : m.protos)
        for (uint32_t w : p.code)
            if (static_cast<vm::js::Op>(w & 0xFF) == op)
                ++n;
    return n;
}

/** Overwrite the opcode field of the first @p from site (any proto). */
bool
forceLuaOp(vm::lua::Module &m, vm::lua::Op from, vm::lua::Op to)
{
    for (vm::lua::Proto &p : m.protos)
        for (uint32_t &w : p.code)
            if (static_cast<vm::lua::Op>(w & 0x3F) == from) {
                w = (w & ~0x3Fu) | static_cast<uint32_t>(to);
                return true;
            }
    return false;
}

bool
forceJsOp(vm::js::Module &m, vm::js::Op from, vm::js::Op to)
{
    for (vm::js::Proto &p : m.protos)
        for (uint32_t &w : p.code)
            if (static_cast<vm::js::Op>(w & 0xFF) == from) {
                w = (w & ~0xFFu) | static_cast<uint32_t>(to);
                return true;
            }
    return false;
}

size_t
findLuaOpPc(const vm::lua::Proto &p, vm::lua::Op op)
{
    for (size_t pc = 0; pc < p.code.size(); ++pc)
        if (static_cast<vm::lua::Op>(p.code[pc] & 0x3F) == op)
            return pc;
    return static_cast<size_t>(-1);
}

::testing::AssertionResult
isClean(const Report &report)
{
    if (report.findings.empty())
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure() << "\n" << report.render();
}

// ---------------------------------------------------------------------
// Inference basics.

TEST(TypeInf, MonomorphicIntLoopConvergesWithMainReachable)
{
    const vm::lua::Module m = luaComp(R"(
local acc = 0
for i = 1, 10 do
  acc = acc + i
end
print(acc)
)");
    const typeinf::ModuleFacts mf = typeinf::inferLua(m);
    EXPECT_TRUE(mf.converged);
    ASSERT_FALSE(mf.protos.empty());
    EXPECT_FALSE(mf.protos[0].bailed);
    ASSERT_FALSE(mf.protos[0].reachable.empty());
    EXPECT_TRUE(mf.protos[0].reachable[0]);
}

// ---------------------------------------------------------------------
// MiniLua elision.

TEST(LuaElide, MonomorphicIntArithmeticLosesItsGuards)
{
    vm::lua::Module m = luaComp(R"(
local acc = 0
for i = 1, 10 do
  acc = acc + i
end
print(acc)
)");
    const elide::Stats st = elide::rewriteLua(m);
    EXPECT_GE(st.arithElided, 1u);
    EXPECT_GE(countLuaOp(m, vm::lua::Op::ADD_II), 1u);
    Report r;
    elide::verifyLua(m, r);
    EXPECT_TRUE(isClean(r));
}

TEST(LuaElide, MonomorphicFloatArithmeticGetsTheFfForms)
{
    vm::lua::Module m = luaComp(R"(
local x = 1.5
local y = 0.5
for i = 1, 4 do
  y = y + x * 2.5
end
print(y)
)");
    elide::rewriteLua(m);
    EXPECT_GE(countLuaOp(m, vm::lua::Op::MUL_FF), 1u);
    EXPECT_GE(countLuaOp(m, vm::lua::Op::ADD_FF), 1u);
    Report r;
    elide::verifyLua(m, r);
    EXPECT_TRUE(isClean(r));
}

TEST(LuaElide, PolymorphicIntOrFloatSiteKeepsItsGuards)
{
    vm::lua::Module m = luaComp(R"(
local a = 1
if 1 < 2 then
  a = 1.5
end
print(a + 1)
)");
    const elide::Stats st = elide::rewriteLua(m);
    EXPECT_EQ(st.arithElided, 0u);
    EXPECT_EQ(countLuaOp(m, vm::lua::Op::ADD_II), 0u);
    EXPECT_EQ(countLuaOp(m, vm::lua::Op::ADD_FF), 0u);
    Report r;
    elide::verifyLua(m, r);
    EXPECT_TRUE(isClean(r));
}

TEST(LuaElide, ProvenTableAndIntKeyElideTheTableGuards)
{
    vm::lua::Module m = luaComp(R"(
local t = {10, 20, 30}
t[1] = 5
print(t[2] + t[1])
)");
    const elide::Stats st = elide::rewriteLua(m);
    EXPECT_GE(st.tableElided, 2u);
    EXPECT_GE(countLuaOp(m, vm::lua::Op::GETTAB_E), 1u);
    EXPECT_GE(countLuaOp(m, vm::lua::Op::SETTAB_E), 1u);
    Report r;
    elide::verifyLua(m, r);
    EXPECT_TRUE(isClean(r));
}

TEST(LuaElide, StrongUpdateAllowsElisionOnlyBeforeAStringRebind)
{
    // Flow-sensitivity: v is an int at the add, a string afterwards.
    // The add may still be elided; the whole-program (flow-insensitive)
    // answer {int|str} would have blocked it.
    vm::lua::Module m = luaComp(R"(
local v = 2
print(v + 3)
v = "abc"
print(#v)
)");
    const elide::Stats st = elide::rewriteLua(m);
    EXPECT_GE(st.arithElided, 1u);
    EXPECT_GE(countLuaOp(m, vm::lua::Op::ADD_II), 1u);
    Report r;
    elide::verifyLua(m, r);
    EXPECT_TRUE(isClean(r));
}

TEST(LuaElide, UncalledFunctionIsNeverSpecialized)
{
    // Regression: facts inside a never-called proto are bottom, and
    // bottom passes a plain subset check vacuously.  The rewriter must
    // treat "no value ever flows here" as proving nothing.
    vm::lua::Module m = luaComp(R"(
function f(a)
  return a + 1
end
print(1)
)");
    elide::rewriteLua(m);
    EXPECT_EQ(countLuaOp(m, vm::lua::Op::ADD_II), 0u);
    EXPECT_EQ(countLuaOp(m, vm::lua::Op::ADD_FF), 0u);
    Report r;
    elide::verifyLua(m, r);
    EXPECT_TRUE(isClean(r));
}

// ---------------------------------------------------------------------
// The verifier as an adversary: a forged unsound rewrite is flagged.

TEST(LuaVerify, ForgedPolymorphicElisionIsAnError)
{
    vm::lua::Module m = luaComp(R"(
local a = 1
if 1 < 2 then
  a = 1.5
end
print(a + 1)
)");
    ASSERT_TRUE(forceLuaOp(m, vm::lua::Op::ADD, vm::lua::Op::ADD_II));
    Report r;
    elide::verifyLua(m, r);
    EXPECT_TRUE(r.hasErrors());
    bool found = false;
    for (const analysis::Finding &f : r.findings)
        if (f.severity == Severity::Error && f.check == "elide-mono" &&
            f.message.find("not dominated by a monomorphic fact") !=
                std::string::npos)
            found = true;
    EXPECT_TRUE(found) << r.render();
}

TEST(JsVerify, ForgedPolymorphicElisionIsAnError)
{
    vm::js::Module m = jsComp(R"(
local a = 1
if 1 < 2 then
  a = 1.5
end
print(a + 1)
)");
    ASSERT_TRUE(forceJsOp(m, vm::js::Op::ADD, vm::js::Op::ADD_II));
    Report r;
    elide::verifyJs(m, r);
    EXPECT_TRUE(r.hasErrors());
    bool found = false;
    for (const analysis::Finding &f : r.findings)
        if (f.severity == Severity::Error && f.check == "elide-mono")
            found = true;
    EXPECT_TRUE(found) << r.render();
}

// ---------------------------------------------------------------------
// MiniJS elision and its engine-specific soundness limits.

TEST(JsElide, MonomorphicDoubleArithmeticGetsTheDdForms)
{
    vm::js::Module m = jsComp(R"(
local x = 1.5
print(x * 2.5)
)");
    elide::rewriteJs(m);
    EXPECT_GE(countJsOp(m, vm::js::Op::MUL_DD), 1u);
    Report r;
    elide::verifyJs(m, r);
    EXPECT_TRUE(isClean(r));
}

TEST(JsElide, IntAddWidensThroughOverflowPromotion)
{
    // ADD_II keeps the int32 overflow check and may produce a double,
    // so the transfer for int+int is {int|flt}: the first add is
    // elidable, the chained second one is not.
    vm::js::Module m = jsComp(R"(
local a = 1
local b = a + 2
print(b + 3)
)");
    elide::rewriteJs(m);
    EXPECT_EQ(countJsOp(m, vm::js::Op::ADD_II), 1u);
    EXPECT_EQ(countJsOp(m, vm::js::Op::ADD_DD), 0u);
    Report r;
    elide::verifyJs(m, r);
    EXPECT_TRUE(isClean(r));
}

TEST(JsElide, FloorResultIsNotAssumedInt)
{
    // Regression: JsVm::hcFloor only boxes an Int when the result fits
    // int32 and otherwise keeps the raw double, so floor() is int-
    // valued in MiniLua but only numeric in MiniJS.
    const char *src = R"(
local a = floor(2.5)
print(a + 1)
)";
    vm::js::Module js = jsComp(src);
    elide::rewriteJs(js);
    EXPECT_EQ(countJsOp(js, vm::js::Op::ADD_II), 0u);
    EXPECT_EQ(countJsOp(js, vm::js::Op::ADD_DD), 0u);

    vm::lua::Module lua = luaComp(src);
    elide::rewriteLua(lua);
    EXPECT_GE(countLuaOp(lua, vm::lua::Op::ADD_II), 1u);
}

// ---------------------------------------------------------------------
// --explain plumbing.

TEST(Explain, ElidedSiteReadsMonomorphic)
{
    vm::lua::Module m = luaComp(R"(
local acc = 0
for i = 1, 10 do
  acc = acc + i
end
print(acc)
)");
    elide::rewriteLua(m);
    const size_t pc = findLuaOpPc(m.protos[0], vm::lua::Op::ADD_II);
    ASSERT_NE(pc, static_cast<size_t>(-1));
    const std::string out = elide::explainLua(m, 0, pc);
    EXPECT_NE(out.find("verdict: monomorphic"), std::string::npos) << out;
}

TEST(Explain, PolymorphicSiteReadsGuardsKept)
{
    vm::lua::Module m = luaComp(R"(
local a = 1
if 1 < 2 then
  a = 1.5
end
print(a + 1)
)");
    elide::rewriteLua(m);
    const size_t pc = findLuaOpPc(m.protos[0], vm::lua::Op::ADD);
    ASSERT_NE(pc, static_cast<size_t>(-1));
    const std::string out = elide::explainLua(m, 0, pc);
    EXPECT_NE(out.find("verdict: polymorphic; guards kept"),
              std::string::npos)
        << out;
}

TEST(Explain, OutOfRangeRequestsAreReported)
{
    const vm::lua::Module m = luaComp("print(1)");
    EXPECT_NE(elide::explainLua(m, 99, 0).find("no proto 99"),
              std::string::npos);
    EXPECT_NE(elide::explainLua(m, 0, 9999).find("no pc 9999"),
              std::string::npos);
}

} // namespace
} // namespace tarch
