// Unit tests for the in-order pipeline timing model: hazards, bypass
// latencies, redirect charging, and the tracer/breakpoint tooling.

#include <gtest/gtest.h>

#include "assembler/assembler.h"
#include "core/core.h"
#include "core/timing.h"

namespace tarch::core {
namespace {

TEST(TimingModel, BackToBackAluIsOneCyclePerInstr)
{
    TimingModel tm;
    for (int i = 0; i < 100; ++i) {
        tm.startInstr(0);
        tm.useReg(5);
        tm.setRegReady(5, tm.latencyFor(isa::ExecClass::IntAlu));
    }
    EXPECT_EQ(tm.cycles(), 100u + tm.config().drainCycles);
}

TEST(TimingModel, LoadUseBubble)
{
    TimingModel tm;
    tm.startInstr(0);
    tm.setRegReady(6, tm.latencyFor(isa::ExecClass::Load));  // load -> x6
    tm.startInstr(0);
    tm.useReg(6);  // immediate consumer: one bubble
    const uint64_t after_consumer = tm.cycles();
    EXPECT_EQ(after_consumer, 3u + tm.config().drainCycles);
}

TEST(TimingModel, IndependentInstrHidesLoadLatency)
{
    TimingModel tm;
    tm.startInstr(0);
    tm.setRegReady(6, tm.latencyFor(isa::ExecClass::Load));
    tm.startInstr(0);       // independent filler
    tm.setRegReady(7, 1);
    tm.startInstr(0);
    tm.useReg(6);           // now ready: no stall
    EXPECT_EQ(tm.cycles(), 3u + tm.config().drainCycles);
}

TEST(TimingModel, FpChainStallsByLatency)
{
    TimingModel tm;
    tm.startInstr(0);
    tm.setRegReady(32 + 1, tm.latencyFor(isa::ExecClass::FpAlu));
    tm.startInstr(0);
    tm.useReg(32 + 1);
    // fadd latency 4: consumer at issue 1 stalls to cycle 5.
    EXPECT_EQ(tm.cycles(),
              1u + tm.config().latFpAlu + tm.config().drainCycles);
}

TEST(TimingModel, RedirectChargesNextInstr)
{
    TimingModel tm;
    tm.startInstr(0);
    tm.redirect();
    tm.startInstr(0);
    EXPECT_EQ(tm.cycles(),
              2u + tm.config().redirectPenalty + tm.config().drainCycles);
}

TEST(TimingModel, MemStallDelaysPipeline)
{
    TimingModel tm;
    tm.startInstr(0);
    tm.memStall(20);
    tm.startInstr(0);
    EXPECT_EQ(tm.cycles(), 22u + tm.config().drainCycles);
}

TEST(TimingModel, X0AlwaysReady)
{
    TimingModel tm;
    tm.startInstr(0);
    tm.setRegReady(0, 100);  // ignored
    tm.startInstr(0);
    tm.useReg(0);
    EXPECT_EQ(tm.cycles(), 2u + tm.config().drainCycles);
}

TEST(TimingModel, FlatCostLump)
{
    TimingModel tm;
    tm.startInstr(0);
    tm.flatCost(500);
    EXPECT_EQ(tm.cycles(), 501u + tm.config().drainCycles);
}

TEST(TimingModel, LatencyTable)
{
    TimingModel tm;
    EXPECT_EQ(tm.latencyFor(isa::ExecClass::IntAlu), 1u);
    EXPECT_EQ(tm.latencyFor(isa::ExecClass::Load), 2u);
    EXPECT_GT(tm.latencyFor(isa::ExecClass::IntDiv),
              tm.latencyFor(isa::ExecClass::IntMul));
    EXPECT_GT(tm.latencyFor(isa::ExecClass::FpDiv),
              tm.latencyFor(isa::ExecClass::FpMul));
}

// ------------------------------------------------------------------
// Tracer and breakpoints.

TEST(Tracer, CapturesRingWindow)
{
    Tracer tracer(4);
    Core core;
    core.setTracer(&tracer);
    core.loadProgram(assembler::assemble(R"(
        li a1, 3
l:      addi a1, a1, -1
        bnez a1, l
        halt
    )"));
    core.run();
    // 1 + 3*2 + 1 = 8 executed; ring keeps the last 4.
    EXPECT_EQ(tracer.recorded(), 8u);
    const auto entries = tracer.entries();
    ASSERT_EQ(entries.size(), 4u);
    EXPECT_EQ(entries.back().instr.op, isa::Opcode::HALT);
    EXPECT_LT(entries.front().index, entries.back().index);
    EXPECT_NE(tracer.dump().find("halt"), std::string::npos);
}

TEST(Tracer, ClearResets)
{
    Tracer tracer(8);
    tracer.record(0x1000, {isa::Opcode::ADD, 1, 2, 3, 0}, 0);
    tracer.clear();
    EXPECT_EQ(tracer.recorded(), 0u);
    EXPECT_TRUE(tracer.entries().empty());
}

TEST(Breakpoints, RunToBreakpointStopsBeforeExecution)
{
    Core core;
    const auto program = assembler::assemble(R"(
        li a0, 1
mid:    li a0, 2
        halt
    )");
    core.loadProgram(program);
    core.addBreakpoint(program.symbol("mid"));
    EXPECT_EQ(core.runToBreakpoint(), Core::StopReason::Breakpoint);
    EXPECT_EQ(core.regs().gpr(isa::reg::a0).v, 1u);  // 'mid' not yet run
    EXPECT_EQ(core.pc(), program.symbol("mid"));
    core.clearBreakpoints();
    EXPECT_EQ(core.runToBreakpoint(), Core::StopReason::Halted);
    EXPECT_EQ(core.regs().gpr(isa::reg::a0).v, 2u);
}

} // namespace
} // namespace tarch::core
