// Unit tests for the Table 8 analytic area/power model.

#include <gtest/gtest.h>

#include "power/power_model.h"

namespace tarch::power {
namespace {

TEST(PowerModel, BaselineMatchesPaperTable8)
{
    const SynthesisReport report = buildTable8();
    EXPECT_DOUBLE_EQ(report.totalArea(false), 0.684);
    EXPECT_DOUBLE_EQ(report.totalPower(false), 18.72);
    // Module names in paper order.
    ASSERT_EQ(report.baseline.size(), 10u);
    EXPECT_EQ(report.baseline[2].name, "Core");
    EXPECT_DOUBLE_EQ(report.baseline[2].areaMm2, 0.038);
}

TEST(PowerModel, OverheadNearPaper)
{
    const SynthesisReport report = buildTable8();
    // Paper: +1.6% area, +3.7% power.
    EXPECT_NEAR(report.areaOverhead(), 0.016, 0.004);
    EXPECT_NEAR(report.powerOverhead(), 0.037, 0.008);
}

TEST(PowerModel, OnlyTouchedModulesGrow)
{
    const SynthesisReport report = buildTable8();
    for (size_t i = 0; i < report.baseline.size(); ++i) {
        const auto &b = report.baseline[i];
        const auto &t = report.typedArch[i];
        ASSERT_EQ(b.name, t.name);
        EXPECT_GE(t.areaMm2, b.areaMm2) << b.name;
        if (b.name == "ICache" || b.name == "Uncore" ||
            b.name == "Wrapping" || b.name == "Div") {
            EXPECT_DOUBLE_EQ(t.areaMm2, b.areaMm2) << b.name;
        }
        if (b.name == "Core") {
            EXPECT_GT(t.areaMm2, b.areaMm2);
        }
    }
}

TEST(PowerModel, HierarchyRollsUp)
{
    const SynthesisReport report = buildTable8();
    // Top delta == Tile delta (Uncore/Wrapping unchanged).
    const double top_delta =
        report.typedArch[0].areaMm2 - report.baseline[0].areaMm2;
    const double tile_delta =
        report.typedArch[1].areaMm2 - report.baseline[1].areaMm2;
    EXPECT_NEAR(top_delta, tile_delta, 1e-12);
}

TEST(PowerModel, CostKnobsScale)
{
    TypedHardwareCosts costs;
    costs.trtEntries = 64;  // 8x the CAM
    const SynthesisReport big = buildTable8(costs);
    const SynthesisReport small = buildTable8();
    EXPECT_GT(big.areaOverhead(), small.areaOverhead());
}

TEST(PowerModel, EdpImprovement)
{
    // No speedup, no power change: no improvement.
    EXPECT_NEAR(edpImprovement(1.0, 1.0), 0.0, 1e-12);
    // Paper arithmetic sanity: ~1.1x speedup at ~1.037x power.
    const double edp = edpImprovement(1.099, 1.037);
    EXPECT_GT(edp, 0.10);
    EXPECT_LT(edp, 0.20);
    // Power overhead with no speedup makes EDP worse.
    EXPECT_LT(edpImprovement(1.0, 1.05), 0.0);
}

} // namespace
} // namespace tarch::power
