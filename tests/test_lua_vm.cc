// End-to-end MiniLua VM tests: scripts compile, the generated
// interpreter runs them on the simulated core, and all three ISA
// variants (baseline, typed, checked-load) produce identical output.

#include <gtest/gtest.h>

#include "common/log.h"
#include "vm/lua/lua_vm.h"

namespace tarch::vm::lua {
namespace {

std::string
runOn(Variant v, const std::string &src)
{
    LuaVm::Options opts;
    opts.variant = v;
    LuaVm vm(src, opts);
    EXPECT_EQ(vm.run(), 0);
    return vm.output();
}

class AllVariants : public ::testing::TestWithParam<Variant>
{
};

INSTANTIATE_TEST_SUITE_P(Lua, AllVariants,
                         ::testing::Values(Variant::Baseline, Variant::Typed,
                                           Variant::CheckedLoad),
                         [](const auto &info) {
                             return std::string(variantName(info.param)) ==
                                            "checked-load"
                                        ? "CheckedLoad"
                                        : std::string(
                                              variantName(info.param)) ==
                                                  "typed"
                                              ? "Typed"
                                              : "Baseline";
                         });

TEST_P(AllVariants, PrintLiterals)
{
    EXPECT_EQ(runOn(GetParam(), R"(
print(42)
print(-7)
print(3.5)
print(2.0)
print("hello")
print(true)
print(false)
print(nil)
)"),
              "42\n-7\n3.5\n2.0\nhello\ntrue\nfalse\nnil\n");
}

TEST_P(AllVariants, IntegerArithmetic)
{
    EXPECT_EQ(runOn(GetParam(), R"(
local a = 10
local b = 3
print(a + b)
print(a - b)
print(a * b)
print(a // b)
print(a % b)
print(-a)
)"),
              "13\n7\n30\n3\n1\n-10\n");
}

TEST_P(AllVariants, FloatArithmeticAndDivision)
{
    EXPECT_EQ(runOn(GetParam(), R"(
print(1.5 + 2.25)
print(10 / 4)
print(7.5 * 2.0)
print(1.0 - 0.75)
)"),
              "3.75\n2.5\n15.0\n0.25\n");
}

TEST_P(AllVariants, MixedIntFloatSlowPath)
{
    // int+float must take the software slow path in every variant and
    // produce a float.
    EXPECT_EQ(runOn(GetParam(), R"(
local i = 2
local f = 0.5
print(i + f)
print(f + i)
print(i * f)
print(i - f)
)"),
              "2.5\n2.5\n1.0\n1.5\n");
}

TEST_P(AllVariants, LuaModuloAndFloorDivSemantics)
{
    EXPECT_EQ(runOn(GetParam(), R"(
print(-7 % 3)
print(7 % -3)
print(-7 // 2)
print(7 // -2)
print(-7.5 % 2.0)
)"),
              "2\n-2\n-4\n-4\n0.5\n");
}

TEST_P(AllVariants, Comparisons)
{
    EXPECT_EQ(runOn(GetParam(), R"(
print(1 < 2)
print(2 <= 2)
print(3 > 4)
print(1.5 >= 1.5)
print(1 == 1.0)
print(1 ~= 2)
print("a" == "a")
print("a" == "b")
print(nil == nil)
print(nil == false)
)"),
              "true\ntrue\nfalse\ntrue\ntrue\ntrue\ntrue\nfalse\ntrue\n"
              "false\n");
}

TEST_P(AllVariants, ControlFlow)
{
    EXPECT_EQ(runOn(GetParam(), R"(
local x = 7
if x > 10 then
  print("big")
elseif x > 5 then
  print("mid")
else
  print("small")
end
local n = 0
while n < 3 do
  n = n + 1
end
print(n)
local sum = 0
for i = 1, 10 do
  sum = sum + i
  if i == 5 then break end
end
print(sum)
)"),
              "mid\n3\n15\n");
}

TEST_P(AllVariants, NumericForVariants)
{
    EXPECT_EQ(runOn(GetParam(), R"(
local s = 0
for i = 1, 5 do s = s + i end
print(s)
for i = 10, 1, -3 do print(i) end
local f = 0.0
for x = 0.5, 2.0, 0.5 do f = f + x end
print(f)
for i = 3, 1 do print("never") end
)"),
              "15\n10\n7\n4\n1\n5.0\n");
}

TEST_P(AllVariants, AndOrNot)
{
    EXPECT_EQ(runOn(GetParam(), R"(
print(true and 1)
print(false and 1)
print(nil or "dflt")
print(2 or 3)
print(not nil)
print(not 0)
)"),
              "1\nfalse\ndflt\n2\ntrue\nfalse\n");
}

TEST_P(AllVariants, FunctionsAndRecursion)
{
    EXPECT_EQ(runOn(GetParam(), R"(
function add(a, b) return a + b end
function fib(n)
  if n < 2 then return n end
  return fib(n - 1) + fib(n - 2)
end
print(add(2, 3))
print(fib(10))
)"),
              "5\n55\n");
}

TEST_P(AllVariants, NestedCallsAndGlobals)
{
    EXPECT_EQ(runOn(GetParam(), R"(
counter = 0
function bump(k)
  counter = counter + k
  return counter
end
print(bump(bump(1) + 1))
print(counter)
)"),
              "3\n3\n");
}

TEST_P(AllVariants, Tables)
{
    EXPECT_EQ(runOn(GetParam(), R"(
local t = {}
t[1] = 10
t[2] = 20
t[3] = t[1] + t[2]
print(t[3])
print(#t)
local u = {5, 6, 7}
print(u[1] + u[2] + u[3])
print(u[99])
)"),
              "30\n3\n18\nnil\n");
}

TEST_P(AllVariants, TableGrowthKeepsValues)
{
    EXPECT_EQ(runOn(GetParam(), R"(
local t = {}
for i = 1, 100 do t[i] = i * i end
local s = 0
for i = 1, 100 do s = s + t[i] end
print(s)
print(#t)
)"),
              "338350\n100\n");
}

TEST_P(AllVariants, StringKeysUseHashPath)
{
    EXPECT_EQ(runOn(GetParam(), R"(
local t = {}
t["x"] = 1
t["y"] = 2
t["x"] = t["x"] + 10
print(t["x"])
print(t["y"])
print(t["zz"])
)"),
              "11\n2\nnil\n");
}

TEST_P(AllVariants, StringsLenConcatSubstr)
{
    EXPECT_EQ(runOn(GetParam(), R"(
local s = "hello"
print(#s)
print(s .. " " .. "world")
print(substr(s, 2, 4))
print(substr(s, -3, -1))
print(strchar(65))
print("n=" .. 42)
print("f=" .. 1.5)
)"),
              "5\nhello world\nell\nllo\nA\nn=42\nf=1.5\n");
}

TEST_P(AllVariants, Builtins)
{
    EXPECT_EQ(runOn(GetParam(), R"(
print(sqrt(16))
print(sqrt(2.25))
print(floor(3.7))
print(floor(-3.7))
print(abs(-5))
print(abs(-2.5))
)"),
              "4.0\n1.5\n3\n-4\n5\n2.5\n");
}

TEST_P(AllVariants, FloatHeavyLoopMatchesAcrossVariants)
{
    // mandelbrot-style float kernel: exercises the FP path of the
    // polymorphic ops (where Checked Load's fixed int fast path misses).
    EXPECT_EQ(runOn(GetParam(), R"(
local zr = 0.0
local zi = 0.0
local cr = -0.5
local ci = 0.3
local n = 0
for i = 1, 50 do
  local t = zr * zr - zi * zi + cr
  zi = 2.0 * zr * zi + ci
  zr = t
  if zr * zr + zi * zi > 4.0 then break end
  n = n + 1
end
print(n)
)"),
              "50\n");
}

TEST_P(AllVariants, DeepRecursionStacksFrames)
{
    EXPECT_EQ(runOn(GetParam(), R"(
function down(n)
  if n == 0 then return 0 end
  return down(n - 1) + 1
end
print(down(500))
)"),
              "500\n");
}

// ------------------------------------------------------------------
// Variant-specific structural checks.

TEST(LuaVmTyped, TypeChecksGoThroughTrt)
{
    LuaVm::Options opts;
    opts.variant = Variant::Typed;
    LuaVm vm(R"(
local s = 0
for i = 1, 1000 do s = s + i end
print(s)
)",
             opts);
    vm.run();
    EXPECT_EQ(vm.output(), "500500\n");
    const auto stats = vm.core().collectStats();
    // One xadd TRT lookup per ADD bytecode, all hits.
    EXPECT_GE(stats.trt.lookups, 1000u);
    EXPECT_EQ(stats.trt.misses(), 0u);
}

TEST(LuaVmTyped, MixedTypesMissTheTrt)
{
    LuaVm::Options opts;
    opts.variant = Variant::Typed;
    LuaVm vm(R"(
local f = 0.5
local s = 0.0
for i = 1, 100 do s = s + f end
s = s + 1
print(s)
)",
             opts);
    vm.run();
    EXPECT_EQ(vm.output(), "51.0\n");
    const auto stats = vm.core().collectStats();
    EXPECT_GE(stats.trt.misses(), 1u);  // the int + float add
}

TEST(LuaVmCheckedLoad, FloatWorkloadMissesFixedFastPath)
{
    LuaVm::Options opts;
    opts.variant = Variant::CheckedLoad;
    LuaVm vm(R"(
local s = 0.0
for i = 1, 200 do s = s + 0.5 end
print(s)
)",
             opts);
    vm.run();
    EXPECT_EQ(vm.output(), "100.0\n");
    const auto stats = vm.core().collectStats();
    // Every float add misses the int-specialized chklb.
    EXPECT_GE(stats.chklbMisses, 200u);
}

TEST(LuaVm, BytecodeProfileCountsAdds)
{
    LuaVm vm(R"(
local s = 0
for i = 1, 500 do s = s + i end
print(s)
)");
    vm.run();
    const auto profile = vm.bytecodeProfile();
    EXPECT_EQ(profile.at("ADD"), 500u);
    EXPECT_EQ(profile.at("FORLOOP"), 501u);  // exit iteration counts
    EXPECT_GT(vm.dynamicBytecodes(), 1000u);
}

TEST(LuaVm, TypedExecutesFewerInstructionsOnIntLoop)
{
    const char *src = R"(
local s = 0
for i = 1, 2000 do s = s + i end
print(s)
)";
    LuaVm::Options base_opts;
    base_opts.variant = Variant::Baseline;
    LuaVm base(src, base_opts);
    base.run();
    LuaVm::Options typed_opts;
    typed_opts.variant = Variant::Typed;
    LuaVm typed(src, typed_opts);
    typed.run();
    EXPECT_EQ(base.output(), typed.output());
    const auto sb = base.core().collectStats();
    const auto st = typed.core().collectStats();
    EXPECT_LT(st.instructions, sb.instructions);
    EXPECT_LT(st.cycles, sb.cycles);
}

TEST(LuaVm, RuntimeErrorsAreFatal)
{
    LuaVm vm("local t = nil\nprint(t + 1)\n");
    EXPECT_THROW(vm.run(), FatalError);
}

TEST(LuaVm, IndexingNonTableIsFatal)
{
    LuaVm vm("local x = 5\nprint(x[1])\n");
    EXPECT_THROW(vm.run(), FatalError);
}

} // namespace
} // namespace tarch::vm::lua
