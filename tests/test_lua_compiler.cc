// Unit tests for the MiniLua bytecode compiler: encodings, register
// allocation, constant pooling, jump patching, scoping.

#include <gtest/gtest.h>

#include "common/log.h"
#include "script/parser.h"
#include "vm/lua/compiler.h"

namespace tarch::vm::lua {
namespace {

Module
comp(const std::string &src)
{
    return compile(script::parse(src));
}

Op
opOf(uint32_t w)
{
    return static_cast<Op>(w & 0x3F);
}

unsigned aOf(uint32_t w) { return (w >> 6) & 0xFF; }
unsigned bOf(uint32_t w) { return (w >> 14) & 0x1FF; }
unsigned cOf(uint32_t w) { return (w >> 23) & 0x1FF; }
int32_t sbxOf(uint32_t w) { return static_cast<int32_t>(w) >> 14; }

TEST(Encoding, AbcRoundTrip)
{
    const uint32_t w = encodeAbc(Op::ADD, 3, 0x105, 0x0FF);
    EXPECT_EQ(opOf(w), Op::ADD);
    EXPECT_EQ(aOf(w), 3u);
    EXPECT_EQ(bOf(w), 0x105u);
    EXPECT_EQ(cOf(w), 0x0FFu);
}

TEST(Encoding, SbxRoundTripNegative)
{
    const uint32_t w = encodeAsbx(Op::JMP, 0, -5);
    EXPECT_EQ(opOf(w), Op::JMP);
    EXPECT_EQ(sbxOf(w), -5);
    EXPECT_EQ(sbxOf(encodeAsbx(Op::JMP, 0, 1000)), 1000);
}

TEST(Compiler, MainEndsWithReturn)
{
    const Module m = comp("local x = 1");
    ASSERT_FALSE(m.protos[0].code.empty());
    EXPECT_EQ(opOf(m.protos[0].code.back()), Op::RETURN);
}

TEST(Compiler, LocalsGetLowRegisters)
{
    const Module m = comp("local a = 1\nlocal b = 2\nb = a");
    const auto &code = m.protos[0].code;
    // LOADK a(r0); LOADK b(r1); MOVE r1, r0; RETURN
    EXPECT_EQ(opOf(code[0]), Op::LOADK);
    EXPECT_EQ(aOf(code[0]), 0u);
    EXPECT_EQ(opOf(code[1]), Op::LOADK);
    EXPECT_EQ(aOf(code[1]), 1u);
    EXPECT_EQ(opOf(code[2]), Op::MOVE);
    EXPECT_EQ(aOf(code[2]), 1u);
    EXPECT_EQ(bOf(code[2]), 0u);
}

TEST(Compiler, ConstantsDedup)
{
    const Module m = comp("local a = 7\nlocal b = 7\nlocal c = 8");
    EXPECT_EQ(m.protos[0].consts.size(), 2u);
}

TEST(Compiler, RkOperandsUseConstFlag)
{
    const Module m = comp("local a = 1\na = a + 5");
    const auto &code = m.protos[0].code;
    // code[1] is ADD a, a, K(5)|flag
    EXPECT_EQ(opOf(code[1]), Op::ADD);
    EXPECT_EQ(bOf(code[1]), 0u);                // register a
    EXPECT_TRUE(cOf(code[1]) & kRkConstFlag);   // constant 5
}

TEST(Compiler, NegativeLiteralFolded)
{
    const Module m = comp("local a = -3");
    ASSERT_EQ(m.protos[0].consts.size(), 1u);
    EXPECT_EQ(m.protos[0].consts[0].ival, -3);
}

TEST(Compiler, GtCompilesAsSwappedLt)
{
    const Module m = comp("local a = 1\nlocal b = 2\nlocal c = a > b");
    const auto &code = m.protos[0].code;
    EXPECT_EQ(opOf(code[2]), Op::LT);
    EXPECT_EQ(bOf(code[2]), 1u);  // b first (swapped)
    EXPECT_EQ(cOf(code[2]), 0u);
}

TEST(Compiler, WhileLoopJumpsBack)
{
    const Module m = comp("local i = 0\nwhile i < 3 do i = i + 1 end");
    const auto &code = m.protos[0].code;
    // Find the backward JMP.
    bool found = false;
    for (size_t i = 0; i < code.size(); ++i) {
        if (opOf(code[i]) == Op::JMP && sbxOf(code[i]) < 0)
            found = true;
    }
    EXPECT_TRUE(found);
}

TEST(Compiler, ForLoopStructure)
{
    const Module m = comp("for i = 1, 10 do print(i) end");
    const auto &code = m.protos[0].code;
    size_t prep = SIZE_MAX, loop = SIZE_MAX;
    for (size_t i = 0; i < code.size(); ++i) {
        if (opOf(code[i]) == Op::FORPREP)
            prep = i;
        if (opOf(code[i]) == Op::FORLOOP)
            loop = i;
    }
    ASSERT_NE(prep, SIZE_MAX);
    ASSERT_NE(loop, SIZE_MAX);
    // FORPREP jumps exactly onto the FORLOOP.
    EXPECT_EQ(prep + 1 + sbxOf(code[prep]), loop);
    // FORLOOP jumps back to the body start (right after FORPREP).
    EXPECT_EQ(loop + 1 + sbxOf(code[loop]), prep + 1);
}

TEST(Compiler, ForLoopVarRegisterIsBasePlus3)
{
    const Module m = comp("for i = 1, 3 do local x = i end");
    const auto &code = m.protos[0].code;
    // body: MOVE x, i where i is base+3.
    bool found = false;
    for (const uint32_t w : code) {
        if (opOf(w) == Op::MOVE && bOf(w) == 3)
            found = true;
    }
    EXPECT_TRUE(found);
}

TEST(Compiler, ScopedLocalReleasedAfterBlock)
{
    // The local declared in the loop body must not leak into the
    // register space of later locals.
    const Module m = comp(R"(
for i = 1, 3 do
  local inner = i
end
local after = 9
)");
    const auto &code = m.protos[0].code;
    // 'after' should reuse register 0 (the for-control regs are freed).
    const uint32_t last_loadk = *std::find_if(
        code.rbegin(), code.rend(),
        [](uint32_t w) { return opOf(w) == Op::LOADK; });
    EXPECT_EQ(aOf(last_loadk), 0u);
}

TEST(Compiler, FunctionsGetProtosAndGlobals)
{
    const Module m = comp(R"(
function f(x) return x end
function g() return f(1) end
g()
)");
    ASSERT_EQ(m.protos.size(), 3u);
    EXPECT_EQ(m.protos[1].name, "f");
    EXPECT_EQ(m.protos[1].nparams, 1u);
    EXPECT_EQ(m.functionGlobals.size(), 2u);
}

TEST(Compiler, CallEmitsGetGlobalThenCall)
{
    const Module m = comp("function f(a) return a end\nlocal x = f(3)");
    const auto &code = m.protos[0].code;
    size_t call = SIZE_MAX;
    for (size_t i = 0; i < code.size(); ++i) {
        if (opOf(code[i]) == Op::CALL)
            call = i;
    }
    ASSERT_NE(call, SIZE_MAX);
    EXPECT_EQ(opOf(code[call - 1]), Op::GETGLOBAL);
    EXPECT_EQ(aOf(code[call]), aOf(code[call - 1]));
    EXPECT_EQ(bOf(code[call]), 1u);  // argc
}

TEST(Compiler, BuiltinCall)
{
    const Module m = comp("print(1)");
    const auto &code = m.protos[0].code;
    EXPECT_EQ(opOf(code[1]), Op::BUILTIN);
    EXPECT_EQ(bOf(code[1]), static_cast<unsigned>(Builtin::Print));
    EXPECT_EQ(cOf(code[1]), 1u);  // argc
}

TEST(Compiler, Errors)
{
    EXPECT_THROW(comp("x = undefined_fn(1)"), FatalError);
    EXPECT_THROW(comp("function f(a) return a end\nf(1, 2)"), FatalError);
    EXPECT_THROW(comp("break"), FatalError);
    EXPECT_THROW(comp("function f() return 1 end\nfunction f() return 2 end"),
                 FatalError);
}

TEST(Compiler, DisassemblerSmoke)
{
    const Module m = comp("for i = 1, 3 do print(i) end");
    const std::string listing = disassemble(m.protos[0].code);
    EXPECT_NE(listing.find("FORPREP"), std::string::npos);
    EXPECT_NE(listing.find("BUILTIN"), std::string::npos);
}

} // namespace
} // namespace tarch::vm::lua
