// Tests for the Section 5 extension: thdl as a fast-path selector
// ("deoptimizing the fast path").

#include <gtest/gtest.h>

#include "vm/lua/lua_vm.h"

namespace tarch::vm::lua {
namespace {

LuaVm::Options
typedOpts(bool deopt)
{
    LuaVm::Options opts;
    opts.variant = Variant::Typed;
    opts.coreConfig.deopt.enabled = deopt;
    return opts;
}

// Every ADD is (Flt, Int): a guaranteed type miss, the worst case for
// the typed fast path.
const char *kAlwaysMiss = R"(
local s = 0.0
for i = 1, 2000 do s = s + i end
print(s)
)";

// Every ADD is (Int, Int): never misses.
const char *kNeverMiss = R"(
local s = 0
for i = 1, 2000 do s = s + i end
print(s)
)";

TEST(Deopt, SkipsDoomedFastPath)
{
    LuaVm plain(kAlwaysMiss, typedOpts(false));
    plain.run();
    LuaVm deopt(kAlwaysMiss, typedOpts(true));
    deopt.run();
    EXPECT_EQ(plain.output(), deopt.output());
    EXPECT_EQ(deopt.output(), "2001000.0\n");
    const auto sp = plain.core().collectStats();
    const auto sd = deopt.core().collectStats();
    // The selector redirects before the wasted tld/tld/xadd sequence.
    EXPECT_GT(sd.deoptRedirects, 1500u);
    EXPECT_LT(sd.instructions, sp.instructions);
    EXPECT_LT(sd.cycles, sp.cycles);
    // The periodic probe keeps checking whether types stabilized.
    EXPECT_GT(sd.deoptProbes, 10u);
}

TEST(Deopt, NeverTriggersOnWellTypedCode)
{
    LuaVm deopt(kNeverMiss, typedOpts(true));
    deopt.run();
    EXPECT_EQ(deopt.output(), "2001000\n");
    const auto stats = deopt.core().collectStats();
    EXPECT_EQ(stats.deoptRedirects, 0u);
    EXPECT_EQ(stats.trt.misses(), 0u);
}

TEST(Deopt, NoCostWhenDisabled)
{
    // Instruction streams are identical with the feature off/on for a
    // well-typed program (the selector lives inside thdl).
    LuaVm off(kNeverMiss, typedOpts(false));
    off.run();
    LuaVm on(kNeverMiss, typedOpts(true));
    on.run();
    EXPECT_EQ(off.core().collectStats().instructions,
              on.core().collectStats().instructions);
}

TEST(Deopt, RecoversAfterPhaseChange)
{
    // Phase 1 is all-float (deoptimizes ADD); phase 2 is all-int on the
    // same bytecode: the periodic probe must re-optimize so later type
    // checks hit again.
    const char *phased = R"(
function accum(init, n)
  local s = init
  for i = 1, n do s = s + i end
  return s
end
print(accum(0.0, 2000))
print(accum(0, 4000))
)";
    LuaVm deopt(phased, typedOpts(true));
    deopt.run();
    EXPECT_EQ(deopt.output(), "2001000.0\n8002000\n");
    const auto stats = deopt.core().collectStats();
    // Phase 2's hits must include the re-optimized fast path: far more
    // TRT hits than the probe count alone could produce.
    EXPECT_GT(stats.trt.hits, 3000u);
    EXPECT_GT(stats.deoptRedirects, 1000u);
}

TEST(Deopt, ProbesExactlyEveryInterval)
{
    // Every probeInterval-th redirect is converted into a fast-path
    // probe; the two counters must stay in lockstep for any program.
    for (const uint8_t interval : {8, 32, 100}) {
        LuaVm::Options opts = typedOpts(true);
        opts.coreConfig.deopt.probeInterval = interval;
        LuaVm vm(kAlwaysMiss, opts);
        vm.run();
        const auto stats = vm.core().collectStats();
        ASSERT_GT(stats.deoptRedirects, 0u) << unsigned(interval);
        EXPECT_EQ(stats.deoptProbes, stats.deoptRedirects / interval)
            << unsigned(interval);
    }
}

TEST(Deopt, IntervalZeroDisablesProbing)
{
    LuaVm::Options opts = typedOpts(true);
    opts.coreConfig.deopt.probeInterval = 0;
    LuaVm vm(kAlwaysMiss, opts);
    vm.run();
    const auto stats = vm.core().collectStats();
    // The selector still redirects, but never re-probes: once the
    // counter saturates the fast path is abandoned for good.
    EXPECT_GT(stats.deoptRedirects, 1500u);
    EXPECT_EQ(stats.deoptProbes, 0u);
    EXPECT_EQ(vm.output(), "2001000.0\n");
}

TEST(Deopt, CounterSaturatesAtHardwareCap)
{
    // The per-handler saturating counter is 4 bits (caps at 15): a
    // threshold above the cap can never be crossed, no matter how many
    // misses bump the counter.
    LuaVm::Options unreachable = typedOpts(true);
    unreachable.coreConfig.deopt.threshold = 16;
    unreachable.coreConfig.deopt.missBump = 255;
    LuaVm never(kAlwaysMiss, unreachable);
    never.run();
    EXPECT_EQ(never.core().collectStats().deoptRedirects, 0u);

    // At threshold == cap the selector must still engage: saturation
    // clamps the counter to exactly 15, not below it.
    LuaVm::Options at_cap = typedOpts(true);
    at_cap.coreConfig.deopt.threshold = 15;
    at_cap.coreConfig.deopt.missBump = 255;
    LuaVm fires(kAlwaysMiss, at_cap);
    fires.run();
    EXPECT_GT(fires.core().collectStats().deoptRedirects, 1000u);
}

TEST(Deopt, HigherThresholdDelaysEngagement)
{
    // With missBump 4, threshold 8 arms after 2 misses and threshold 15
    // after 4: the stricter selector must redirect strictly less.
    LuaVm::Options eager = typedOpts(true);
    eager.coreConfig.deopt.threshold = 8;
    LuaVm e(kAlwaysMiss, eager);
    e.run();

    LuaVm::Options strict = typedOpts(true);
    strict.coreConfig.deopt.threshold = 15;
    LuaVm s(kAlwaysMiss, strict);
    s.run();

    const auto se = e.core().collectStats();
    const auto ss = s.core().collectStats();
    EXPECT_GT(se.deoptRedirects, 0u);
    EXPECT_GT(ss.deoptRedirects, 0u);
    EXPECT_LT(ss.deoptRedirects, se.deoptRedirects);
    EXPECT_EQ(e.output(), s.output());
}

} // namespace
} // namespace tarch::vm::lua
