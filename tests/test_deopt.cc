// Tests for the Section 5 extension: thdl as a fast-path selector
// ("deoptimizing the fast path").

#include <gtest/gtest.h>

#include "vm/lua/lua_vm.h"

namespace tarch::vm::lua {
namespace {

LuaVm::Options
typedOpts(bool deopt)
{
    LuaVm::Options opts;
    opts.variant = Variant::Typed;
    opts.coreConfig.deopt.enabled = deopt;
    return opts;
}

// Every ADD is (Flt, Int): a guaranteed type miss, the worst case for
// the typed fast path.
const char *kAlwaysMiss = R"(
local s = 0.0
for i = 1, 2000 do s = s + i end
print(s)
)";

// Every ADD is (Int, Int): never misses.
const char *kNeverMiss = R"(
local s = 0
for i = 1, 2000 do s = s + i end
print(s)
)";

TEST(Deopt, SkipsDoomedFastPath)
{
    LuaVm plain(kAlwaysMiss, typedOpts(false));
    plain.run();
    LuaVm deopt(kAlwaysMiss, typedOpts(true));
    deopt.run();
    EXPECT_EQ(plain.output(), deopt.output());
    EXPECT_EQ(deopt.output(), "2001000.0\n");
    const auto sp = plain.core().collectStats();
    const auto sd = deopt.core().collectStats();
    // The selector redirects before the wasted tld/tld/xadd sequence.
    EXPECT_GT(sd.deoptRedirects, 1500u);
    EXPECT_LT(sd.instructions, sp.instructions);
    EXPECT_LT(sd.cycles, sp.cycles);
    // The periodic probe keeps checking whether types stabilized.
    EXPECT_GT(sd.deoptProbes, 10u);
}

TEST(Deopt, NeverTriggersOnWellTypedCode)
{
    LuaVm deopt(kNeverMiss, typedOpts(true));
    deopt.run();
    EXPECT_EQ(deopt.output(), "2001000\n");
    const auto stats = deopt.core().collectStats();
    EXPECT_EQ(stats.deoptRedirects, 0u);
    EXPECT_EQ(stats.trt.misses(), 0u);
}

TEST(Deopt, NoCostWhenDisabled)
{
    // Instruction streams are identical with the feature off/on for a
    // well-typed program (the selector lives inside thdl).
    LuaVm off(kNeverMiss, typedOpts(false));
    off.run();
    LuaVm on(kNeverMiss, typedOpts(true));
    on.run();
    EXPECT_EQ(off.core().collectStats().instructions,
              on.core().collectStats().instructions);
}

TEST(Deopt, RecoversAfterPhaseChange)
{
    // Phase 1 is all-float (deoptimizes ADD); phase 2 is all-int on the
    // same bytecode: the periodic probe must re-optimize so later type
    // checks hit again.
    const char *phased = R"(
function accum(init, n)
  local s = init
  for i = 1, n do s = s + i end
  return s
end
print(accum(0.0, 2000))
print(accum(0, 4000))
)";
    LuaVm deopt(phased, typedOpts(true));
    deopt.run();
    EXPECT_EQ(deopt.output(), "2001000.0\n8002000\n");
    const auto stats = deopt.core().collectStats();
    // Phase 2's hits must include the re-optimized fast path: far more
    // TRT hits than the probe count alone could produce.
    EXPECT_GT(stats.trt.hits, 3000u);
    EXPECT_GT(stats.deoptRedirects, 1000u);
}

} // namespace
} // namespace tarch::vm::lua
