// tarch-snap-v1 snapshot subsystem tests (docs/SNAPSHOT.md):
//
//  - the bit-identity matrix: for both engines x all three ISA variants
//    x both exec modes, snapshotting a machine mid-run, restoring the
//    encoded blob into a freshly rebuilt VM, and continuing is
//    bit-identical to an uninterrupted run — all 26 CoreStats counters,
//    the full register file, the guest output, and the exit code;
//  - codec strictness: every truncated or bit-flipped blob decodes to a
//    clean typed "bad-snapshot" error, never a crash;
//  - the fuzz-oracle checkpoint axis stays clean on a known-good
//    program.

#include <gtest/gtest.h>

#include "core/stats.h"
#include "fuzz/oracle.h"
#include "snapshot/session_vm.h"
#include "snapshot/snapshot.h"

namespace tarch::snapshot {
namespace {

// Exercises integer + float arithmetic, calls, tables, strings and
// branches so every machine structure (TRT, caches, predictors, heap,
// shadow tables) carries nontrivial state by the checkpoint.
const char *kMatrixScript = R"(
function fib(n)
  if n < 2 then return n end
  return fib(n - 1) + fib(n - 2)
end
t = {}
i = 0
while i < 60 do
  t[i] = i * 3 + 1
  i = i + 1
end
s = 0
i = 0
while i < 60 do
  s = s + t[i]
  i = i + 1
end
msg = "fib" .. ":" .. fib(13)
print(msg)
print(s)
print(2.5 * s + 0.25)
)";

struct Combo {
    EngineId engine;
    vm::Variant variant;
    core::ExecMode mode;
};

std::vector<Combo>
allCombos()
{
    std::vector<Combo> combos;
    for (const EngineId engine : {EngineId::Lua, EngineId::Js})
        for (const vm::Variant variant :
             {vm::Variant::Baseline, vm::Variant::Typed,
              vm::Variant::CheckedLoad})
            for (const core::ExecMode mode :
                 {core::ExecMode::Exact, core::ExecMode::Predecoded})
                combos.push_back({engine, variant, mode});
    return combos;
}

std::string
comboName(const Combo &combo)
{
    return std::string(combo.engine == EngineId::Lua ? "lua" : "js") +
           "/" + std::string(vm::variantName(combo.variant)) + "/" +
           (combo.mode == core::ExecMode::Exact ? "exact" : "predecoded");
}

SessionVm::Config
configFor(const Combo &combo)
{
    SessionVm::Config cfg;
    cfg.engine = combo.engine;
    cfg.variant = combo.variant;
    cfg.execMode = combo.mode;
    return cfg;
}

void
expectSameRegisters(core::Core &expected, core::Core &actual,
                    const std::string &what)
{
    for (unsigned i = 0; i < isa::kNumGprs; ++i) {
        const core::TaggedReg &e = expected.regs().gpr(i);
        const core::TaggedReg &a = actual.regs().gpr(i);
        EXPECT_EQ(e.v, a.v) << what << ": x" << i << " value";
        EXPECT_EQ(e.t, a.t) << what << ": x" << i << " tag";
        EXPECT_EQ(e.f, a.f) << what << ": x" << i << " F-I bit";
    }
    for (unsigned i = 0; i < isa::kNumFprs; ++i)
        EXPECT_EQ(expected.regs().fpr(i), actual.regs().fpr(i))
            << what << ": f" << i;
}

TEST(SnapshotMatrix, RestoreThenContinueIsBitIdentical)
{
    constexpr uint64_t kCheckpoint = 4096;
    for (const Combo &combo : allCombos()) {
        SCOPED_TRACE(comboName(combo));
        const SessionVm::Config cfg = configFor(combo);

        // The uninterrupted control run.
        SessionVm control(cfg, kMatrixScript);
        const int control_exit = control.run();

        // The snapshotted run: capture mid-flight, then continue.
        SessionVm live(cfg, kMatrixScript);
        live.core().runUntilInstructions(kCheckpoint);
        ASSERT_FALSE(live.core().halted())
            << "checkpoint must land mid-run for the test to mean "
               "anything";
        const std::string blob = encode(live.snapshot(7));

        // The restored run: decode the blob into a fresh machine.
        Snapshot decoded;
        std::string error;
        ASSERT_TRUE(decode(blob, decoded, error)) << error;
        EXPECT_EQ(decoded.sessionId, 7u);
        std::unique_ptr<SessionVm> restored =
            SessionVm::restore(decoded, error);
        ASSERT_NE(restored, nullptr) << error;

        EXPECT_EQ(live.run(), control_exit);
        EXPECT_EQ(restored->run(), control_exit);

        EXPECT_EQ(live.output(), control.output()) << "capture impure";
        EXPECT_EQ(restored->output(), control.output());
        EXPECT_EQ(core::describeStatsDiff(control.stats(), live.stats()),
                  "")
            << "snapshotting perturbed the original machine";
        EXPECT_EQ(core::describeStatsDiff(control.stats(),
                                          restored->stats()),
                  "")
            << "restored continuation diverged";
        expectSameRegisters(control.core(), live.core(), "live");
        expectSameRegisters(control.core(), restored->core(), "restored");
    }
}

TEST(SnapshotMatrix, ExactAndPredecodedBlobsRestoreAcrossModes)
{
    // A blob captured on the exact core must restore and continue
    // bit-identically on a predecoded host and vice versa: the
    // snapshot carries architectural state only, and the two exec
    // engines are contract-identical.
    for (const EngineId engine : {EngineId::Lua, EngineId::Js}) {
        SCOPED_TRACE(engine == EngineId::Lua ? "lua" : "js");
        SessionVm::Config cfg;
        cfg.engine = engine;
        cfg.execMode = core::ExecMode::Exact;
        SessionVm control(cfg, kMatrixScript);
        const int exit_code = control.run();

        SessionVm live(cfg, kMatrixScript);
        live.core().runUntilInstructions(4096);
        Snapshot snap = live.snapshot(1);
        // Retarget the blob at the other exec mode before restoring.
        snap.execMode =
            static_cast<uint8_t>(core::ExecMode::Predecoded);
        std::string error;
        std::unique_ptr<SessionVm> restored =
            SessionVm::restore(snap, error);
        ASSERT_NE(restored, nullptr) << error;
        EXPECT_EQ(restored->run(), exit_code);
        EXPECT_EQ(restored->output(), control.output());
        EXPECT_EQ(core::describeStatsDiff(control.stats(),
                                          restored->stats()),
                  "");
    }
}

TEST(SnapshotCodec, EncodeIsDeterministicAndRoundTrips)
{
    SessionVm vm(SessionVm::Config{}, "print(1 + 2)");
    vm.run();
    const Snapshot snap = vm.snapshot(42);
    const std::string blob = encode(snap);
    ASSERT_GE(blob.size(), kHeaderBytes);

    Snapshot decoded;
    std::string error;
    ASSERT_TRUE(decode(blob, decoded, error)) << error;
    EXPECT_EQ(decoded.sessionId, 42u);
    EXPECT_EQ(decoded.chunks, snap.chunks);
    EXPECT_EQ(decoded.state.chunkCount, snap.state.chunkCount);
    // Deterministic: re-encoding the decoded snapshot is byte-equal.
    EXPECT_EQ(encode(decoded), blob);
}

TEST(SnapshotCodec, EveryTruncationIsACleanTypedError)
{
    SessionVm vm(SessionVm::Config{}, "print(1)");
    const std::string blob = encode(vm.snapshot(1));

    Snapshot out;
    std::string error;
    // Every header truncation, then the body at a coprime stride (plus
    // the final few bytes, where an off-by-one would hide).
    std::vector<size_t> lengths;
    for (size_t len = 0; len <= kHeaderBytes; ++len)
        lengths.push_back(len);
    for (size_t len = kHeaderBytes + 1; len < blob.size(); len += 7)
        lengths.push_back(len);
    for (size_t back = 1; back <= 8 && back < blob.size(); ++back)
        lengths.push_back(blob.size() - back);
    for (const size_t len : lengths) {
        error.clear();
        EXPECT_FALSE(decode(blob.substr(0, len), out, error))
            << "truncation to " << len << " bytes decoded";
        EXPECT_EQ(error.rfind("bad-snapshot: ", 0), 0u)
            << "untyped error at " << len << ": " << error;
    }

    // Trailing garbage is rejected too.
    EXPECT_FALSE(decode(blob + "x", out, error));
    EXPECT_EQ(error.rfind("bad-snapshot: ", 0), 0u);
}

TEST(SnapshotCodec, EveryBitFlipIsACleanTypedError)
{
    SessionVm vm(SessionVm::Config{}, "print(1)");
    const std::string blob = encode(vm.snapshot(1));

    Snapshot out;
    std::string error;
    for (size_t pos = 0; pos < blob.size();
         pos += (pos < kHeaderBytes ? 1 : 13)) {
        for (int bit = 0; bit < 8; bit += 3) {
            std::string corrupt = blob;
            corrupt[pos] =
                static_cast<char>(corrupt[pos] ^ (1u << bit));
            error.clear();
            EXPECT_FALSE(decode(corrupt, out, error))
                << "bit " << bit << " at byte " << pos
                << " flipped undetected";
            EXPECT_EQ(error.rfind("bad-snapshot: ", 0), 0u)
                << "untyped error: " << error;
        }
    }
}

TEST(SnapshotCodec, RejectsWrongMagicVersionAndEnums)
{
    SessionVm vm(SessionVm::Config{}, "print(1)");
    Snapshot snap = vm.snapshot(1);

    Snapshot out;
    std::string error;
    snap.engine = 9;
    EXPECT_FALSE(decode(encode(snap), out, error));
    EXPECT_NE(error.find("enum"), std::string::npos) << error;
    snap.engine = 0;
    snap.variant = 3;
    EXPECT_FALSE(decode(encode(snap), out, error));
    snap.variant = 0;
    snap.execMode = 2;
    EXPECT_FALSE(decode(encode(snap), out, error));
    snap.execMode = 0;
    snap.chunks.clear();
    EXPECT_FALSE(decode(encode(snap), out, error));
    EXPECT_EQ(error.rfind("bad-snapshot: ", 0), 0u);
}

TEST(SnapshotCodec, RestoreRejectsMismatchedRebuild)
{
    // A blob whose recorded sources do not reproduce the recorded
    // machine shape must be rejected by restore, not mis-restored.
    SessionVm vm(SessionVm::Config{}, kMatrixScript);
    vm.core().runUntilInstructions(1024);
    Snapshot snap = vm.snapshot(1);
    snap.chunks[0] = "print(1)";  // different program, same state
    snap.state.chunkCount = 1;
    std::string error;
    EXPECT_EQ(SessionVm::restore(snap, error), nullptr);
    EXPECT_FALSE(error.empty());
}

TEST(SnapshotOracle, CheckpointAxisStaysCleanOnKnownGoodProgram)
{
    fuzz::OracleOptions opts;
    opts.checkpoint = 2048;
    const fuzz::OracleResult result = fuzz::runOracle(R"(
function add(a, b) return a + b end
s = 0
i = 0
while i < 50 do
  s = add(s, i * 2)
  i = i + 1
end
print(s .. "!")
print(s / 4)
)",
                                                      opts);
    ASSERT_TRUE(result.referenceOk) << result.referenceError;
    for (const fuzz::Divergence &d : result.divergences)
        ADD_FAILURE() << d.describe();
}

} // namespace
} // namespace tarch::snapshot
