// Unit tests for the differential-fuzzing subsystem (src/fuzz): the
// grammar-driven program generator, the 12-way differential oracle and
// its stats invariants, and the line-removal shrinker.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/strutil.h"
#include "fuzz/oracle.h"
#include "fuzz/progen.h"
#include "fuzz/shrink.h"
#include "script/interp.h"
#include "script/parser.h"

namespace tarch::fuzz {
namespace {

TEST(Progen, DeterministicPerSeed)
{
    const std::string a = generateProgram(42);
    const std::string b = generateProgram(42);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, generateProgram(43));
}

TEST(Progen, StreamAdvancesAcrossCalls)
{
    ProgramGen gen(7);
    const std::string first = gen.generate();
    const std::string second = gen.generate();
    EXPECT_NE(first, second);
    // A fresh generator replays the same stream from the start.
    ProgramGen replay(7);
    EXPECT_EQ(replay.generate(), first);
    EXPECT_EQ(replay.generate(), second);
}

TEST(Progen, GeneratedProgramsParseAndTerminate)
{
    for (uint64_t seed = 100; seed < 110; ++seed) {
        const std::string source = generateProgram(seed);
        SCOPED_TRACE(source);
        script::Chunk chunk;
        ASSERT_NO_THROW(chunk = script::parse(source)) << "seed " << seed;
        // Both dialects must accept and finish within the step budget.
        EXPECT_NO_THROW(script::interpret(chunk, script::NumberStyle::Lua,
                                          8'000'000));
        EXPECT_NO_THROW(script::interpret(chunk, script::NumberStyle::Js,
                                          8'000'000));
    }
}

TEST(Progen, FeatureTogglesPruneTheGrammar)
{
    ProgenOptions bare;
    bare.functions = false;
    bare.tables = false;
    bare.strings = false;
    bare.int32Overflow = false;
    for (uint64_t seed = 0; seed < 5; ++seed) {
        const std::string source = generateProgram(seed, bare);
        EXPECT_EQ(source.find("function"), std::string::npos);
        EXPECT_EQ(source.find('{'), std::string::npos);
        EXPECT_EQ(source.find("substr"), std::string::npos);
        EXPECT_EQ(source.find('"'), std::string::npos);
    }
}

TEST(Progen, PolymorphicReuseRebindsALocalFromNumberToString)
{
    // The "q" name prefix is reserved for stmtPolyReuse; some seed in a
    // small window must declare one and later rebind the SAME name
    // (the helper reads it emits also use the prefix, so match the
    // exact declared name).
    bool found = false;
    for (uint64_t seed = 0; seed < 30 && !found; ++seed) {
        const std::string source = generateProgram(seed);
        const size_t decl = source.find("local q");
        if (decl == std::string::npos)
            continue;
        const size_t name_end = source.find(' ', decl + 6);
        ASSERT_NE(name_end, std::string::npos) << source;
        const std::string name = source.substr(decl + 6, name_end - decl - 6);
        const size_t rebind = source.find(name + " = ", name_end);
        ASSERT_NE(rebind, std::string::npos) << source;
        found = true;
    }
    EXPECT_TRUE(found);

    ProgenOptions off;
    off.polyReuse = false;
    for (uint64_t seed = 0; seed < 5; ++seed)
        EXPECT_EQ(generateProgram(seed, off).find("local q"),
                  std::string::npos);
}

TEST(Oracle, TwentyFourConfigsInFixedOrder)
{
    const auto configs = allRunConfigs();
    ASSERT_EQ(configs.size(), 24u);
    EXPECT_EQ(configs.front().name(), "MiniLua/baseline/deopt=off");
    // Per engine: the elide-off block precedes the elide-on block, so
    // each block keeps its own baseline/deopt-off run for the
    // cross-run stats checks.
    EXPECT_EQ(configs[6].name(), "MiniLua/baseline/deopt=off/elide=on");
    EXPECT_EQ(configs.back().name(),
              "MiniJS/checked-load/deopt=on/elide=on");
}

TEST(Oracle, ExecModeAxisInterleavesPredecodedTwins)
{
    // The exec-mode axis doubles the matrix and places each predecoded
    // twin immediately after its exact sibling — runOracle's
    // bit-identity check depends on that adjacency.
    const auto configs = allRunConfigs(true);
    ASSERT_EQ(configs.size(), 48u);
    EXPECT_EQ(configs[0].name(), "MiniLua/baseline/deopt=off");
    EXPECT_EQ(configs[1].name(),
              "MiniLua/baseline/deopt=off/mode=predecoded");
    EXPECT_EQ(configs.back().name(),
              "MiniJS/checked-load/deopt=on/elide=on/mode=predecoded");
    for (size_t i = 0; i < configs.size(); i += 2) {
        EXPECT_EQ(configs[i].execMode, core::ExecMode::Exact);
        EXPECT_EQ(configs[i + 1].execMode, core::ExecMode::Predecoded);
        EXPECT_EQ(configs[i].engine, configs[i + 1].engine);
        EXPECT_EQ(configs[i].variant, configs[i + 1].variant);
        EXPECT_EQ(configs[i].deopt, configs[i + 1].deopt);
        EXPECT_EQ(configs[i].elide, configs[i + 1].elide);
    }
}

TEST(Oracle, CleanOnAHandCheckedProgram)
{
    const OracleResult result = runOracle(R"(
local acc = 0
for i = 1, 10 do
  acc = acc + i * i
end
print(acc)
print(acc // 7)
print(acc % 7)
print("x=" .. acc)
)");
    ASSERT_TRUE(result.referenceOk) << result.referenceError;
    EXPECT_TRUE(result.clean());
    // 24 exact runs plus the 24 bit-identical predecoded twins.
    EXPECT_EQ(result.runs.size(), 48u);
    EXPECT_EQ(result.expectedLua, "385\n55\n0\nx=385\n");
}

TEST(Oracle, RejectsReferenceErrorsWithoutDiverging)
{
    // A program the reference itself rejects proves nothing: it must
    // come back referenceOk=false and with diverges()==false, so the
    // shrinker never chases it.
    const OracleResult result = runOracle("print(1 + \"x\")");
    EXPECT_FALSE(result.referenceOk);
    EXPECT_FALSE(result.diverges());
    EXPECT_FALSE(result.clean());
}

TEST(Oracle, DialectSplitIsHandledPerEngine)
{
    // nil prints differently per dialect; each engine is compared
    // against its own reference output.
    const OracleResult result = runOracle("print(q)\nprint(0.5)\n");
    ASSERT_TRUE(result.referenceOk);
    EXPECT_TRUE(result.clean());
    EXPECT_EQ(result.expectedLua, "nil\n0.5\n");
    EXPECT_EQ(result.expectedJs, "undefined\n0.5\n");
}

// ---------------------------------------------------------------------
// statsViolations as a pure function.

core::CoreStats
plausibleStats()
{
    core::CoreStats s;
    s.instructions = 1000;
    s.cycles = 1500;
    s.hostcalls = 3;
    return s;
}

TEST(StatsInvariants, CleanBaselineRun)
{
    const RunConfig cfg{RunConfig::Engine::Lua, vm::Variant::Baseline,
                        false};
    EXPECT_TRUE(statsViolations(plausibleStats(), cfg, nullptr).empty());
}

TEST(StatsInvariants, InOrderCoreCannotBeatOneIpc)
{
    core::CoreStats s = plausibleStats();
    s.cycles = s.instructions - 1;
    const RunConfig cfg{RunConfig::Engine::Lua, vm::Variant::Baseline,
                        false};
    EXPECT_FALSE(statsViolations(s, cfg, nullptr).empty());
}

TEST(StatsInvariants, BaselineMustNotTouchTypedCounters)
{
    core::CoreStats s = plausibleStats();
    s.trt.lookups = 5;
    s.trt.hits = 5;
    const RunConfig cfg{RunConfig::Engine::Lua, vm::Variant::Baseline,
                        false};
    EXPECT_FALSE(statsViolations(s, cfg, nullptr).empty());
}

TEST(StatsInvariants, TypedMustNotTouchChklb)
{
    core::CoreStats s = plausibleStats();
    s.chklbChecks = 1;
    const RunConfig cfg{RunConfig::Engine::Lua, vm::Variant::Typed, false};
    EXPECT_FALSE(statsViolations(s, cfg, nullptr).empty());
}

TEST(StatsInvariants, DeoptCountersStayZeroWhenDisabled)
{
    core::CoreStats s = plausibleStats();
    s.deoptRedirects = 64;
    const RunConfig cfg{RunConfig::Engine::Lua, vm::Variant::Typed, false};
    EXPECT_FALSE(statsViolations(s, cfg, nullptr).empty());
}

TEST(StatsInvariants, ProbesMustMatchRedirectsOverInterval)
{
    core::CoreStats s = plausibleStats();
    s.deoptRedirects = 64;
    s.deoptProbes = 2;
    const RunConfig cfg{RunConfig::Engine::Lua, vm::Variant::Typed, true};
    EXPECT_TRUE(statsViolations(s, cfg, nullptr, 32).empty());
    s.deoptProbes = 3;
    EXPECT_FALSE(statsViolations(s, cfg, nullptr, 32).empty());
}

TEST(StatsInvariants, LuaNeverRecordsOverflowMisses)
{
    core::CoreStats s = plausibleStats();
    s.typeOverflowMisses = 1;
    const RunConfig lua{RunConfig::Engine::Lua, vm::Variant::Typed, false};
    EXPECT_FALSE(statsViolations(s, lua, nullptr).empty());
    const RunConfig js{RunConfig::Engine::Js, vm::Variant::Typed, false};
    EXPECT_TRUE(statsViolations(s, js, nullptr).empty());
}

TEST(StatsInvariants, HostcallsAreVariantInvariant)
{
    core::CoreStats base = plausibleStats();
    core::CoreStats s = plausibleStats();
    s.hostcalls = base.hostcalls + 1;
    const RunConfig cfg{RunConfig::Engine::Lua, vm::Variant::CheckedLoad,
                        false};
    EXPECT_FALSE(statsViolations(s, cfg, &base).empty());
    // Typed with the deopt selector on may only ADD hostcalls.
    const RunConfig redirecting{RunConfig::Engine::Lua, vm::Variant::Typed,
                                true};
    core::CoreStats extra = plausibleStats();
    extra.hostcalls = base.hostcalls + 2;
    extra.deoptRedirects = 64;
    extra.deoptProbes = 2;
    EXPECT_TRUE(statsViolations(extra, redirecting, &base).empty());
    extra.hostcalls = base.hostcalls - 1;
    EXPECT_FALSE(statsViolations(extra, redirecting, &base).empty());
}

TEST(StatsInvariants, TypeStableTypedMustNotRegressPastAllowance)
{
    core::CoreStats base = plausibleStats();
    core::CoreStats s = plausibleStats();
    const RunConfig cfg{RunConfig::Engine::Lua, vm::Variant::Typed, false};
    // Within the fixed TRT-configuration startup allowance: clean.
    s.instructions = base.instructions + 30;
    s.cycles = s.instructions + 100;
    EXPECT_TRUE(statsViolations(s, cfg, &base).empty());
    // Far past it: a fast-path regression.
    s.instructions = base.instructions + 500;
    s.cycles = s.instructions + 100;
    EXPECT_FALSE(statsViolations(s, cfg, &base).empty());
    // A single TRT miss voids the comparison (slow paths are expected).
    s.trt.lookups = 10;
    s.trt.hits = 9;
    EXPECT_TRUE(statsViolations(s, cfg, &base).empty());
}

// ---------------------------------------------------------------------
// Shrinker.

TEST(Shrink, RemovesEverythingIrrelevantToThePredicate)
{
    std::string source;
    for (int i = 0; i < 40; ++i)
        source += strformat("local x%d = %d\n", i, i);
    source += "print(\"BUG\")\n";
    for (int i = 40; i < 80; ++i)
        source += strformat("local x%d = %d\n", i, i);

    ShrinkStats stats;
    const std::string shrunk = shrinkLines(
        source,
        [](const std::string &candidate) {
            return candidate.find("BUG") != std::string::npos;
        },
        &stats);
    EXPECT_EQ(shrunk, "print(\"BUG\")\n");
    EXPECT_EQ(stats.linesBefore, 81);
    EXPECT_EQ(stats.linesAfter, 1);
    EXPECT_GT(stats.attempts, 0);
    EXPECT_GT(stats.accepted, 0);
}

TEST(Shrink, KeepsJointlyRequiredLines)
{
    const std::string source = "alpha\nnoise1\nbeta\nnoise2\nnoise3\n";
    const std::string shrunk = shrinkLines(
        source, [](const std::string &candidate) {
            return candidate.find("alpha") != std::string::npos &&
                   candidate.find("beta") != std::string::npos;
        });
    EXPECT_EQ(shrunk, "alpha\nbeta\n");
}

TEST(Shrink, FixpointWhenNothingRemovable)
{
    const std::string source = "a\nb\n";
    ShrinkStats stats;
    const std::string shrunk = shrinkLines(
        source,
        [](const std::string &candidate) {
            return candidate.find('a') != std::string::npos &&
                   candidate.find('b') != std::string::npos;
        },
        &stats);
    EXPECT_EQ(shrunk, source);
    EXPECT_EQ(stats.linesAfter, 2);
}

TEST(Shrink, OracleIntegrationShrinksAnInjectedDivergence)
{
    // Simulate a semantic bug with a predicate that flags any program
    // printing the "wrong" value, then check the pipeline minimizes a
    // padded reproducer the same way fuzz_differential does.
    std::string source;
    for (int i = 0; i < 12; ++i)
        source += strformat("print(%d)\n", i);
    source += "print(12 // 5)\n"; // the "buggy" construct
    const std::string shrunk = shrinkLines(
        source, [](const std::string &candidate) {
            const OracleResult r = runOracle(candidate);
            return r.referenceOk &&
                   r.expectedLua.find("2\n") != std::string::npos &&
                   candidate.find("//") != std::string::npos;
        });
    EXPECT_LE(std::count(shrunk.begin(), shrunk.end(), '\n'), 2);
    EXPECT_NE(shrunk.find("12 // 5"), std::string::npos);
}

} // namespace
} // namespace tarch::fuzz
