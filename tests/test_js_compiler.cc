// Unit tests for the MiniJS stack-bytecode compiler and NaN-box helpers.

#include <gtest/gtest.h>

#include "common/log.h"
#include "script/parser.h"
#include "vm/js/compiler.h"

namespace tarch::vm::js {
namespace {

Module
comp(const std::string &src)
{
    return compile(script::parse(src));
}

Op opOf(uint32_t w) { return static_cast<Op>(w & 0xFF); }
int32_t immOf(uint32_t w) { return static_cast<int32_t>(w) >> 8; }

TEST(NanBox, BoxingHelpers)
{
    EXPECT_EQ(boxInt(0), 0xFFF9000000000000ULL);
    EXPECT_EQ(boxInt(-1) & 0xFFFFFFFFULL, 0xFFFFFFFFULL);
    EXPECT_EQ(typeHalfword(kTagInt), 0xFFF9);
    EXPECT_EQ(typeHalfword(kTagObj), 0xFFFE);
    EXPECT_EQ(typeHalfword(kTagFun), 0xFFFF);
    // Tags are even so the halfword is unique per type.
    EXPECT_NE(typeHalfword(kTagStr), typeHalfword(kTagUndef));
}

TEST(JsCompiler, SmallIntsUseImmediateForm)
{
    const Module m = comp("local a = 5");
    EXPECT_EQ(opOf(m.protos[0].code[0]), Op::PUSHINT);
    EXPECT_EQ(immOf(m.protos[0].code[0]), 5);
    EXPECT_EQ(opOf(m.protos[0].code[1]), Op::SETLOCAL);
}

TEST(JsCompiler, LargeIntsBecomeConstants)
{
    const Module m = comp("local a = 10000000");
    EXPECT_EQ(opOf(m.protos[0].code[0]), Op::PUSHK);
    EXPECT_EQ(m.protos[0].consts[0].bits, box(kTagInt, 10000000u));
}

TEST(JsCompiler, HugeIntsBecomeDoubles)
{
    const Module m = comp("local a = 10000000000");
    double d;
    memcpy(&d, &m.protos[0].consts[0].bits, 8);
    EXPECT_DOUBLE_EQ(d, 1e10);
}

TEST(JsCompiler, MainEndsWithReturn)
{
    const Module m = comp("print(1)");
    const auto &code = m.protos[0].code;
    EXPECT_EQ(opOf(code[code.size() - 1]), Op::RETURN);
    EXPECT_EQ(opOf(code[code.size() - 2]), Op::PUSHUNDEF);
}

TEST(JsCompiler, StatementsBalanceTheStack)
{
    // Call statements pop their value.
    const Module m = comp("function f() return 1 end\nf()");
    const auto &code = m.protos[0].code;
    bool pop_after_call = false;
    for (size_t i = 1; i < code.size(); ++i) {
        if (opOf(code[i - 1]) == Op::CALL && opOf(code[i]) == Op::POP)
            pop_after_call = true;
    }
    EXPECT_TRUE(pop_after_call);
}

TEST(JsCompiler, GtSwapsOperandOrder)
{
    const Module m = comp("local a = 1\nlocal b = 2\nlocal c = a > b");
    const auto &code = m.protos[0].code;
    // rhs (b) pushed first, then lhs (a), then LT.
    size_t lt = SIZE_MAX;
    for (size_t i = 0; i < code.size(); ++i) {
        if (opOf(code[i]) == Op::LT)
            lt = i;
    }
    ASSERT_NE(lt, SIZE_MAX);
    EXPECT_EQ(opOf(code[lt - 2]), Op::GETLOCAL);
    EXPECT_EQ(immOf(code[lt - 2]), 1);  // b
    EXPECT_EQ(immOf(code[lt - 1]), 0);  // a
}

TEST(JsCompiler, ForLoopUsesHiddenLocals)
{
    const Module m = comp("for i = 1, 3 do print(i) end");
    // var + limit + step hidden slots.
    EXPECT_GE(m.protos[0].nlocals, 3u);
}

TEST(JsCompiler, FunctionArityChecked)
{
    EXPECT_THROW(comp("function f(a) return a end\nf(1, 2)"), FatalError);
    EXPECT_THROW(comp("x = undefined_fn(1)"), FatalError);
}

TEST(JsCompiler, DisassemblerSmoke)
{
    const Module m = comp("for i = 1, 3 do print(i) end");
    const std::string listing = disassemble(m.protos[0].code);
    EXPECT_NE(listing.find("JUMPF"), std::string::npos);
    EXPECT_NE(listing.find("BUILTIN"), std::string::npos);
}

} // namespace
} // namespace tarch::vm::js
