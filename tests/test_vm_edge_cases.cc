// Edge-case and stress tests for both VMs: register pressure, long jump
// distances, table key corner cases, shadow-hash migration, interning,
// deep call chains, and error paths.

#include <gtest/gtest.h>

#include "common/log.h"
#include "common/strutil.h"
#include "vm/js/js_vm.h"
#include "vm/lua/lua_vm.h"

namespace tarch::vm {
namespace {

std::string
runLua(const std::string &src, Variant v = Variant::Baseline)
{
    lua::LuaVm::Options opts;
    opts.variant = v;
    lua::LuaVm vm(src, opts);
    vm.run();
    return vm.output();
}

std::string
runJs(const std::string &src, Variant v = Variant::Baseline)
{
    js::JsVm::Options opts;
    opts.variant = v;
    js::JsVm vm(src, opts);
    vm.run();
    return vm.output();
}

TEST(EdgeCases, DeepExpressionRegisterPressure)
{
    // 40 nested additions: the Lua compiler's temporaries must recycle.
    std::string expr = "1";
    for (int i = 2; i <= 40; ++i)
        expr = "(" + expr + strformat(" + %d)", i);
    const std::string src = "print(" + expr + ")\n";
    EXPECT_EQ(runLua(src), "820\n");
    EXPECT_EQ(runJs(src), "820\n");
}

TEST(EdgeCases, LongProgramJumpDistances)
{
    // Hundreds of sequential if-blocks: jump offsets stay correct.
    std::string src = "local n = 0\n";
    for (int i = 0; i < 400; ++i)
        src += strformat(
            "if n == %d then n = n + 1 else n = n + 1 end\n", i);
    src += "print(n)\n";
    EXPECT_EQ(runLua(src), "400\n");
    EXPECT_EQ(runJs(src), "400\n");
}

TEST(EdgeCases, TableKeyCorners)
{
    const char *src = R"(
local t = {}
t[0] = "zero"
t[-3] = "neg"
t[2.0] = "two"
print(t[0])
print(t[-3])
print(t[2])
t[2] = "two!"
print(t[2.0])
)";
    EXPECT_EQ(runLua(src), "zero\nneg\ntwo\ntwo!\n");
    EXPECT_EQ(runJs(src), "zero\nneg\ntwo\ntwo!\n");
}

TEST(EdgeCases, SparseThenDenseMigration)
{
    // t[100] first lands in the shadow hash; filling 1..100 grows the
    // array past it, and the migration must preserve the value.
    const char *src = R"(
local t = {}
t[100] = 4242
for i = 1, 99 do t[i] = i end
print(t[100])
print(#t)
t[100] = t[100] + 1
print(t[100])
)";
    EXPECT_EQ(runLua(src), "4242\n100\n4243\n");
    EXPECT_EQ(runJs(src), "4242\n100\n4243\n");
}

TEST(EdgeCases, FarKeysStayInShadow)
{
    const char *src = R"(
local t = {}
t[1000000] = 7
t[1] = 1
print(t[1000000])
print(t[999999])
)";
    EXPECT_EQ(runLua(src), "7\nnil\n");
    EXPECT_EQ(runJs(src), "7\nundefined\n");
}

TEST(EdgeCases, StringInterningGivesIdentity)
{
    const char *src = R"(
local a = substr("abc", 1, 1)
local b = substr("xa", 2, 2)
print(a == b)
print(a == "a")
print(("x" .. "y") == "xy")
)";
    EXPECT_EQ(runLua(src), "true\ntrue\ntrue\n");
    EXPECT_EQ(runJs(src), "true\ntrue\ntrue\n");
}

TEST(EdgeCases, ManyArguments)
{
    const char *src = R"(
function sum8(a, b, c, d, e, f, g, h)
  return a + b + c + d + e + f + g + h
end
print(sum8(1, 2, 3, 4, 5, 6, 7, 8))
)";
    EXPECT_EQ(runLua(src), "36\n");
    EXPECT_EQ(runJs(src), "36\n");
}

TEST(EdgeCases, DeepCallChain)
{
    const char *src = R"(
function down(n)
  if n == 0 then return 0 end
  return down(n - 1) + 1
end
print(down(3000))
)";
    EXPECT_EQ(runLua(src), "3000\n");
    EXPECT_EQ(runJs(src), "3000\n");
}

TEST(EdgeCases, NestedLoopsWithBreaks)
{
    const char *src = R"(
local hits = 0
for i = 1, 10 do
  local j = 0
  while true do
    j = j + 1
    if j == i then break end
    hits = hits + 1
  end
  if i == 7 then break end
end
print(hits)
)";
    // sum of (i-1) for i=1..7 = 21.
    EXPECT_EQ(runLua(src), "21\n");
    EXPECT_EQ(runJs(src), "21\n");
}

TEST(EdgeCases, ConcatChainBuildsLongString)
{
    const char *src = R"(
local s = ""
for i = 1, 50 do s = s .. i .. "," end
print(#s)
)";
    // 1..9: 2 chars each (18), 10..50: 3 chars each (123) -> 141.
    EXPECT_EQ(runLua(src), "141\n");
    EXPECT_EQ(runJs(src), "141\n");
}

TEST(EdgeCases, StringOrderingIsAnError)
{
    EXPECT_THROW(runLua("print(\"a\" < \"b\")"), FatalError);
    EXPECT_THROW(runJs("print(\"a\" < \"b\")"), FatalError);
}

TEST(EdgeCases, IntegerDivisionByZeroIsAnError)
{
    EXPECT_THROW(runLua("print(1 // 0)"), FatalError);
    EXPECT_THROW(runJs("print(5 % 0)"), FatalError);
}

TEST(EdgeCases, FloatDivisionByZeroIsInfinity)
{
    EXPECT_EQ(runLua("print(1 / 0)"), "inf\n");
    EXPECT_EQ(runJs("print(1 / 0)"), "inf\n");
}

TEST(EdgeCases, JsDeoptSelectorWorksToo)
{
    js::JsVm::Options opts;
    opts.variant = Variant::Typed;
    opts.coreConfig.deopt.enabled = true;
    js::JsVm vm(R"(
local s = 0.5
for i = 1, 3000 do s = s + 0.25 end
print(s)
)",
                opts);
    vm.run();
    EXPECT_EQ(vm.output(), "750.5\n");
    // Float+float hits the TRT (Flt,Flt rule): no deopt on this one...
    EXPECT_EQ(vm.core().collectStats().deoptRedirects, 0u);

    js::JsVm::Options opts2;
    opts2.variant = Variant::Typed;
    opts2.coreConfig.deopt.enabled = true;
    js::JsVm vm2(R"(
local s = ""
local n = 0
for i = 1, 500 do
  s = s .. "x"
  n = n + #s
end
print(n)
)",
                 opts2);
    vm2.run();
    EXPECT_EQ(vm2.output(), "125250\n");
}

TEST(EdgeCases, GlobalsSharedAcrossFunctions)
{
    const char *src = R"(
acc = 0
function add(k) acc = acc + k return 0 end
function get() return acc end
add(5)
add(7)
print(get())
)";
    EXPECT_EQ(runLua(src), "12\n");
    EXPECT_EQ(runJs(src), "12\n");
}

TEST(EdgeCases, ShadowedLocalsRestoreAfterBlocks)
{
    const char *src = R"(
local x = 1
for x = 10, 10 do
  print(x)
end
print(x)
if true then
  local x = 99
  print(x)
end
print(x)
)";
    EXPECT_EQ(runLua(src), "10\n1\n99\n1\n");
    EXPECT_EQ(runJs(src), "10\n1\n99\n1\n");
}

TEST(EdgeCases, AllVariantsSurviveTableHeavyChurn)
{
    const char *src = R"(
local t = {}
local sum = 0
for round = 1, 20 do
  for i = 1, 50 do
    t[i] = (t[i] or 0) + i
  end
end
for i = 1, 50 do sum = sum + t[i] end
print(sum)
)";
    const std::string expected = "25500\n";
    for (const Variant v :
         {Variant::Baseline, Variant::Typed, Variant::CheckedLoad}) {
        EXPECT_EQ(runLua(src, v), expected);
        EXPECT_EQ(runJs(src, v), expected);
    }
}

} // namespace
} // namespace tarch::vm
