// Unit tests for src/common: bit utilities, string helpers, logging,
// and the shared work-queue executor (also run under ThreadSanitizer
// by scripts/ci.sh).

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/bitops.h"
#include "common/log.h"
#include "common/parallel.h"
#include "common/strutil.h"

namespace tarch {
namespace {

TEST(Bitops, BitsExtractsInclusiveRange)
{
    EXPECT_EQ(bits(0xDEADBEEF, 15, 8), 0xBEu);
    EXPECT_EQ(bits(0xFF, 7, 0), 0xFFu);
    EXPECT_EQ(bits(0x8000000000000000ULL, 63, 63), 1u);
    EXPECT_EQ(bits(~0ULL, 63, 0), ~0ULL);
}

TEST(Bitops, SignExtend)
{
    EXPECT_EQ(signExtend(0x7F, 8), 127);
    EXPECT_EQ(signExtend(0x80, 8), -128);
    EXPECT_EQ(signExtend(0xFFF, 12), -1);
    EXPECT_EQ(signExtend(0, 1), 0);
    EXPECT_EQ(signExtend(1, 1), -1);
}

TEST(Bitops, FitsSigned)
{
    EXPECT_TRUE(fitsSigned(127, 8));
    EXPECT_FALSE(fitsSigned(128, 8));
    EXPECT_TRUE(fitsSigned(-128, 8));
    EXPECT_FALSE(fitsSigned(-129, 8));
    EXPECT_TRUE(fitsSigned(16383, 15));
    EXPECT_FALSE(fitsSigned(16384, 15));
}

TEST(Bitops, InsertBits)
{
    EXPECT_EQ(insertBits(0, 15, 8, 0xAB), 0xAB00u);
    EXPECT_EQ(insertBits(0xFFFF, 7, 0, 0), 0xFF00u);
    EXPECT_EQ(insertBits(0, 63, 63, 1), 0x8000000000000000ULL);
}

TEST(Bitops, PowersOfTwo)
{
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(64));
    EXPECT_FALSE(isPow2(0));
    EXPECT_FALSE(isPow2(12));
    EXPECT_EQ(log2Floor(1), 0u);
    EXPECT_EQ(log2Floor(64), 6u);
    EXPECT_EQ(log2Floor(65), 6u);
    EXPECT_EQ(alignUp(13, 8), 16u);
    EXPECT_EQ(alignUp(16, 8), 16u);
}

TEST(Strutil, Strformat)
{
    EXPECT_EQ(strformat("x=%d", 42), "x=42");
    EXPECT_EQ(strformat("%s-%s", "a", "b"), "a-b");
    EXPECT_EQ(strformat("empty"), "empty");
}

TEST(Strutil, Split)
{
    const auto fields = split("a,b,,c", ',');
    ASSERT_EQ(fields.size(), 4u);
    EXPECT_EQ(fields[0], "a");
    EXPECT_EQ(fields[2], "");
    EXPECT_EQ(fields[3], "c");
    EXPECT_EQ(split("", ',').size(), 1u);
}

TEST(Strutil, Trim)
{
    EXPECT_EQ(trim("  hi  "), "hi");
    EXPECT_EQ(trim("hi"), "hi");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim("\ta b\n"), "a b");
}

TEST(Strutil, StartsWithAndToLower)
{
    EXPECT_TRUE(startsWith("foobar", "foo"));
    EXPECT_FALSE(startsWith("fo", "foo"));
    EXPECT_EQ(toLower("AbC"), "abc");
}

TEST(Log, FatalThrows)
{
    EXPECT_THROW(tarch_fatal("boom %d", 3), FatalError);
    try {
        tarch_fatal("boom %d", 3);
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("boom 3"), std::string::npos);
    }
}

TEST(Parallel, EveryIndexRunsExactlyOnce)
{
    constexpr size_t kCount = 1000;
    std::vector<std::atomic<int>> hits(kCount);
    parallelFor(kCount, 8, [&](size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < kCount; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(Parallel, SingleJobRunsInlineInOrder)
{
    std::vector<size_t> order;
    parallelFor(5, 1, [&](size_t i) { order.push_back(i); });
    EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(Parallel, MoreJobsThanWorkStillCoversEverything)
{
    std::vector<std::atomic<int>> hits(3);
    parallelFor(3, 64, [&](size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < 3; ++i)
        EXPECT_EQ(hits[i].load(), 1);
}

TEST(Parallel, LowestFailingIndexIsRethrown)
{
    // Indices are handed out in order, so index 3 is always observed
    // failing even when higher failures finish (and abort) first.
    try {
        parallelFor(100, 4, [](size_t i) {
            if (i % 10 == 3)
                throw std::runtime_error(strformat("boom %zu", i));
        });
        FAIL() << "expected a rethrow";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "boom 3");
    }
}

// ---------------------------------------------------------------------
// The persistent bounded-queue Pool (the tarch_served dispatcher).

TEST(Pool, RunsEverySubmittedTask)
{
    Pool pool({.jobs = 4, .queueCapacity = 0});
    std::atomic<int> ran{0};
    for (int i = 0; i < 200; ++i)
        ASSERT_TRUE(pool.trySubmit([&] { ran.fetch_add(1); }));
    pool.drain();
    EXPECT_EQ(ran.load(), 200);
    EXPECT_EQ(pool.pending(), 0u);
    EXPECT_EQ(pool.inFlight(), 0u);
}

/** Parks the pool's only worker until release() is called. */
struct WorkerGate {
    std::mutex mu;
    std::condition_variable cv;
    bool released = false;
    bool entered = false;

    std::function<void()>
    task()
    {
        return [this] {
            std::unique_lock<std::mutex> lock(mu);
            entered = true;
            cv.notify_all();
            cv.wait(lock, [this] { return released; });
        };
    }

    void
    awaitEntered()
    {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [this] { return entered; });
    }

    void
    release()
    {
        std::lock_guard<std::mutex> lock(mu);
        released = true;
        cv.notify_all();
    }
};

TEST(Pool, TrySubmitRejectsWhenTheQueueIsFull)
{
    Pool pool({.jobs = 1, .queueCapacity = 1});
    WorkerGate gate;
    ASSERT_TRUE(pool.trySubmit(gate.task())); // occupies the worker
    gate.awaitEntered();
    ASSERT_TRUE(pool.trySubmit([] {})); // occupies the one queue slot
    // Backpressure: the queue is full, so trySubmit must refuse — this
    // is what the server turns into a BUSY frame.
    EXPECT_FALSE(pool.trySubmit([] {}));
    EXPECT_EQ(pool.pending(), 1u);
    EXPECT_EQ(pool.inFlight(), 2u);
    gate.release();
    pool.drain();
    EXPECT_TRUE(pool.trySubmit([] {})); // space again after draining
    pool.drain();
}

TEST(Pool, SubmitBlocksForSpaceAndFailsOnlyWhenClosed)
{
    Pool pool({.jobs = 1, .queueCapacity = 1});
    WorkerGate gate;
    ASSERT_TRUE(pool.trySubmit(gate.task()));
    gate.awaitEntered();
    ASSERT_TRUE(pool.trySubmit([] {}));

    std::atomic<int> ran{0};
    std::atomic<bool> accepted{false};
    std::thread submitter([&] {
        // Queue full: this blocks until the gate task retires.
        accepted.store(pool.submit([&] { ran.fetch_add(1); }));
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(accepted.load()); // still blocked on a full queue
    gate.release();
    submitter.join();
    EXPECT_TRUE(accepted.load());
    pool.drain();
    EXPECT_EQ(ran.load(), 1);

    pool.close();
    EXPECT_FALSE(pool.submit([] {}));
    EXPECT_FALSE(pool.trySubmit([] {}));
}

TEST(Pool, DrainWaitsForExecutingTasks)
{
    Pool pool({.jobs = 2, .queueCapacity = 0});
    std::atomic<int> ran{0};
    for (int i = 0; i < 16; ++i)
        pool.trySubmit([&] {
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
            ran.fetch_add(1);
        });
    pool.drain();
    // drain() returning means nothing is queued or mid-task.
    EXPECT_EQ(ran.load(), 16);
}

TEST(Pool, CloseRunsTheBacklogAndIsIdempotent)
{
    std::atomic<int> ran{0};
    Pool pool({.jobs = 1, .queueCapacity = 0});
    WorkerGate gate;
    ASSERT_TRUE(pool.trySubmit(gate.task()));
    gate.awaitEntered();
    for (int i = 0; i < 8; ++i)
        ASSERT_TRUE(pool.trySubmit([&] { ran.fetch_add(1); }));
    gate.release();
    pool.close();
    EXPECT_EQ(ran.load(), 8); // queued tasks still ran
    pool.close();             // second close is a no-op
}

TEST(Pool, ThrowingTaskIsSwallowedAndThePoolKeepsRunning)
{
    Pool pool({.jobs = 1, .queueCapacity = 0});
    std::atomic<int> ran{0};
    ASSERT_TRUE(
        pool.trySubmit([] { throw std::runtime_error("task boom"); }));
    ASSERT_TRUE(pool.trySubmit([&] { ran.fetch_add(1); }));
    pool.drain();
    EXPECT_EQ(ran.load(), 1);
}

TEST(ResolveJobs, ExplicitRequestBeatsEnvBeatsHardware)
{
    ::setenv("TARCH_TEST_JOBS_A", "3", 1);
    EXPECT_EQ(resolveJobs(5, "TARCH_TEST_JOBS_A"), 5u);
    EXPECT_EQ(resolveJobs(0, "TARCH_TEST_JOBS_A"), 3u);
    ::unsetenv("TARCH_TEST_JOBS_A");
    EXPECT_GE(resolveJobs(0, "TARCH_TEST_JOBS_A"), 1u);
    ::setenv("TARCH_TEST_JOBS_A", "not-a-number", 1);
    EXPECT_GE(resolveJobs(0, "TARCH_TEST_JOBS_A"), 1u); // warn + ignore
    ::unsetenv("TARCH_TEST_JOBS_A");
}

TEST(ResolveJobs, TwoPoolsSizeFromTheirOwnVariablesConcurrently)
{
    // The server pool (TARCH_SERVE_JOBS) and the sweep pool (TARCH_JOBS)
    // are constructed concurrently in tarch_served; the serialized env
    // lookup must hand each its own setting.
    ::setenv("TARCH_TEST_JOBS_B", "2", 1);
    ::setenv("TARCH_TEST_JOBS_C", "7", 1);
    std::atomic<bool> mismatch{false};
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t)
        threads.emplace_back([&, t] {
            for (int i = 0; i < 200; ++i) {
                const bool b = (t + i) % 2 == 0;
                const unsigned got = resolveJobs(
                    0, b ? "TARCH_TEST_JOBS_B" : "TARCH_TEST_JOBS_C");
                if (got != (b ? 2u : 7u))
                    mismatch.store(true);
            }
        });
    for (std::thread &t : threads)
        t.join();
    EXPECT_FALSE(mismatch.load());
    ::unsetenv("TARCH_TEST_JOBS_B");
    ::unsetenv("TARCH_TEST_JOBS_C");
}

} // namespace
} // namespace tarch
