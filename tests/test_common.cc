// Unit tests for src/common: bit utilities, string helpers, logging,
// and the shared work-queue executor (also run under ThreadSanitizer
// by scripts/ci.sh).

#include <atomic>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "common/bitops.h"
#include "common/log.h"
#include "common/parallel.h"
#include "common/strutil.h"

namespace tarch {
namespace {

TEST(Bitops, BitsExtractsInclusiveRange)
{
    EXPECT_EQ(bits(0xDEADBEEF, 15, 8), 0xBEu);
    EXPECT_EQ(bits(0xFF, 7, 0), 0xFFu);
    EXPECT_EQ(bits(0x8000000000000000ULL, 63, 63), 1u);
    EXPECT_EQ(bits(~0ULL, 63, 0), ~0ULL);
}

TEST(Bitops, SignExtend)
{
    EXPECT_EQ(signExtend(0x7F, 8), 127);
    EXPECT_EQ(signExtend(0x80, 8), -128);
    EXPECT_EQ(signExtend(0xFFF, 12), -1);
    EXPECT_EQ(signExtend(0, 1), 0);
    EXPECT_EQ(signExtend(1, 1), -1);
}

TEST(Bitops, FitsSigned)
{
    EXPECT_TRUE(fitsSigned(127, 8));
    EXPECT_FALSE(fitsSigned(128, 8));
    EXPECT_TRUE(fitsSigned(-128, 8));
    EXPECT_FALSE(fitsSigned(-129, 8));
    EXPECT_TRUE(fitsSigned(16383, 15));
    EXPECT_FALSE(fitsSigned(16384, 15));
}

TEST(Bitops, InsertBits)
{
    EXPECT_EQ(insertBits(0, 15, 8, 0xAB), 0xAB00u);
    EXPECT_EQ(insertBits(0xFFFF, 7, 0, 0), 0xFF00u);
    EXPECT_EQ(insertBits(0, 63, 63, 1), 0x8000000000000000ULL);
}

TEST(Bitops, PowersOfTwo)
{
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(64));
    EXPECT_FALSE(isPow2(0));
    EXPECT_FALSE(isPow2(12));
    EXPECT_EQ(log2Floor(1), 0u);
    EXPECT_EQ(log2Floor(64), 6u);
    EXPECT_EQ(log2Floor(65), 6u);
    EXPECT_EQ(alignUp(13, 8), 16u);
    EXPECT_EQ(alignUp(16, 8), 16u);
}

TEST(Strutil, Strformat)
{
    EXPECT_EQ(strformat("x=%d", 42), "x=42");
    EXPECT_EQ(strformat("%s-%s", "a", "b"), "a-b");
    EXPECT_EQ(strformat("empty"), "empty");
}

TEST(Strutil, Split)
{
    const auto fields = split("a,b,,c", ',');
    ASSERT_EQ(fields.size(), 4u);
    EXPECT_EQ(fields[0], "a");
    EXPECT_EQ(fields[2], "");
    EXPECT_EQ(fields[3], "c");
    EXPECT_EQ(split("", ',').size(), 1u);
}

TEST(Strutil, Trim)
{
    EXPECT_EQ(trim("  hi  "), "hi");
    EXPECT_EQ(trim("hi"), "hi");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim("\ta b\n"), "a b");
}

TEST(Strutil, StartsWithAndToLower)
{
    EXPECT_TRUE(startsWith("foobar", "foo"));
    EXPECT_FALSE(startsWith("fo", "foo"));
    EXPECT_EQ(toLower("AbC"), "abc");
}

TEST(Log, FatalThrows)
{
    EXPECT_THROW(tarch_fatal("boom %d", 3), FatalError);
    try {
        tarch_fatal("boom %d", 3);
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("boom 3"), std::string::npos);
    }
}

TEST(Parallel, EveryIndexRunsExactlyOnce)
{
    constexpr size_t kCount = 1000;
    std::vector<std::atomic<int>> hits(kCount);
    parallelFor(kCount, 8, [&](size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < kCount; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(Parallel, SingleJobRunsInlineInOrder)
{
    std::vector<size_t> order;
    parallelFor(5, 1, [&](size_t i) { order.push_back(i); });
    EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(Parallel, MoreJobsThanWorkStillCoversEverything)
{
    std::vector<std::atomic<int>> hits(3);
    parallelFor(3, 64, [&](size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < 3; ++i)
        EXPECT_EQ(hits[i].load(), 1);
}

TEST(Parallel, LowestFailingIndexIsRethrown)
{
    // Indices are handed out in order, so index 3 is always observed
    // failing even when higher failures finish (and abort) first.
    try {
        parallelFor(100, 4, [](size_t i) {
            if (i % 10 == 3)
                throw std::runtime_error(strformat("boom %zu", i));
        });
        FAIL() << "expected a rethrow";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "boom 3");
    }
}

} // namespace
} // namespace tarch
