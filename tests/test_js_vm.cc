// End-to-end MiniJS VM tests: the NaN-boxing stack interpreter runs the
// same MiniScript sources on all three ISA variants with identical
// output.  Expected output follows JS number formatting (integral
// doubles print without a decimal point).

#include <gtest/gtest.h>

#include "common/log.h"
#include "vm/js/js_vm.h"

namespace tarch::vm::js {
namespace {

std::string
runOn(Variant v, const std::string &src)
{
    JsVm::Options opts;
    opts.variant = v;
    JsVm vm(src, opts);
    EXPECT_EQ(vm.run(), 0);
    return vm.output();
}

class JsAllVariants : public ::testing::TestWithParam<Variant>
{
};

INSTANTIATE_TEST_SUITE_P(Js, JsAllVariants,
                         ::testing::Values(Variant::Baseline, Variant::Typed,
                                           Variant::CheckedLoad),
                         [](const auto &info) {
                             switch (info.param) {
                               case Variant::Baseline: return "Baseline";
                               case Variant::Typed: return "Typed";
                               default: return "CheckedLoad";
                             }
                         });

TEST_P(JsAllVariants, PrintLiterals)
{
    EXPECT_EQ(runOn(GetParam(), R"(
print(42)
print(-7)
print(3.5)
print(2.0)
print("hello")
print(true)
print(false)
print(nil)
)"),
              "42\n-7\n3.5\n2\nhello\ntrue\nfalse\nundefined\n");
}

TEST_P(JsAllVariants, IntegerArithmetic)
{
    EXPECT_EQ(runOn(GetParam(), R"(
local a = 10
local b = 3
print(a + b)
print(a - b)
print(a * b)
print(a // b)
print(a % b)
print(-a)
)"),
              "13\n7\n30\n3\n1\n-10\n");
}

TEST_P(JsAllVariants, FloatArithmetic)
{
    EXPECT_EQ(runOn(GetParam(), R"(
print(1.5 + 2.25)
print(10 / 4)
print(7.5 * 2.0)
print(1.0 - 0.75)
)"),
              "3.75\n2.5\n15\n0.25\n");
}

TEST_P(JsAllVariants, MixedIntFloatSlowPath)
{
    EXPECT_EQ(runOn(GetParam(), R"(
local i = 2
local f = 0.5
print(i + f)
print(f + i)
print(i * f)
print(i - f)
)"),
              "2.5\n2.5\n1\n1.5\n");
}

TEST_P(JsAllVariants, Int32OverflowFallsBackToDoubles)
{
    // 2^30 + 2^30 + 2^30 exceeds int32: the overflow path must keep the
    // mathematically correct value as a double.
    EXPECT_EQ(runOn(GetParam(), R"(
local big = 1073741824
print(big + big)
print(big * 4)
print(0 - big - big - big)
)"),
              "2147483648\n4294967296\n-3221225472\n");
}

TEST_P(JsAllVariants, Comparisons)
{
    EXPECT_EQ(runOn(GetParam(), R"(
print(1 < 2)
print(2 <= 2)
print(3 > 4)
print(1.5 >= 1.5)
print(1 == 1.0)
print(1 ~= 2)
print("a" == "a")
print("a" == "b")
print(nil == nil)
print(nil == false)
)"),
              "true\ntrue\nfalse\ntrue\ntrue\ntrue\ntrue\nfalse\ntrue\n"
              "false\n");
}

TEST_P(JsAllVariants, ControlFlowAndLoops)
{
    EXPECT_EQ(runOn(GetParam(), R"(
local x = 7
if x > 10 then
  print("big")
elseif x > 5 then
  print("mid")
else
  print("small")
end
local n = 0
while n < 3 do n = n + 1 end
print(n)
local sum = 0
for i = 1, 10 do
  sum = sum + i
  if i == 5 then break end
end
print(sum)
for i = 10, 1, -3 do print(i) end
)"),
              "mid\n3\n15\n10\n7\n4\n1\n");
}

TEST_P(JsAllVariants, FunctionsAndRecursion)
{
    EXPECT_EQ(runOn(GetParam(), R"(
function add(a, b) return a + b end
function fib(n)
  if n < 2 then return n end
  return fib(n - 1) + fib(n - 2)
end
print(add(2, 3))
print(fib(10))
)"),
              "5\n55\n");
}

TEST_P(JsAllVariants, GlobalsAcrossCalls)
{
    EXPECT_EQ(runOn(GetParam(), R"(
counter = 0
function bump(k)
  counter = counter + k
  return counter
end
print(bump(bump(1) + 1))
print(counter)
)"),
              "3\n3\n");
}

TEST_P(JsAllVariants, Arrays)
{
    EXPECT_EQ(runOn(GetParam(), R"(
local t = {}
t[1] = 10
t[2] = 20
t[3] = t[1] + t[2]
print(t[3])
print(#t)
local u = {5, 6, 7}
print(u[1] + u[2] + u[3])
print(u[99])
)"),
              "30\n3\n18\nundefined\n");
}

TEST_P(JsAllVariants, ArrayGrowthKeepsValues)
{
    EXPECT_EQ(runOn(GetParam(), R"(
local t = {}
for i = 1, 100 do t[i] = i * i end
local s = 0
for i = 1, 100 do s = s + t[i] end
print(s)
print(#t)
)"),
              "338350\n100\n");
}

TEST_P(JsAllVariants, StringKeysUseHashPath)
{
    EXPECT_EQ(runOn(GetParam(), R"(
local t = {}
t["x"] = 1
t["y"] = 2
t["x"] = t["x"] + 10
print(t["x"])
print(t["y"])
print(t["zz"])
)"),
              "11\n2\nundefined\n");
}

TEST_P(JsAllVariants, StringsLenConcatSubstr)
{
    EXPECT_EQ(runOn(GetParam(), R"(
local s = "hello"
print(#s)
print(s .. " " .. "world")
print(substr(s, 2, 4))
print(strchar(65))
print("n=" .. 42)
print("f=" .. 1.5)
)"),
              "5\nhello world\nell\nA\nn=42\nf=1.5\n");
}

TEST_P(JsAllVariants, Builtins)
{
    EXPECT_EQ(runOn(GetParam(), R"(
print(sqrt(16))
print(sqrt(2.25))
print(floor(3.7))
print(floor(-3.7))
print(abs(-5))
print(abs(-2.5))
)"),
              "4\n1.5\n3\n-4\n5\n2.5\n");
}

TEST_P(JsAllVariants, AndOrNotTruthiness)
{
    // JS truthiness: 0 and "" are falsy (unlike Lua).
    EXPECT_EQ(runOn(GetParam(), R"(
print(true and 1)
print(false and 1)
print(nil or "dflt")
print(2 or 3)
print(0 or 5)
print(not nil)
print(not 0)
print(not 1)
)"),
              "1\nfalse\ndflt\n2\n5\ntrue\ntrue\nfalse\n");
}

TEST_P(JsAllVariants, FloatHeavyKernel)
{
    EXPECT_EQ(runOn(GetParam(), R"(
local zr = 0.0
local zi = 0.0
local cr = -0.5
local ci = 0.3
local n = 0
for i = 1, 50 do
  local t = zr * zr - zi * zi + cr
  zi = 2.0 * zr * zi + ci
  zr = t
  if zr * zr + zi * zi > 4.0 then break end
  n = n + 1
end
print(n)
)"),
              "50\n");
}

TEST_P(JsAllVariants, DeepRecursion)
{
    EXPECT_EQ(runOn(GetParam(), R"(
function down(n)
  if n == 0 then return 0 end
  return down(n - 1) + 1
end
print(down(500))
)"),
              "500\n");
}

// ------------------------------------------------------------------
// Variant-specific structural checks.

TEST(JsVmTyped, IntLoopHitsTrt)
{
    JsVm::Options opts;
    opts.variant = Variant::Typed;
    JsVm vm(R"(
local s = 0
for i = 1, 1000 do s = s + i end
print(s)
)",
            opts);
    vm.run();
    EXPECT_EQ(vm.output(), "500500\n");
    const auto stats = vm.core().collectStats();
    EXPECT_GE(stats.trt.lookups, 1000u);
    EXPECT_EQ(stats.trt.misses(), 0u);
    EXPECT_EQ(stats.typeOverflowMisses, 0u);
}

TEST(JsVmTyped, OverflowCountsAsTypeMiss)
{
    JsVm::Options opts;
    opts.variant = Variant::Typed;
    JsVm vm(R"(
local big = 2000000000
local x = big + big
print(x)
)",
            opts);
    vm.run();
    EXPECT_EQ(vm.output(), "4000000000\n");
    EXPECT_GE(vm.core().collectStats().typeOverflowMisses, 1u);
}

TEST(JsVmCheckedLoad, FloatWorkloadMissesFixedFastPath)
{
    JsVm::Options opts;
    opts.variant = Variant::CheckedLoad;
    JsVm vm(R"(
local s = 0.0
for i = 1, 200 do s = s + 0.5 end
print(s)
)",
            opts);
    vm.run();
    EXPECT_EQ(vm.output(), "100\n");
    EXPECT_GE(vm.core().collectStats().chklbMisses, 200u);
}

TEST(JsVm, TypedExecutesFewerInstructions)
{
    const char *src = R"(
local t = {}
for i = 1, 500 do t[i] = i end
local s = 0
for i = 1, 500 do s = s + t[i] end
print(s)
)";
    JsVm::Options b_opts;
    b_opts.variant = Variant::Baseline;
    JsVm base(src, b_opts);
    base.run();
    JsVm::Options t_opts;
    t_opts.variant = Variant::Typed;
    JsVm typed(src, t_opts);
    typed.run();
    EXPECT_EQ(base.output(), typed.output());
    EXPECT_EQ(base.output(), "125250\n");
    const auto sb = base.core().collectStats();
    const auto st = typed.core().collectStats();
    EXPECT_LT(st.instructions, sb.instructions);
    EXPECT_LT(st.cycles, sb.cycles);
}

TEST(JsVm, BytecodeProfile)
{
    JsVm vm(R"(
local s = 0
for i = 1, 100 do s = s + i end
print(s)
)");
    vm.run();
    const auto profile = vm.bytecodeProfile();
    // One user ADD plus one loop-increment ADD per iteration.
    EXPECT_EQ(profile.at("ADD"), 200u);
    EXPECT_GT(vm.dynamicBytecodes(), 500u);
}

TEST(JsVm, RuntimeErrorsAreFatal)
{
    JsVm vm("local t = nil\nprint(t + 1)\n");
    EXPECT_THROW(vm.run(), FatalError);
}

} // namespace
} // namespace tarch::vm::js
