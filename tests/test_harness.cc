// Integration tests for the experiment harness: the benchmark registry,
// single-run collection, cross-variant verification, geomean, and the
// sweep cache round trip.

#include <gtest/gtest.h>

#include <cstdio>

#include "common/log.h"
#include "harness/benchmarks.h"
#include "harness/experiment.h"

namespace tarch::harness {
namespace {

TEST(Benchmarks, RegistryHasAllElevenPaperBenchmarks)
{
    const auto &list = benchmarks();
    ASSERT_EQ(list.size(), 11u);
    const char *expected[] = {"ackermann",    "binary-trees",
                              "fannkuch-redux", "fibo",
                              "k-nucleotide", "mandelbrot",
                              "n-body",       "n-sieve",
                              "pidigits",     "random",
                              "spectral-norm"};
    for (size_t i = 0; i < list.size(); ++i) {
        EXPECT_EQ(list[i].name, expected[i]);
        EXPECT_FALSE(list[i].source.empty());
        EXPECT_FALSE(list[i].paperInput.empty());
    }
    EXPECT_EQ(benchmark("fibo").name, "fibo");
    EXPECT_THROW(benchmark("nope"), tarch::FatalError);
}

BenchmarkInfo
tinyBenchmark()
{
    return {"tiny",
            "local s = 0\nfor i = 1, 200 do s = s + i end\nprint(s)\n",
            "-", "-", "test workload"};
}

TEST(Experiment, RunOneCollectsCounters)
{
    const RunResult r =
        runOne(Engine::Lua, vm::Variant::Typed, tinyBenchmark());
    EXPECT_EQ(r.output, "20100\n");
    EXPECT_EQ(r.benchmark, "tiny");
    EXPECT_GT(r.stats.instructions, 1000u);
    EXPECT_GT(r.dynamicBytecodes, 400u);
    EXPECT_EQ(r.bytecodeProfile.at("ADD"), 200u);
    EXPECT_GE(r.stats.trt.hits, 200u);
    EXPECT_FALSE(r.markerDetail.empty());
    EXPECT_GT(r.markerDetail.at("dispatch").second, 0u);
}

TEST(Experiment, BothEnginesAgreeOnIntOutput)
{
    const RunResult lua =
        runOne(Engine::Lua, vm::Variant::Baseline, tinyBenchmark());
    const RunResult js =
        runOne(Engine::Js, vm::Variant::Baseline, tinyBenchmark());
    EXPECT_EQ(lua.output, js.output);
}

TEST(Experiment, Geomean)
{
    EXPECT_DOUBLE_EQ(geomean({2.0, 8.0}), 4.0);
    EXPECT_DOUBLE_EQ(geomean({1.0, 1.0, 1.0}), 1.0);
    EXPECT_NEAR(geomean({1.1, 1.1}), 1.1, 1e-12);
    // An empty or non-positive set would silently poison a figure's
    // geomean column; both fail loudly instead.
    EXPECT_THROW(geomean({}), tarch::FatalError);
    EXPECT_THROW(geomean({1.0, 0.0}), tarch::FatalError);
}

TEST(Experiment, SpeedupOf)
{
    RunResult base, fast;
    base.stats.cycles = 1000;
    fast.stats.cycles = 800;
    EXPECT_DOUBLE_EQ(speedupOf(base, fast), 1.25);
}

TEST(Experiment, SpeedupOfZeroCyclesIsFatalAndNamesTheBenchmark)
{
    RunResult base, broken;
    base.benchmark = broken.benchmark = "fibo";
    base.variant = vm::Variant::Baseline;
    broken.variant = vm::Variant::Typed;
    base.stats.cycles = 1000;
    broken.stats.cycles = 0;
    try {
        speedupOf(base, broken);
        FAIL() << "expected FatalError";
    } catch (const tarch::FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("fibo"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("typed"), std::string::npos);
    }
    broken.stats.cycles = 1000;
    base.stats.cycles = 0;
    EXPECT_THROW(speedupOf(base, broken), tarch::FatalError);
}

TEST(Experiment, VariantsProduceIdenticalOutputPerEngine)
{
    const BenchmarkInfo tiny = tinyBenchmark();
    for (const Engine engine : {Engine::Lua, Engine::Js}) {
        const RunResult base =
            runOne(engine, vm::Variant::Baseline, tiny);
        const RunResult typed = runOne(engine, vm::Variant::Typed, tiny);
        const RunResult cl =
            runOne(engine, vm::Variant::CheckedLoad, tiny);
        EXPECT_EQ(base.output, typed.output) << engineName(engine);
        EXPECT_EQ(base.output, cl.output) << engineName(engine);
        EXPECT_LT(typed.stats.instructions, base.stats.instructions)
            << engineName(engine);
    }
}

} // namespace
} // namespace tarch::harness
