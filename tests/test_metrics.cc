// The obs metrics registry (docs/OBSERVABILITY.md): log-bucketed
// histogram accuracy bounds, sharded-counter concurrency, get-or-create
// series identity, callback series, and the Prometheus/CSV renderers
// round-tripped through the in-repo linter and monotonicity checker
// that CI runs against live scrapes.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace tarch::obs {
namespace {

// ---------------------------------------------------------------------
// LatencyHistogram.

TEST(Metrics, HistogramExactBelowThirtyTwo)
{
    LatencyHistogram h;
    for (uint64_t v = 0; v < 32; ++v)
        h.record(v);
    EXPECT_EQ(h.count(), 32u);
    EXPECT_EQ(h.maxValue(), 31u);
    EXPECT_DOUBLE_EQ(h.sum(), 31.0 * 32.0 / 2.0);
    // Below 32 the buckets are exact, so the cumulative counts are too.
    EXPECT_EQ(h.countAtOrBelow(0), 1u);
    EXPECT_EQ(h.countAtOrBelow(15), 16u);
    EXPECT_EQ(h.countAtOrBelow(31), 32u);
}

TEST(Metrics, HistogramPercentileWithinRelativeError)
{
    LatencyHistogram h;
    for (uint64_t v = 1; v <= 10'000; ++v)
        h.record(v);
    // Bucket ceilings never under-state and carry ~3% relative error.
    const uint64_t p50 = h.percentile(50.0);
    EXPECT_GE(p50, 5'000u);
    EXPECT_LE(p50, 5'400u);
    const uint64_t p99 = h.percentile(99.0);
    EXPECT_GE(p99, 9'900u);
    EXPECT_LE(p99, 10'600u);
}

TEST(Metrics, HistogramMergeAddsCounts)
{
    LatencyHistogram a, b;
    a.record(10);
    a.record(1'000);
    b.record(100'000);
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_EQ(a.maxValue(), 100'000u);
    EXPECT_DOUBLE_EQ(a.sum(), 101'010.0);
    EXPECT_EQ(a.countAtOrBelow(10), 1u);
}

TEST(Metrics, HistogramEmptyIsZero)
{
    LatencyHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.percentile(50.0), 0u);
    EXPECT_EQ(h.countAtOrBelow(1'000'000), 0u);
}

// ---------------------------------------------------------------------
// ShardedCounter / Gauge.

TEST(Metrics, ShardedCounterConcurrentAddsAllLand)
{
    ShardedCounter c;
    constexpr unsigned kThreads = 8;
    constexpr uint64_t kAdds = 20'000;
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t)
        threads.emplace_back([&c] {
            for (uint64_t i = 0; i < kAdds; ++i)
                c.add();
        });
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(c.value(), kThreads * kAdds);
}

TEST(Metrics, GaugeSetAndAdd)
{
    Gauge g;
    g.set(42);
    g.add(-50);
    EXPECT_EQ(g.value(), -8);
}

// ---------------------------------------------------------------------
// Registry.

TEST(Metrics, RegistryGetOrCreateReturnsSameSeries)
{
    Registry reg;
    ShardedCounter &a = reg.counter("tarch_test_total", "help");
    ShardedCounter &b = reg.counter("tarch_test_total", "help");
    EXPECT_EQ(&a, &b);
    ShardedCounter &c =
        reg.counter("tarch_test_total", "help", "shard=\"0\"");
    EXPECT_NE(&a, &c);
    a.add(3);
    EXPECT_EQ(b.value(), 3u);
}

TEST(Metrics, CallbackSeriesReadAtScrapeTime)
{
    Registry reg;
    std::atomic<uint64_t> backing{7};
    reg.counterFn("tarch_cb_total", "callback counter", "",
                  [&backing] { return backing.load(); });
    std::atomic<int64_t> depth{3};
    reg.gaugeFn("tarch_cb_depth", "callback gauge", "",
                [&depth] { return depth.load(); });

    std::string text = reg.renderPrometheus();
    EXPECT_NE(text.find("tarch_cb_total 7"), std::string::npos);
    EXPECT_NE(text.find("tarch_cb_depth 3"), std::string::npos);

    backing.store(9);
    depth.store(-1);
    text = reg.renderPrometheus();
    EXPECT_NE(text.find("tarch_cb_total 9"), std::string::npos);
    EXPECT_NE(text.find("tarch_cb_depth -1"), std::string::npos);
}

TEST(Metrics, RenderPrometheusPassesOwnLint)
{
    Registry reg;
    reg.counter("tarch_requests_total", "requests").add(5);
    reg.counter("tarch_requests_total", "requests", "code=\"busy\"")
        .add(1);
    reg.gauge("tarch_queue_depth", "queued").set(12);
    reg.histogram("tarch_latency_us", "latency").record(150);
    reg.histogram("tarch_latency_us", "latency").record(90'000);

    const std::string text = reg.renderPrometheus();
    std::string error;
    EXPECT_TRUE(Registry::lintPrometheus(text, &error)) << error;
    EXPECT_NE(text.find("# TYPE tarch_requests_total counter"),
              std::string::npos);
    EXPECT_NE(text.find("tarch_requests_total{code=\"busy\"} 1"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE tarch_latency_us histogram"),
              std::string::npos);
    EXPECT_NE(text.find("tarch_latency_us_count 2"), std::string::npos);
    EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
}

TEST(Metrics, LintRejectsMalformedExposition)
{
    std::string error;
    EXPECT_FALSE(Registry::lintPrometheus(
        "# TYPE tarch_x counter\ntarch_x notanumber\n", &error));
    EXPECT_FALSE(Registry::lintPrometheus(
        "tarch_undeclared_total 3\n", &error));
    EXPECT_FALSE(Registry::lintPrometheus(
        "# TYPE bad-name counter\nbad-name 1\n", &error));
}

TEST(Metrics, CountersMonotonicAcrossScrapes)
{
    Registry reg;
    ShardedCounter &c = reg.counter("tarch_mono_total", "monotonic");
    c.add(1);
    const std::string before = reg.renderPrometheus();
    c.add(5);
    const std::string after = reg.renderPrometheus();

    std::string error;
    EXPECT_TRUE(Registry::countersMonotonic(before, after, &error))
        << error;
    // A counter must never run backwards between scrapes.
    EXPECT_FALSE(Registry::countersMonotonic(after, before, &error));
}

TEST(Metrics, CsvRowsMatchHeaderShape)
{
    Registry reg;
    reg.counter("tarch_csv_total", "c", "shard=\"a\"").add(2);
    reg.histogram("tarch_csv_us", "h").record(500);

    const std::string header = Registry::csvHeader();
    ASSERT_FALSE(header.empty());
    const size_t columns =
        1 + (size_t)std::count(header.begin(), header.end(), ',');

    const std::string csv = reg.renderCsv(1'722'000'000'000ull);
    ASSERT_FALSE(csv.empty());
    size_t start = 0;
    size_t rows = 0;
    while (start < csv.size()) {
        size_t end = csv.find('\n', start);
        if (end == std::string::npos)
            end = csv.size();
        const std::string row = csv.substr(start, end - start);
        if (!row.empty()) {
            EXPECT_EQ(1 + (size_t)std::count(row.begin(), row.end(),
                                             ','),
                      columns)
                << row;
            EXPECT_EQ(row.compare(0, 13, "1722000000000"), 0) << row;
            rows++;
        }
        start = end + 1;
    }
    // counter row + histogram _count/_sum/_p50/_p99/_max rows
    EXPECT_GE(rows, 6u);
    EXPECT_NE(csv.find("tarch_csv_total"), std::string::npos);
    EXPECT_NE(csv.find("tarch_csv_us_p99"), std::string::npos);
}

} // namespace
} // namespace tarch::obs
