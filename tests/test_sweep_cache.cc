// The per-cell sweep cache and the parallel sweep executor: round
// trips (including empty outputs and >127-char names), damaged or
// stale cells degrading to cache misses, warm-vs-cold accounting,
// per-script invalidation granularity, schedule-independent results,
// and crash tolerance (a dead cell doesn't kill the sweep).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "common/log.h"
#include "harness/experiment.h"

namespace fs = std::filesystem;

namespace tarch::harness {
namespace {

BenchmarkInfo
tinyBenchmark(const std::string &name, const std::string &source)
{
    return {name, source, "-", "-", "test workload"};
}

const std::string kLoopSrc =
    "local s = 0\nfor i = 1, 200 do s = s + i end\nprint(s)\n";
const std::string kSumSrc =
    "local s = 0\nfor i = 1, 50 do s = s + i * i end\nprint(s)\n";

/** Fresh temp directory per test; removed on destruction. */
struct TempCacheDir {
    fs::path path;

    TempCacheDir()
    {
        static int counter = 0;
        path = fs::temp_directory_path() /
               strformat("tarch_sweep_cache_test_%ld_%d",
                         (long)::getpid(), counter++);
        fs::remove_all(path);
        fs::create_directories(path);
    }
    ~TempCacheDir() { fs::remove_all(path); }

    std::string str() const { return path.string(); }
};

RunResult
sampleResult()
{
    RunResult r;
    r.benchmark = "sample";
    r.engine = Engine::Lua;
    r.variant = vm::Variant::Typed;
    r.stats.instructions = 123456;
    r.stats.cycles = 234567;
    r.stats.loads = 111;
    r.stats.stores = 222;
    r.stats.branches.condBranches = 333;
    r.stats.branches.condMispredicts = 44;
    r.stats.icache.accesses = 555;
    r.stats.icache.misses = 5;
    r.stats.dcache.accesses = 666;
    r.stats.trt.lookups = 777;
    r.stats.trt.hits = 770;
    r.stats.deoptRedirects = 9;
    r.stats.deoptProbes = 3;
    r.stats.hostcalls = 21;
    r.output = "line one\nline two\n\nline four\n";
    r.dynamicBytecodes = 4242;
    r.bytecodeProfile = {{"ADD", 100}, {"FORLOOP", 50}};
    r.markerDetail = {{"dispatch", {10, 1000}}, {"guard", {5, 50}}};
    return r;
}

void
expectSameResult(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.benchmark, b.benchmark);
    EXPECT_EQ(a.engine, b.engine);
    EXPECT_EQ(a.variant, b.variant);
    EXPECT_EQ(a.stats.instructions, b.stats.instructions);
    EXPECT_EQ(a.stats.cycles, b.stats.cycles);
    EXPECT_EQ(a.stats.loads, b.stats.loads);
    EXPECT_EQ(a.stats.stores, b.stats.stores);
    EXPECT_EQ(a.stats.branches.condBranches, b.stats.branches.condBranches);
    EXPECT_EQ(a.stats.branches.condMispredicts,
              b.stats.branches.condMispredicts);
    EXPECT_EQ(a.stats.branches.jumps, b.stats.branches.jumps);
    EXPECT_EQ(a.stats.branches.jumpMispredicts,
              b.stats.branches.jumpMispredicts);
    EXPECT_EQ(a.stats.icache.accesses, b.stats.icache.accesses);
    EXPECT_EQ(a.stats.icache.misses, b.stats.icache.misses);
    EXPECT_EQ(a.stats.dcache.accesses, b.stats.dcache.accesses);
    EXPECT_EQ(a.stats.dcache.misses, b.stats.dcache.misses);
    EXPECT_EQ(a.stats.itlb.accesses, b.stats.itlb.accesses);
    EXPECT_EQ(a.stats.dtlb.accesses, b.stats.dtlb.accesses);
    EXPECT_EQ(a.stats.trt.lookups, b.stats.trt.lookups);
    EXPECT_EQ(a.stats.trt.hits, b.stats.trt.hits);
    EXPECT_EQ(a.stats.typeOverflowMisses, b.stats.typeOverflowMisses);
    EXPECT_EQ(a.stats.chklbChecks, b.stats.chklbChecks);
    EXPECT_EQ(a.stats.chklbMisses, b.stats.chklbMisses);
    EXPECT_EQ(a.stats.deoptRedirects, b.stats.deoptRedirects);
    EXPECT_EQ(a.stats.deoptProbes, b.stats.deoptProbes);
    EXPECT_EQ(a.stats.hostcalls, b.stats.hostcalls);
    EXPECT_EQ(a.output, b.output);
    EXPECT_EQ(a.dynamicBytecodes, b.dynamicBytecodes);
    EXPECT_EQ(a.bytecodeProfile, b.bytecodeProfile);
    EXPECT_EQ(a.markerDetail, b.markerDetail);
}

// ---------------------------------------------------------------------
// Cell round trips.

TEST(CellCache, RoundTrip)
{
    TempCacheDir dir;
    const std::string path = dir.str() + "/cell";
    const RunResult r = sampleResult();
    ASSERT_TRUE(saveCell(r, path, 0xDEADBEEF));
    RunResult loaded;
    ASSERT_TRUE(loadCell(loaded, path, 0xDEADBEEF));
    expectSameResult(r, loaded);
}

TEST(CellCache, RoundTripEmptyOutputAndEmptyMaps)
{
    TempCacheDir dir;
    const std::string path = dir.str() + "/cell";
    RunResult r = sampleResult();
    r.output.clear();
    r.bytecodeProfile.clear();
    r.markerDetail.clear();
    ASSERT_TRUE(saveCell(r, path, 7));
    RunResult loaded;
    ASSERT_TRUE(loadCell(loaded, path, 7));
    expectSameResult(r, loaded);
}

TEST(CellCache, RoundTripLongNamesAndMultilineOutput)
{
    // The legacy parser's fscanf("%127s") silently split names at 127
    // characters; the blob format must round-trip them whole.
    TempCacheDir dir;
    const std::string path = dir.str() + "/cell";
    RunResult r = sampleResult();
    const std::string long_name(300, 'N');
    const std::string spaced_name = "marker with spaces and a\ttab";
    r.bytecodeProfile[long_name] = 31337;
    r.markerDetail[spaced_name] = {1, 2};
    r.output = std::string(5000, 'x') + "\nsecond line\n";
    ASSERT_TRUE(saveCell(r, path, 7));
    RunResult loaded;
    ASSERT_TRUE(loadCell(loaded, path, 7));
    expectSameResult(r, loaded);
    EXPECT_EQ(loaded.bytecodeProfile.at(long_name), 31337u);
}

// ---------------------------------------------------------------------
// Damaged and stale cells are misses, never crashes or garbage.

TEST(CellCache, MissingFileIsAMiss)
{
    RunResult loaded;
    EXPECT_FALSE(loadCell(loaded, "/nonexistent/dir/cell", 7));
}

TEST(CellCache, StaleKeyIsAMiss)
{
    TempCacheDir dir;
    const std::string path = dir.str() + "/cell";
    ASSERT_TRUE(saveCell(sampleResult(), path, 7));
    RunResult loaded;
    EXPECT_FALSE(loadCell(loaded, path, 8));
    EXPECT_TRUE(loadCell(loaded, path, 7));
}

TEST(CellCache, EveryTruncationIsAMiss)
{
    TempCacheDir dir;
    const std::string path = dir.str() + "/cell";
    ASSERT_TRUE(saveCell(sampleResult(), path, 7));
    std::ifstream in(path, std::ios::binary);
    std::string full((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    in.close();
    // A torn write can stop at any byte; no prefix may parse.
    for (size_t len = 0; len < full.size(); len += 7) {
        const std::string trunc_path = dir.str() + "/trunc";
        std::ofstream out(trunc_path, std::ios::binary);
        out.write(full.data(), static_cast<std::streamsize>(len));
        out.close();
        RunResult loaded;
        EXPECT_FALSE(loadCell(loaded, trunc_path, 7))
            << "prefix of " << len << " bytes parsed as a full cell";
    }
}

TEST(CellCache, CorruptedOrTransposedTagsAreAMiss)
{
    TempCacheDir dir;
    const std::string path = dir.str() + "/cell";
    ASSERT_TRUE(saveCell(sampleResult(), path, 7));
    std::ifstream in(path, std::ios::binary);
    std::string full((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    in.close();

    const auto write_variant = [&](const std::string &text) {
        const std::string p = dir.str() + "/bad";
        std::ofstream out(p, std::ios::binary);
        out << text;
        out.close();
        return p;
    };

    // A misspelled tag: the legacy parser would have scanned right past.
    std::string bad = full;
    bad.replace(bad.find("stats"), 5, "stuts");
    RunResult loaded;
    EXPECT_FALSE(loadCell(loaded, write_variant(bad), 7));

    // Transposed lines: dynbc where stats belongs.
    bad = full;
    const size_t stats_at = bad.find("stats");
    const size_t dynbc_at = bad.find("dynbc");
    ASSERT_NE(stats_at, std::string::npos);
    ASSERT_NE(dynbc_at, std::string::npos);
    bad.replace(stats_at, 5, "dynbc");
    bad.replace(dynbc_at, 5, "stats");
    EXPECT_FALSE(loadCell(loaded, write_variant(bad), 7));

    // An absurd blob length must be bounded, not allocated.
    bad = full;
    const size_t out_at = bad.find("output ");
    bad.replace(out_at, bad.find('\n', out_at) - out_at,
                "output 99999999999999");
    EXPECT_FALSE(loadCell(loaded, write_variant(bad), 7));

    // Wrong format version.
    bad = full;
    bad.replace(0, bad.find(' '), "tarch-cell-v0");
    EXPECT_FALSE(loadCell(loaded, write_variant(bad), 7));
}

// ---------------------------------------------------------------------
// Sweep-level behaviour.

std::vector<BenchmarkInfo>
tinySuite()
{
    return {tinyBenchmark("tiny-loop", kLoopSrc),
            tinyBenchmark("tiny-sum", kSumSrc)};
}

TEST(SweepCache, ColdThenWarmThenPerScriptInvalidation)
{
    TempCacheDir dir;
    SweepOptions opts;
    opts.cacheDir = dir.str();
    opts.jobs = 2;
    std::vector<BenchmarkInfo> suite = tinySuite();

    const Sweep cold = runSweep(Engine::Lua, opts, suite);
    EXPECT_EQ(cold.simulatedCells, 6u);
    EXPECT_EQ(cold.loadedCells, 0u);

    const Sweep warm = runSweep(Engine::Lua, opts, suite);
    EXPECT_EQ(warm.simulatedCells, 0u);
    EXPECT_EQ(warm.loadedCells, 6u);
    ASSERT_EQ(warm.results.size(), cold.results.size());
    for (size_t b = 0; b < cold.results.size(); ++b)
        for (size_t v = 0; v < 3; ++v)
            expectSameResult(cold.results[b][v], warm.results[b][v]);

    // Editing one script must invalidate exactly its own 3 cells.
    suite[1].source = "local s = 1\nfor i = 1, 50 do s = s + i end\n"
                      "print(s)\n";
    const Sweep edited = runSweep(Engine::Lua, opts, suite);
    EXPECT_EQ(edited.simulatedCells, 3u);
    EXPECT_EQ(edited.loadedCells, 3u);
    for (size_t v = 0; v < 3; ++v)
        expectSameResult(cold.results[0][v], edited.results[0][v]);
}

TEST(SweepCache, ForceColdIgnoresCells)
{
    TempCacheDir dir;
    SweepOptions opts;
    opts.cacheDir = dir.str();
    const std::vector<BenchmarkInfo> suite = tinySuite();
    runSweep(Engine::Lua, opts, suite);
    opts.forceCold = true;
    const Sweep cold = runSweep(Engine::Lua, opts, suite);
    EXPECT_EQ(cold.simulatedCells, 6u);
    EXPECT_EQ(cold.loadedCells, 0u);
}

TEST(SweepCache, CorruptedCellFallsBackToResimulation)
{
    TempCacheDir dir;
    SweepOptions opts;
    opts.cacheDir = dir.str();
    const std::vector<BenchmarkInfo> suite = tinySuite();
    const Sweep cold = runSweep(Engine::Lua, opts, suite);

    // Truncate one cell mid-file; only that cell may re-simulate.
    const std::string victim = cellPath(dir.str(), Engine::Lua,
                                        "tiny-loop", vm::Variant::Typed);
    ASSERT_TRUE(fs::exists(victim));
    fs::resize_file(victim, fs::file_size(victim) / 2);

    const Sweep repaired = runSweep(Engine::Lua, opts, suite);
    EXPECT_EQ(repaired.simulatedCells, 1u);
    EXPECT_EQ(repaired.loadedCells, 5u);
    for (size_t b = 0; b < cold.results.size(); ++b)
        for (size_t v = 0; v < 3; ++v)
            expectSameResult(cold.results[b][v], repaired.results[b][v]);
}

TEST(SweepCache, ParallelSweepEqualsSerialCellForCell)
{
    SweepOptions serial_opts;
    serial_opts.useCache = false;
    serial_opts.jobs = 1;
    SweepOptions parallel_opts;
    parallel_opts.useCache = false;
    parallel_opts.jobs = 4;
    const std::vector<BenchmarkInfo> suite = tinySuite();

    for (const Engine engine : {Engine::Lua, Engine::Js}) {
        const Sweep serial = runSweep(engine, serial_opts, suite);
        const Sweep parallel = runSweep(engine, parallel_opts, suite);
        ASSERT_EQ(serial.results.size(), parallel.results.size());
        for (size_t b = 0; b < serial.results.size(); ++b)
            for (size_t v = 0; v < 3; ++v)
                expectSameResult(serial.results[b][v],
                                 parallel.results[b][v]);
    }
}

TEST(SweepCache, FailedCellReportedAfterSweepCompletes)
{
    TempCacheDir dir;
    SweepOptions opts;
    opts.cacheDir = dir.str();
    opts.jobs = 2;
    std::vector<BenchmarkInfo> suite = tinySuite();
    suite.push_back(tinyBenchmark("tiny-broken", "print(\n"));

    try {
        runSweep(Engine::Lua, opts, suite);
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        const std::string what = e.what();
        // All three broken cells named, engine-qualified.
        EXPECT_NE(what.find("3 of 9"), std::string::npos) << what;
        EXPECT_NE(what.find("MiniLua/tiny-broken/baseline"),
                  std::string::npos)
            << what;
        EXPECT_NE(what.find("MiniLua/tiny-broken/typed"),
                  std::string::npos)
            << what;
        EXPECT_NE(what.find("MiniLua/tiny-broken/checked-load"),
                  std::string::npos)
            << what;
    }
    // The healthy cells still ran to completion (and were cached).
    RunResult loaded;
    EXPECT_TRUE(loadCell(
        loaded,
        cellPath(dir.str(), Engine::Lua, "tiny-loop",
                 vm::Variant::Baseline),
        cellKey(Engine::Lua, tinySuite()[0], vm::Variant::Baseline)));
    EXPECT_EQ(loaded.output, "20100\n");
}

// ---------------------------------------------------------------------
// Concurrency: many server workers share one cache directory.

TEST(CellCache, ConcurrentEnsureCacheDirAndSavesAllSucceed)
{
    // tarch_served dispatches requests onto a worker pool; the first
    // burst after startup can have many threads racing to create the
    // cache directory and write distinct cells.  Every creation must
    // count as success (the directory existing is what matters) and
    // every cell must land intact.
    TempCacheDir dir;
    const std::string fresh = dir.str() + "/nested/not-yet-created";
    constexpr int kThreads = 16;
    std::atomic<int> dir_failures{0};
    std::atomic<int> save_failures{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&, t] {
            if (!ensureCacheDir(fresh))
                dir_failures.fetch_add(1);
            RunResult r = sampleResult();
            r.stats.instructions = 1000u + static_cast<uint64_t>(t);
            const std::string path =
                fresh + strformat("/tarch-sweep-cache/cell_%d", t);
            if (!saveCell(r, path, static_cast<uint64_t>(t)))
                save_failures.fetch_add(1);
        });
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(dir_failures.load(), 0);
    EXPECT_EQ(save_failures.load(), 0);
    for (int t = 0; t < kThreads; ++t) {
        RunResult loaded;
        ASSERT_TRUE(loadCell(
            loaded,
            fresh + strformat("/tarch-sweep-cache/cell_%d", t),
            static_cast<uint64_t>(t)))
            << "cell " << t;
        EXPECT_EQ(loaded.stats.instructions,
                  1000u + static_cast<uint64_t>(t));
    }
}

TEST(CellCache, ConcurrentSavesToOneCellLeaveAValidFile)
{
    // Two processes (or two server workers before the single-flight
    // claim lands) may persist the same cell at once; the temp-file +
    // rename protocol must leave one intact winner, never a torn file.
    TempCacheDir dir;
    const std::string path = dir.str() + "/cell";
    constexpr int kThreads = 8;
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&] {
            for (int i = 0; i < 20; ++i)
                if (!saveCell(sampleResult(), path, 7))
                    failures.fetch_add(1);
        });
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(failures.load(), 0);
    RunResult loaded;
    ASSERT_TRUE(loadCell(loaded, path, 7));
    expectSameResult(sampleResult(), loaded);
}

TEST(SweepCache, KeyCoversSourceEngineAndVariant)
{
    const BenchmarkInfo a = tinyBenchmark("t", kLoopSrc);
    BenchmarkInfo b = a;
    b.source += "-- comment\n";
    EXPECT_NE(cellKey(Engine::Lua, a, vm::Variant::Typed),
              cellKey(Engine::Lua, b, vm::Variant::Typed));
    EXPECT_NE(cellKey(Engine::Lua, a, vm::Variant::Typed),
              cellKey(Engine::Js, a, vm::Variant::Typed));
    EXPECT_NE(cellKey(Engine::Lua, a, vm::Variant::Typed),
              cellKey(Engine::Lua, a, vm::Variant::Baseline));
    EXPECT_EQ(cellKey(Engine::Lua, a, vm::Variant::Typed),
              cellKey(Engine::Lua, a, vm::Variant::Typed));
}

} // namespace
} // namespace tarch::harness
