# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_assembler[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_branch[1]_include.cmake")
include("/root/repo/build/tests/test_typed[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_core_typed[1]_include.cmake")
include("/root/repo/build/tests/test_script[1]_include.cmake")
include("/root/repo/build/tests/test_lua_compiler[1]_include.cmake")
include("/root/repo/build/tests/test_lua_vm[1]_include.cmake")
include("/root/repo/build/tests/test_js_compiler[1]_include.cmake")
include("/root/repo/build/tests/test_js_vm[1]_include.cmake")
include("/root/repo/build/tests/test_power[1]_include.cmake")
include("/root/repo/build/tests/test_harness[1]_include.cmake")
include("/root/repo/build/tests/test_deopt[1]_include.cmake")
include("/root/repo/build/tests/test_differential[1]_include.cmake")
include("/root/repo/build/tests/test_timing[1]_include.cmake")
include("/root/repo/build/tests/test_interp_gen[1]_include.cmake")
include("/root/repo/build/tests/test_vm_edge_cases[1]_include.cmake")
include("/root/repo/build/tests/test_hostcall[1]_include.cmake")
include("/root/repo/build/tests/test_context_switch[1]_include.cmake")
include("/root/repo/build/tests/test_benchmarks[1]_include.cmake")
