# Empty dependencies file for test_core_typed.
# This may be replaced when dependencies are built.
