file(REMOVE_RECURSE
  "CMakeFiles/test_core_typed.dir/test_core_typed.cc.o"
  "CMakeFiles/test_core_typed.dir/test_core_typed.cc.o.d"
  "test_core_typed"
  "test_core_typed.pdb"
  "test_core_typed[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_typed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
