# Empty dependencies file for test_interp_gen.
# This may be replaced when dependencies are built.
