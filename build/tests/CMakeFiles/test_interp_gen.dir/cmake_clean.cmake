file(REMOVE_RECURSE
  "CMakeFiles/test_interp_gen.dir/test_interp_gen.cc.o"
  "CMakeFiles/test_interp_gen.dir/test_interp_gen.cc.o.d"
  "test_interp_gen"
  "test_interp_gen.pdb"
  "test_interp_gen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_interp_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
