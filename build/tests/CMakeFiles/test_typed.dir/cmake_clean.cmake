file(REMOVE_RECURSE
  "CMakeFiles/test_typed.dir/test_typed.cc.o"
  "CMakeFiles/test_typed.dir/test_typed.cc.o.d"
  "test_typed"
  "test_typed.pdb"
  "test_typed[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_typed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
