# Empty compiler generated dependencies file for test_js_vm.
# This may be replaced when dependencies are built.
