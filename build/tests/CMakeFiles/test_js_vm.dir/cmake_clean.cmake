file(REMOVE_RECURSE
  "CMakeFiles/test_js_vm.dir/test_js_vm.cc.o"
  "CMakeFiles/test_js_vm.dir/test_js_vm.cc.o.d"
  "test_js_vm"
  "test_js_vm.pdb"
  "test_js_vm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_js_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
