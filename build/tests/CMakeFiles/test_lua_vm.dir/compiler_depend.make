# Empty compiler generated dependencies file for test_lua_vm.
# This may be replaced when dependencies are built.
