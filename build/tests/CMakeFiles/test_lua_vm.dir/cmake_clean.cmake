file(REMOVE_RECURSE
  "CMakeFiles/test_lua_vm.dir/test_lua_vm.cc.o"
  "CMakeFiles/test_lua_vm.dir/test_lua_vm.cc.o.d"
  "test_lua_vm"
  "test_lua_vm.pdb"
  "test_lua_vm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lua_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
