file(REMOVE_RECURSE
  "CMakeFiles/test_deopt.dir/test_deopt.cc.o"
  "CMakeFiles/test_deopt.dir/test_deopt.cc.o.d"
  "test_deopt"
  "test_deopt.pdb"
  "test_deopt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_deopt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
