# Empty compiler generated dependencies file for test_deopt.
# This may be replaced when dependencies are built.
