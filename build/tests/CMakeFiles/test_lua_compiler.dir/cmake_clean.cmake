file(REMOVE_RECURSE
  "CMakeFiles/test_lua_compiler.dir/test_lua_compiler.cc.o"
  "CMakeFiles/test_lua_compiler.dir/test_lua_compiler.cc.o.d"
  "test_lua_compiler"
  "test_lua_compiler.pdb"
  "test_lua_compiler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lua_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
