# Empty dependencies file for test_lua_compiler.
# This may be replaced when dependencies are built.
