# Empty dependencies file for test_vm_edge_cases.
# This may be replaced when dependencies are built.
