file(REMOVE_RECURSE
  "CMakeFiles/test_js_compiler.dir/test_js_compiler.cc.o"
  "CMakeFiles/test_js_compiler.dir/test_js_compiler.cc.o.d"
  "test_js_compiler"
  "test_js_compiler.pdb"
  "test_js_compiler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_js_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
