# Empty dependencies file for test_js_compiler.
# This may be replaced when dependencies are built.
