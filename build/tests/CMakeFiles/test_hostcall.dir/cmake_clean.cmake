file(REMOVE_RECURSE
  "CMakeFiles/test_hostcall.dir/test_hostcall.cc.o"
  "CMakeFiles/test_hostcall.dir/test_hostcall.cc.o.d"
  "test_hostcall"
  "test_hostcall.pdb"
  "test_hostcall[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hostcall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
