
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_hostcall.cc" "tests/CMakeFiles/test_hostcall.dir/test_hostcall.cc.o" "gcc" "tests/CMakeFiles/test_hostcall.dir/test_hostcall.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tarch_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tarch_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tarch_power.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tarch_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tarch_assembler.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tarch_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tarch_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tarch_branch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tarch_typed.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tarch_script.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tarch_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
