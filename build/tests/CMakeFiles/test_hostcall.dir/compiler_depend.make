# Empty compiler generated dependencies file for test_hostcall.
# This may be replaced when dependencies are built.
