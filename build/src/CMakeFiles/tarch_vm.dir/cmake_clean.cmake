file(REMOVE_RECURSE
  "CMakeFiles/tarch_vm.dir/vm/js/bytecode.cc.o"
  "CMakeFiles/tarch_vm.dir/vm/js/bytecode.cc.o.d"
  "CMakeFiles/tarch_vm.dir/vm/js/compiler.cc.o"
  "CMakeFiles/tarch_vm.dir/vm/js/compiler.cc.o.d"
  "CMakeFiles/tarch_vm.dir/vm/js/interp_gen.cc.o"
  "CMakeFiles/tarch_vm.dir/vm/js/interp_gen.cc.o.d"
  "CMakeFiles/tarch_vm.dir/vm/js/js_vm.cc.o"
  "CMakeFiles/tarch_vm.dir/vm/js/js_vm.cc.o.d"
  "CMakeFiles/tarch_vm.dir/vm/lua/bytecode.cc.o"
  "CMakeFiles/tarch_vm.dir/vm/lua/bytecode.cc.o.d"
  "CMakeFiles/tarch_vm.dir/vm/lua/compiler.cc.o"
  "CMakeFiles/tarch_vm.dir/vm/lua/compiler.cc.o.d"
  "CMakeFiles/tarch_vm.dir/vm/lua/interp_gen.cc.o"
  "CMakeFiles/tarch_vm.dir/vm/lua/interp_gen.cc.o.d"
  "CMakeFiles/tarch_vm.dir/vm/lua/lua_vm.cc.o"
  "CMakeFiles/tarch_vm.dir/vm/lua/lua_vm.cc.o.d"
  "CMakeFiles/tarch_vm.dir/vm/runtime.cc.o"
  "CMakeFiles/tarch_vm.dir/vm/runtime.cc.o.d"
  "libtarch_vm.a"
  "libtarch_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tarch_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
