# Empty compiler generated dependencies file for tarch_vm.
# This may be replaced when dependencies are built.
