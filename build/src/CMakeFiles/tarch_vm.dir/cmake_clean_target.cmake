file(REMOVE_RECURSE
  "libtarch_vm.a"
)
