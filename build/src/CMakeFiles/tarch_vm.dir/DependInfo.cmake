
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/js/bytecode.cc" "src/CMakeFiles/tarch_vm.dir/vm/js/bytecode.cc.o" "gcc" "src/CMakeFiles/tarch_vm.dir/vm/js/bytecode.cc.o.d"
  "/root/repo/src/vm/js/compiler.cc" "src/CMakeFiles/tarch_vm.dir/vm/js/compiler.cc.o" "gcc" "src/CMakeFiles/tarch_vm.dir/vm/js/compiler.cc.o.d"
  "/root/repo/src/vm/js/interp_gen.cc" "src/CMakeFiles/tarch_vm.dir/vm/js/interp_gen.cc.o" "gcc" "src/CMakeFiles/tarch_vm.dir/vm/js/interp_gen.cc.o.d"
  "/root/repo/src/vm/js/js_vm.cc" "src/CMakeFiles/tarch_vm.dir/vm/js/js_vm.cc.o" "gcc" "src/CMakeFiles/tarch_vm.dir/vm/js/js_vm.cc.o.d"
  "/root/repo/src/vm/lua/bytecode.cc" "src/CMakeFiles/tarch_vm.dir/vm/lua/bytecode.cc.o" "gcc" "src/CMakeFiles/tarch_vm.dir/vm/lua/bytecode.cc.o.d"
  "/root/repo/src/vm/lua/compiler.cc" "src/CMakeFiles/tarch_vm.dir/vm/lua/compiler.cc.o" "gcc" "src/CMakeFiles/tarch_vm.dir/vm/lua/compiler.cc.o.d"
  "/root/repo/src/vm/lua/interp_gen.cc" "src/CMakeFiles/tarch_vm.dir/vm/lua/interp_gen.cc.o" "gcc" "src/CMakeFiles/tarch_vm.dir/vm/lua/interp_gen.cc.o.d"
  "/root/repo/src/vm/lua/lua_vm.cc" "src/CMakeFiles/tarch_vm.dir/vm/lua/lua_vm.cc.o" "gcc" "src/CMakeFiles/tarch_vm.dir/vm/lua/lua_vm.cc.o.d"
  "/root/repo/src/vm/runtime.cc" "src/CMakeFiles/tarch_vm.dir/vm/runtime.cc.o" "gcc" "src/CMakeFiles/tarch_vm.dir/vm/runtime.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tarch_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tarch_script.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tarch_assembler.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tarch_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tarch_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tarch_branch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tarch_typed.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tarch_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
