file(REMOVE_RECURSE
  "CMakeFiles/tarch_core.dir/core/core.cc.o"
  "CMakeFiles/tarch_core.dir/core/core.cc.o.d"
  "CMakeFiles/tarch_core.dir/core/hostcall.cc.o"
  "CMakeFiles/tarch_core.dir/core/hostcall.cc.o.d"
  "CMakeFiles/tarch_core.dir/core/markers.cc.o"
  "CMakeFiles/tarch_core.dir/core/markers.cc.o.d"
  "CMakeFiles/tarch_core.dir/core/timing.cc.o"
  "CMakeFiles/tarch_core.dir/core/timing.cc.o.d"
  "CMakeFiles/tarch_core.dir/core/trace.cc.o"
  "CMakeFiles/tarch_core.dir/core/trace.cc.o.d"
  "libtarch_core.a"
  "libtarch_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tarch_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
