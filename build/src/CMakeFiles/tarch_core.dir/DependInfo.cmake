
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/core.cc" "src/CMakeFiles/tarch_core.dir/core/core.cc.o" "gcc" "src/CMakeFiles/tarch_core.dir/core/core.cc.o.d"
  "/root/repo/src/core/hostcall.cc" "src/CMakeFiles/tarch_core.dir/core/hostcall.cc.o" "gcc" "src/CMakeFiles/tarch_core.dir/core/hostcall.cc.o.d"
  "/root/repo/src/core/markers.cc" "src/CMakeFiles/tarch_core.dir/core/markers.cc.o" "gcc" "src/CMakeFiles/tarch_core.dir/core/markers.cc.o.d"
  "/root/repo/src/core/timing.cc" "src/CMakeFiles/tarch_core.dir/core/timing.cc.o" "gcc" "src/CMakeFiles/tarch_core.dir/core/timing.cc.o.d"
  "/root/repo/src/core/trace.cc" "src/CMakeFiles/tarch_core.dir/core/trace.cc.o" "gcc" "src/CMakeFiles/tarch_core.dir/core/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tarch_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tarch_assembler.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tarch_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tarch_branch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tarch_typed.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tarch_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
