file(REMOVE_RECURSE
  "libtarch_core.a"
)
