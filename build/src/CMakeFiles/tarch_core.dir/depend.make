# Empty dependencies file for tarch_core.
# This may be replaced when dependencies are built.
