file(REMOVE_RECURSE
  "CMakeFiles/tarch_common.dir/common/log.cc.o"
  "CMakeFiles/tarch_common.dir/common/log.cc.o.d"
  "CMakeFiles/tarch_common.dir/common/strutil.cc.o"
  "CMakeFiles/tarch_common.dir/common/strutil.cc.o.d"
  "libtarch_common.a"
  "libtarch_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tarch_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
