# Empty compiler generated dependencies file for tarch_common.
# This may be replaced when dependencies are built.
