file(REMOVE_RECURSE
  "libtarch_common.a"
)
