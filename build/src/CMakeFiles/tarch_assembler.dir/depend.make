# Empty dependencies file for tarch_assembler.
# This may be replaced when dependencies are built.
