file(REMOVE_RECURSE
  "CMakeFiles/tarch_assembler.dir/assembler/assembler.cc.o"
  "CMakeFiles/tarch_assembler.dir/assembler/assembler.cc.o.d"
  "CMakeFiles/tarch_assembler.dir/assembler/lexer.cc.o"
  "CMakeFiles/tarch_assembler.dir/assembler/lexer.cc.o.d"
  "libtarch_assembler.a"
  "libtarch_assembler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tarch_assembler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
