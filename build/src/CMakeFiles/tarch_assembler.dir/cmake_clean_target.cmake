file(REMOVE_RECURSE
  "libtarch_assembler.a"
)
