file(REMOVE_RECURSE
  "libtarch_branch.a"
)
