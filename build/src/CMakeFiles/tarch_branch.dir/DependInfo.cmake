
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/branch/branch_unit.cc" "src/CMakeFiles/tarch_branch.dir/branch/branch_unit.cc.o" "gcc" "src/CMakeFiles/tarch_branch.dir/branch/branch_unit.cc.o.d"
  "/root/repo/src/branch/btb.cc" "src/CMakeFiles/tarch_branch.dir/branch/btb.cc.o" "gcc" "src/CMakeFiles/tarch_branch.dir/branch/btb.cc.o.d"
  "/root/repo/src/branch/gshare.cc" "src/CMakeFiles/tarch_branch.dir/branch/gshare.cc.o" "gcc" "src/CMakeFiles/tarch_branch.dir/branch/gshare.cc.o.d"
  "/root/repo/src/branch/ras.cc" "src/CMakeFiles/tarch_branch.dir/branch/ras.cc.o" "gcc" "src/CMakeFiles/tarch_branch.dir/branch/ras.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tarch_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
