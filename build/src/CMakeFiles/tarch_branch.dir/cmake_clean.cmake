file(REMOVE_RECURSE
  "CMakeFiles/tarch_branch.dir/branch/branch_unit.cc.o"
  "CMakeFiles/tarch_branch.dir/branch/branch_unit.cc.o.d"
  "CMakeFiles/tarch_branch.dir/branch/btb.cc.o"
  "CMakeFiles/tarch_branch.dir/branch/btb.cc.o.d"
  "CMakeFiles/tarch_branch.dir/branch/gshare.cc.o"
  "CMakeFiles/tarch_branch.dir/branch/gshare.cc.o.d"
  "CMakeFiles/tarch_branch.dir/branch/ras.cc.o"
  "CMakeFiles/tarch_branch.dir/branch/ras.cc.o.d"
  "libtarch_branch.a"
  "libtarch_branch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tarch_branch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
