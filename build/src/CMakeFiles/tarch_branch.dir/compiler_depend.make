# Empty compiler generated dependencies file for tarch_branch.
# This may be replaced when dependencies are built.
