file(REMOVE_RECURSE
  "CMakeFiles/tarch_mem.dir/mem/cache.cc.o"
  "CMakeFiles/tarch_mem.dir/mem/cache.cc.o.d"
  "CMakeFiles/tarch_mem.dir/mem/dram.cc.o"
  "CMakeFiles/tarch_mem.dir/mem/dram.cc.o.d"
  "CMakeFiles/tarch_mem.dir/mem/main_memory.cc.o"
  "CMakeFiles/tarch_mem.dir/mem/main_memory.cc.o.d"
  "CMakeFiles/tarch_mem.dir/mem/tlb.cc.o"
  "CMakeFiles/tarch_mem.dir/mem/tlb.cc.o.d"
  "libtarch_mem.a"
  "libtarch_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tarch_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
