file(REMOVE_RECURSE
  "libtarch_mem.a"
)
