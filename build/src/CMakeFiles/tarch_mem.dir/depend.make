# Empty dependencies file for tarch_mem.
# This may be replaced when dependencies are built.
