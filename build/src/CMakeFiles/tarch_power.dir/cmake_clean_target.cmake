file(REMOVE_RECURSE
  "libtarch_power.a"
)
