# Empty dependencies file for tarch_power.
# This may be replaced when dependencies are built.
