file(REMOVE_RECURSE
  "CMakeFiles/tarch_power.dir/power/power_model.cc.o"
  "CMakeFiles/tarch_power.dir/power/power_model.cc.o.d"
  "libtarch_power.a"
  "libtarch_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tarch_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
