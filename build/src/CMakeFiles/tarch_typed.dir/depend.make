# Empty dependencies file for tarch_typed.
# This may be replaced when dependencies are built.
