
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/typed/tag_codec.cc" "src/CMakeFiles/tarch_typed.dir/typed/tag_codec.cc.o" "gcc" "src/CMakeFiles/tarch_typed.dir/typed/tag_codec.cc.o.d"
  "/root/repo/src/typed/type_rule_table.cc" "src/CMakeFiles/tarch_typed.dir/typed/type_rule_table.cc.o" "gcc" "src/CMakeFiles/tarch_typed.dir/typed/type_rule_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tarch_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
