file(REMOVE_RECURSE
  "CMakeFiles/tarch_typed.dir/typed/tag_codec.cc.o"
  "CMakeFiles/tarch_typed.dir/typed/tag_codec.cc.o.d"
  "CMakeFiles/tarch_typed.dir/typed/type_rule_table.cc.o"
  "CMakeFiles/tarch_typed.dir/typed/type_rule_table.cc.o.d"
  "libtarch_typed.a"
  "libtarch_typed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tarch_typed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
