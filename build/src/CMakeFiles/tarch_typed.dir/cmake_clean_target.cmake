file(REMOVE_RECURSE
  "libtarch_typed.a"
)
