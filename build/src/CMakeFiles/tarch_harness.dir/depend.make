# Empty dependencies file for tarch_harness.
# This may be replaced when dependencies are built.
