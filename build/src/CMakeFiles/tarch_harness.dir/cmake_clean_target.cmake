file(REMOVE_RECURSE
  "libtarch_harness.a"
)
