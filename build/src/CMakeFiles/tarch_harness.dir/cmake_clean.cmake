file(REMOVE_RECURSE
  "CMakeFiles/tarch_harness.dir/harness/benchmarks.cc.o"
  "CMakeFiles/tarch_harness.dir/harness/benchmarks.cc.o.d"
  "CMakeFiles/tarch_harness.dir/harness/experiment.cc.o"
  "CMakeFiles/tarch_harness.dir/harness/experiment.cc.o.d"
  "libtarch_harness.a"
  "libtarch_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tarch_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
