file(REMOVE_RECURSE
  "CMakeFiles/tarch_script.dir/script/ast.cc.o"
  "CMakeFiles/tarch_script.dir/script/ast.cc.o.d"
  "CMakeFiles/tarch_script.dir/script/interp.cc.o"
  "CMakeFiles/tarch_script.dir/script/interp.cc.o.d"
  "CMakeFiles/tarch_script.dir/script/lexer.cc.o"
  "CMakeFiles/tarch_script.dir/script/lexer.cc.o.d"
  "CMakeFiles/tarch_script.dir/script/parser.cc.o"
  "CMakeFiles/tarch_script.dir/script/parser.cc.o.d"
  "libtarch_script.a"
  "libtarch_script.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tarch_script.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
