# Empty compiler generated dependencies file for tarch_script.
# This may be replaced when dependencies are built.
