
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/script/ast.cc" "src/CMakeFiles/tarch_script.dir/script/ast.cc.o" "gcc" "src/CMakeFiles/tarch_script.dir/script/ast.cc.o.d"
  "/root/repo/src/script/interp.cc" "src/CMakeFiles/tarch_script.dir/script/interp.cc.o" "gcc" "src/CMakeFiles/tarch_script.dir/script/interp.cc.o.d"
  "/root/repo/src/script/lexer.cc" "src/CMakeFiles/tarch_script.dir/script/lexer.cc.o" "gcc" "src/CMakeFiles/tarch_script.dir/script/lexer.cc.o.d"
  "/root/repo/src/script/parser.cc" "src/CMakeFiles/tarch_script.dir/script/parser.cc.o" "gcc" "src/CMakeFiles/tarch_script.dir/script/parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tarch_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
