file(REMOVE_RECURSE
  "libtarch_script.a"
)
