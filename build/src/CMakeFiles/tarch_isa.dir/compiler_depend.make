# Empty compiler generated dependencies file for tarch_isa.
# This may be replaced when dependencies are built.
