file(REMOVE_RECURSE
  "libtarch_isa.a"
)
