file(REMOVE_RECURSE
  "CMakeFiles/tarch_isa.dir/isa/disasm.cc.o"
  "CMakeFiles/tarch_isa.dir/isa/disasm.cc.o.d"
  "CMakeFiles/tarch_isa.dir/isa/encoding.cc.o"
  "CMakeFiles/tarch_isa.dir/isa/encoding.cc.o.d"
  "CMakeFiles/tarch_isa.dir/isa/instr.cc.o"
  "CMakeFiles/tarch_isa.dir/isa/instr.cc.o.d"
  "CMakeFiles/tarch_isa.dir/isa/opcode.cc.o"
  "CMakeFiles/tarch_isa.dir/isa/opcode.cc.o.d"
  "libtarch_isa.a"
  "libtarch_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tarch_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
