file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_benchmarks.dir/bench_table7_benchmarks.cc.o"
  "CMakeFiles/bench_table7_benchmarks.dir/bench_table7_benchmarks.cc.o.d"
  "bench_table7_benchmarks"
  "bench_table7_benchmarks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_benchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
