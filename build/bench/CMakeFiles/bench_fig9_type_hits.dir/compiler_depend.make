# Empty compiler generated dependencies file for bench_fig9_type_hits.
# This may be replaced when dependencies are built.
