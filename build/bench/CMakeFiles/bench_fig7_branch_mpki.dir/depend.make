# Empty dependencies file for bench_fig7_branch_mpki.
# This may be replaced when dependencies are built.
