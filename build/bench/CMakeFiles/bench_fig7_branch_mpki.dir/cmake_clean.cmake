file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_branch_mpki.dir/bench_fig7_branch_mpki.cc.o"
  "CMakeFiles/bench_fig7_branch_mpki.dir/bench_fig7_branch_mpki.cc.o.d"
  "bench_fig7_branch_mpki"
  "bench_fig7_branch_mpki.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_branch_mpki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
