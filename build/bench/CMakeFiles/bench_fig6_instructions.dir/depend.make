# Empty dependencies file for bench_fig6_instructions.
# This may be replaced when dependencies are built.
