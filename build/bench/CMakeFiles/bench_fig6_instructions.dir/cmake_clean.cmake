file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_instructions.dir/bench_fig6_instructions.cc.o"
  "CMakeFiles/bench_fig6_instructions.dir/bench_fig6_instructions.cc.o.d"
  "bench_fig6_instructions"
  "bench_fig6_instructions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_instructions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
