# Empty compiler generated dependencies file for bench_fig8_icache_mpki.
# This may be replaced when dependencies are built.
