# Empty dependencies file for bench_fig2_bytecodes.
# This may be replaced when dependencies are built.
