file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_bytecodes.dir/bench_fig2_bytecodes.cc.o"
  "CMakeFiles/bench_fig2_bytecodes.dir/bench_fig2_bytecodes.cc.o.d"
  "bench_fig2_bytecodes"
  "bench_fig2_bytecodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_bytecodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
