file(REMOVE_RECURSE
  "CMakeFiles/compare_isa.dir/compare_isa.cpp.o"
  "CMakeFiles/compare_isa.dir/compare_isa.cpp.o.d"
  "compare_isa"
  "compare_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
