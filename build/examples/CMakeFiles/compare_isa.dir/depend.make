# Empty dependencies file for compare_isa.
# This may be replaced when dependencies are built.
