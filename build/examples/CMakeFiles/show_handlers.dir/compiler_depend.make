# Empty compiler generated dependencies file for show_handlers.
# This may be replaced when dependencies are built.
