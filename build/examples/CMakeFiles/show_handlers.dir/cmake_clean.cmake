file(REMOVE_RECURSE
  "CMakeFiles/show_handlers.dir/show_handlers.cpp.o"
  "CMakeFiles/show_handlers.dir/show_handlers.cpp.o.d"
  "show_handlers"
  "show_handlers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/show_handlers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
