file(REMOVE_RECURSE
  "CMakeFiles/typed_asm_tour.dir/typed_asm_tour.cpp.o"
  "CMakeFiles/typed_asm_tour.dir/typed_asm_tour.cpp.o.d"
  "typed_asm_tour"
  "typed_asm_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/typed_asm_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
