# Empty dependencies file for typed_asm_tour.
# This may be replaced when dependencies are built.
