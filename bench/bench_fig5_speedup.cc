// Figure 5: overall speedups of Typed Architecture and Checked Load
// over the baseline ISA, per benchmark and geomean, for both engines.
// Paper headline: geomean 9.9% (Lua) / 11.2% (JS) for Typed vs 7.3% /
// 5.4% for Checked Load; max 43.5% / 32.6%.

#include "bench_common.h"

using namespace tarch;
using namespace tarch::harness;

namespace {

void
report(const Sweep &sweep)
{
    std::printf("\n--- %s ---\n", engineName(sweep.engine));
    std::printf("%-16s %14s %14s\n", "benchmark", "typed (%)",
                "checked-load (%)");
    std::vector<double> typed_ratios, cl_ratios;
    double typed_max = 0.0, cl_max = -1e9;
    for (size_t b = 0; b < sweep.results.size(); ++b) {
        const RunResult &base = sweep.at(b, vm::Variant::Baseline);
        const RunResult &typed = sweep.at(b, vm::Variant::Typed);
        const RunResult &cl = sweep.at(b, vm::Variant::CheckedLoad);
        const double st = speedupOf(base, typed);
        const double sc = speedupOf(base, cl);
        typed_ratios.push_back(st);
        cl_ratios.push_back(sc);
        typed_max = std::max(typed_max, bench::pct(st - 1));
        cl_max = std::max(cl_max, bench::pct(sc - 1));
        std::printf("%-16s %+13.1f%% %+13.1f%%\n", base.benchmark.c_str(),
                    bench::pct(st - 1), bench::pct(sc - 1));
    }
    std::printf("%-16s %+13.1f%% %+13.1f%%\n", "geomean",
                bench::pct(geomean(typed_ratios) - 1),
                bench::pct(geomean(cl_ratios) - 1));
    std::printf("%-16s %+13.1f%% %+13.1f%%\n", "max", typed_max, cl_max);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::ObsCliOptions obs_cli;
    const harness::SweepOptions sweep_opts =
        bench::parseArgs(argc, argv, &obs_cli);
    bench::banner("Figure 5: overall speedup over the baseline ISA",
                  "Figure 5 and Section 7.1");
    std::printf("\nPaper reference (FPGA, full engines): Lua geomean "
                "+9.9%% typed / +7.3%% CL;\nJS geomean +11.2%% typed / "
                "+5.4%% CL; max +43.5%% (Lua), +32.6%% (JS).\n");
    const Sweep lua = runSweepCached(Engine::Lua, sweep_opts);
    report(lua);
    bench::emitObsArtifacts(lua, obs_cli);
    const Sweep js = runSweepCached(Engine::Js, sweep_opts);
    report(js);
    bench::emitObsArtifacts(js, obs_cli);
    std::printf("\nExpected shape: typed > checked-load in geomean; CL "
                "close to or below\nbaseline on FP-heavy workloads "
                "(mandelbrot, n-body) because its fast path\nis fixed to "
                "Int at compile time while xadd/xsub/xmul are "
                "polymorphic.\n");
    return 0;
}
