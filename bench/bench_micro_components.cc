// Microbenchmarks of the simulator components themselves
// (google-benchmark): cache, branch predictors, TRT, tag codec,
// assembler, and end-to-end simulated instruction throughput.  These
// characterize the reproduction infrastructure, not the paper's
// results.

#include <benchmark/benchmark.h>

#include "assembler/assembler.h"
#include "common/strutil.h"
#include "branch/branch_unit.h"
#include "core/core.h"
#include "mem/cache.h"
#include "typed/tag_codec.h"
#include "typed/type_rule_table.h"
#include "vm/lua/lua_vm.h"

using namespace tarch;

namespace {

void
BM_CacheHit(benchmark::State &state)
{
    mem::Dram dram;
    mem::Cache cache({"bench", 16 * 1024, 4, 64, 1}, dram);
    cache.access(0, false);
    uint64_t addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(addr & 0xFFF, false));
        addr += 64;
    }
}
BENCHMARK(BM_CacheHit);

void
BM_CacheMissStream(benchmark::State &state)
{
    mem::Dram dram;
    mem::Cache cache({"bench", 16 * 1024, 4, 64, 1}, dram);
    uint64_t addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(addr, false));
        addr += 4096;  // new set, eventually evictions
    }
}
BENCHMARK(BM_CacheMissStream);

void
BM_GsharePredictUpdate(benchmark::State &state)
{
    branch::BranchUnit bu;
    uint64_t pc = 0x1000;
    bool taken = false;
    for (auto _ : state) {
        taken = !taken;
        benchmark::DoNotOptimize(bu.condBranch(pc, taken, pc + 64));
        pc = (pc + 4) & 0xFFFF;
    }
}
BENCHMARK(BM_GsharePredictUpdate);

void
BM_TrtLookupHit(benchmark::State &state)
{
    typed::TypeRuleTable trt(8);
    trt.push({typed::RuleOp::Add, 0x13, 0x13, 0x13});
    trt.push({typed::RuleOp::Add, 0x83, 0x83, 0x83});
    for (auto _ : state)
        benchmark::DoNotOptimize(
            trt.lookup(typed::RuleOp::Add, 0x83, 0x83));
}
BENCHMARK(BM_TrtLookupHit);

void
BM_TagExtractNanBox(benchmark::State &state)
{
    const typed::TagConfig cfg{0b100, 47, 0x0F};
    uint64_t v = 0xFFF9000000000001ULL;
    for (auto _ : state) {
        benchmark::DoNotOptimize(typed::TagCodec::extract(cfg, v, v));
        ++v;
    }
}
BENCHMARK(BM_TagExtractNanBox);

void
BM_AssembleInterpreterSizedProgram(benchmark::State &state)
{
    std::string src;
    for (int i = 0; i < 500; ++i)
        src += tarch::strformat("l%d: addi a0, a0, 1\n    bnez a0, l%d\n", i, i);
    src += "halt\n";
    for (auto _ : state) {
        const auto program = assembler::assemble(src);
        benchmark::DoNotOptimize(program.text.size());
    }
    state.SetItemsProcessed(state.iterations() * 1001);
}
BENCHMARK(BM_AssembleInterpreterSizedProgram);

void
BM_SimulatedMips(benchmark::State &state)
{
    // End-to-end simulated-instruction throughput on a hot loop.
    core::Core core;
    core.loadProgram(assembler::assemble(R"(
        li a1, 1000000000
l:      addi a1, a1, -1
        bnez a1, l
        halt
    )"));
    uint64_t executed = 0;
    for (auto _ : state) {
        core.step();
        ++executed;
    }
    state.SetItemsProcessed(static_cast<int64_t>(executed));
}
BENCHMARK(BM_SimulatedMips);

void
BM_LuaVmBuild(benchmark::State &state)
{
    const char *src = "local s = 0\nfor i = 1, 10 do s = s + i end\n"
                      "print(s)\n";
    for (auto _ : state) {
        vm::lua::LuaVm vm(src);
        benchmark::DoNotOptimize(vm.core().pc());
    }
}
BENCHMARK(BM_LuaVmBuild);

void
BM_LuaVmBuildAndRunSmallLoop(benchmark::State &state)
{
    // Build + run together (PauseTiming per iteration is prohibitively
    // slow); BM_LuaVmBuild above isolates the build share.
    for (auto _ : state) {
        vm::lua::LuaVm vm(
            "local s = 0\nfor i = 1, 1000 do s = s + i end\nprint(s)\n");
        vm.run();
        benchmark::DoNotOptimize(vm.output().size());
    }
}
BENCHMARK(BM_LuaVmBuildAndRunSmallLoop);

} // namespace

BENCHMARK_MAIN();
