// Figure 9: type hit and miss rates of the hardware type checks (TRT
// lookups by xadd/xsub/xmul/tchk), normalized to the dynamic bytecode
// count, per benchmark and engine.  Overflow-induced fast-path aborts
// are reported separately, as in the paper ("the number of overflows is
// not included in Figure 9").

#include "bench_common.h"

using namespace tarch;
using namespace tarch::harness;

namespace {

void
report(const Sweep &sweep)
{
    std::printf("\n--- %s (typed variant) ---\n",
                engineName(sweep.engine));
    std::printf("%-16s %12s %12s %12s %12s\n", "benchmark",
                "hits/bc (%)", "miss/bc (%)", "hit rate (%)",
                "overflow/bc");
    for (size_t b = 0; b < sweep.results.size(); ++b) {
        const auto &typed = sweep.at(b, vm::Variant::Typed);
        const double bc =
            static_cast<double>(typed.dynamicBytecodes);
        const double hits = static_cast<double>(typed.stats.trt.hits);
        const double misses =
            static_cast<double>(typed.stats.trt.misses());
        const double lookups = hits + misses;
        std::printf("%-16s %11.1f%% %11.1f%% %11.1f%% %12.4f\n",
                    typed.benchmark.c_str(), 100.0 * hits / bc,
                    100.0 * misses / bc,
                    lookups > 0 ? 100.0 * hits / lookups : 0.0,
                    static_cast<double>(typed.stats.typeOverflowMisses) /
                        bc);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    bench::ObsCliOptions obs_cli;
    const harness::SweepOptions sweep_opts =
        bench::parseArgs(argc, argv, &obs_cli);
    bench::banner(
        "Figure 9: type hit/miss rates normalized to dynamic bytecodes",
        "Figure 9");
    std::printf("\nExpected shape: near-100%% hit rates for the "
                "int- and table-oriented\nbenchmarks; visible misses for "
                "k-nucleotide (string-keyed tables) and the\nmixed-type "
                "slow paths.\n");
    const Sweep lua = runSweepCached(Engine::Lua, sweep_opts);
    report(lua);
    bench::emitObsArtifacts(lua, obs_cli);
    const Sweep js = runSweepCached(Engine::Js, sweep_opts);
    report(js);
    bench::emitObsArtifacts(js, obs_cli);
    return 0;
}
