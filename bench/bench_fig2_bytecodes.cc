// Figure 2: (a) breakdown of dynamic bytecodes for the Lua scripts;
// (b) dynamic native instructions per bytecode for the five hot
// bytecodes, split by handler path (int fast path / float path / slow
// path), measured with the zero-cost PC-marker region counters.

#include <algorithm>

#include "bench_common.h"

using namespace tarch;
using namespace tarch::harness;

namespace {

void
fig2a(const Sweep &sweep)
{
    std::printf("\n--- Figure 2(a): dynamic bytecode breakdown "
                "(%s baseline) ---\n",
                engineName(sweep.engine));
    for (size_t b = 0; b < sweep.results.size(); ++b) {
        const auto &run = sweep.at(b, vm::Variant::Baseline);
        const double total =
            static_cast<double>(run.dynamicBytecodes);
        std::vector<std::pair<std::string, uint64_t>> sorted(
            run.bytecodeProfile.begin(), run.bytecodeProfile.end());
        std::sort(sorted.begin(), sorted.end(),
                  [](const auto &a, const auto &b) {
                      return a.second > b.second;
                  });
        std::printf("%-16s", run.benchmark.c_str());
        double shown = 0.0;
        for (size_t i = 0; i < sorted.size() && i < 6; ++i) {
            if (sorted[i].second == 0)
                break;
            const double share = 100.0 * sorted[i].second / total;
            shown += share;
            std::printf("  %s %.1f%%", sorted[i].first.c_str(), share);
        }
        std::printf("  (other %.1f%%)\n", 100.0 - shown);
    }
}

void
fig2b(const Sweep &sweep)
{
    std::printf("\n--- Figure 2(b): native instructions per hot "
                "bytecode, by path (%s baseline) ---\n",
                engineName(sweep.engine));
    const bool lua = sweep.engine == Engine::Lua;
    const char *hot[5] = {"ADD", "SUB", "MUL",
                          lua ? "GETTABLE" : "GETELEM",
                          lua ? "SETTABLE" : "SETELEM"};
    std::printf("%-10s %18s %18s %18s\n", "bytecode", "int path",
                "float path", "slow path");
    // Aggregate over all benchmarks of the sweep.
    for (const char *op : hot) {
        uint64_t hits[3] = {0, 0, 0}, instrs[3] = {0, 0, 0};
        const std::string keys[3] = {std::string("op:") + op,
                                     std::string("op:") + op + ":flt",
                                     std::string("slow:") + op};
        for (size_t b = 0; b < sweep.results.size(); ++b) {
            const auto &run = sweep.at(b, vm::Variant::Baseline);
            for (int k = 0; k < 3; ++k) {
                const auto it = run.markerDetail.find(keys[k]);
                if (it == run.markerDetail.end())
                    continue;
                hits[k] += it->second.first;
                instrs[k] += it->second.second;
            }
        }
        // The handler-entry region covers decode+int path; the :flt
        // region covers the float continuation; slow its own.
        auto fmt = [](uint64_t h, uint64_t n) {
            return h ? static_cast<double>(n) / static_cast<double>(h)
                     : 0.0;
        };
        // Entry hits include executions that continued into flt/slow.
        std::printf("%-10s %12.1f (x%8llu) %6.1f (x%8llu) %6.1f "
                    "(x%8llu)\n",
                    op, fmt(hits[0], instrs[0]),
                    (unsigned long long)hits[0], fmt(hits[1], instrs[1]),
                    (unsigned long long)hits[1], fmt(hits[2], instrs[2]),
                    (unsigned long long)hits[2]);
    }
    std::printf("(instructions attributed per region; a float/slow "
                "execution also passes\nthrough the shared decode "
                "region counted under the int column)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    bench::ObsCliOptions obs_cli;
    const harness::SweepOptions sweep_opts =
        bench::parseArgs(argc, argv, &obs_cli);
    bench::banner("Figure 2: bytecode profile of the interpreters",
                  "Figure 2");
    const Sweep lua = runSweepCached(Engine::Lua, sweep_opts);
    fig2a(lua);
    fig2b(lua);
    const Sweep js = runSweepCached(Engine::Js, sweep_opts);
    fig2a(js);
    fig2b(js);
    bench::emitObsArtifacts(lua, obs_cli);
    bench::emitObsArtifacts(js, obs_cli);
    return 0;
}
