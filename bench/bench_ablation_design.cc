// Ablations of the design choices DESIGN.md calls out:
//   A. Section 5 fast-path deoptimization (thdl path selector)
//   B. type-misprediction redirect penalty sensitivity
//   C. BTB size (interpreter dispatch is one indirect jump)
//   D. I-cache size (interpreter footprint)
// Small inline workloads keep this binary self-contained and fast.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/parallel.h"
#include "vm/lua/lua_vm.h"

using namespace tarch;
using namespace tarch::vm;

namespace {

const char *kIntLoop = R"(
local s = 0
for i = 1, 20000 do s = s + i end
print(s)
)";

const char *kFloatLoop = R"(
local s = 0.0
for i = 1, 20000 do s = s + i end
print(s)
)";

const char *kSieve = R"(
function nsieve(m)
  local flags = {}
  for i = 2, m do flags[i] = true end
  local c = 0
  for i = 2, m do
    if flags[i] then
      local k = i + i
      while k <= m do
        flags[k] = false
        k = k + i
      end
      c = c + 1
    end
  end
  return c
end
print(nsieve(3000))
)";

unsigned g_jobs = 0; ///< from --jobs / TARCH_JOBS

core::CoreStats
run(const char *src, Variant variant, const core::CoreConfig &cfg)
{
    lua::LuaVm::Options opts;
    opts.variant = variant;
    opts.coreConfig = cfg;
    lua::LuaVm vm(src, opts);
    vm.run();
    return vm.core().collectStats();
}

void
deoptAblation()
{
    std::printf("\n--- A. Section 5 deoptimization (thdl path selector) "
                "---\n");
    std::printf("%-28s %14s %14s %10s\n", "workload / selector",
                "instructions", "cycles", "deopts");
    const std::pair<const char *, const char *> workloads[] = {
        {"always-miss (flt+int)", kFloatLoop},
        {"never-miss (int+int)", kIntLoop}};
    std::vector<core::CoreStats> results(4);
    parallelFor(results.size(), g_jobs, [&](size_t i) {
        core::CoreConfig cfg;
        cfg.deopt.enabled = (i % 2) != 0;
        results[i] = run(workloads[i / 2].second, Variant::Typed, cfg);
    });
    for (size_t i = 0; i < results.size(); ++i) {
        const auto &stats = results[i];
        std::printf("%-22s %-5s %14llu %14llu %10llu\n",
                    workloads[i / 2].first, (i % 2) ? "on" : "off",
                    (unsigned long long)stats.instructions,
                    (unsigned long long)stats.cycles,
                    (unsigned long long)stats.deoptRedirects);
    }
    std::printf("(expected: large win on always-miss, exactly zero cost "
                "on never-miss)\n");
}

void
redirectAblation()
{
    std::printf("\n--- B. type-miss redirect penalty sensitivity "
                "(always-miss workload, typed) ---\n");
    std::printf("%-18s %14s %16s\n", "penalty (cycles)", "cycles",
                "vs baseline ISA");
    const auto base = run(kFloatLoop, Variant::Baseline, {});
    const unsigned penalties[] = {2u, 5u, 10u, 20u};
    std::vector<core::CoreStats> results(4);
    parallelFor(results.size(), g_jobs, [&](size_t i) {
        core::CoreConfig cfg;
        cfg.timing.redirectPenalty = penalties[i];
        results[i] = run(kFloatLoop, Variant::Typed, cfg);
    });
    for (size_t i = 0; i < results.size(); ++i) {
        std::printf("%-18u %14llu %+15.1f%%\n", penalties[i],
                    (unsigned long long)results[i].cycles,
                    100.0 * (static_cast<double>(base.cycles) /
                                 results[i].cycles -
                             1.0));
    }
    std::printf("(the paper's 2-cycle redirect keeps even miss-heavy "
                "code near baseline)\n");
}

void
btbAblation()
{
    std::printf("\n--- C. BTB size (dispatch indirect-jump prediction) "
                "---\n");
    std::printf("%-12s %14s %10s\n", "BTB entries", "cycles",
                "br MPKI");
    const unsigned sizes[] = {4u, 16u, 62u, 256u};
    std::vector<core::CoreStats> results(4);
    parallelFor(results.size(), g_jobs, [&](size_t i) {
        core::CoreConfig cfg;
        cfg.branch.btb.entries = sizes[i];
        results[i] = run(kSieve, Variant::Baseline, cfg);
    });
    for (size_t i = 0; i < results.size(); ++i)
        std::printf("%-12u %14llu %10.2f\n", sizes[i],
                    (unsigned long long)results[i].cycles,
                    results[i].branchMpki());
}

/**
 * When any observability flag is given, re-run the sieve workload on
 * the typed ISA with the requested sinks attached and emit the
 * artifacts — a self-contained reference run, since the ablations
 * themselves sweep configs and would produce 16 near-identical dumps.
 */
void
instrumentedReferenceRun(const bench::ObsCliOptions &obs_cli)
{
    if (!obs_cli.any())
        return;
    obs::SessionConfig cfg;
    cfg.profile = obs_cli.profile;
    cfg.chromeTrace = obs_cli.traceOut;
    cfg.intervalCycles = obs_cli.intervalCycles;
    cfg.statsJson = obs_cli.json;
    lua::LuaVm::Options opts;
    opts.variant = Variant::Typed;
    lua::LuaVm vm(kSieve, opts);
    obs::Session session(vm.core(), cfg);
    vm.run();
    bench::emitCellArtifacts("lua.nsieve-ablation.typed",
                             session.finish(), obs_cli);
}

void
icacheAblation()
{
    std::printf("\n--- D. I-cache size (interpreter footprint) ---\n");
    std::printf("%-12s %14s %12s\n", "I$ size", "cycles", "I$ MPKI");
    const unsigned kibs[] = {1u, 2u, 4u, 16u};
    std::vector<core::CoreStats> results(4);
    parallelFor(results.size(), g_jobs, [&](size_t i) {
        core::CoreConfig cfg;
        cfg.icache.sizeBytes = kibs[i] * 1024;
        results[i] = run(kSieve, Variant::Baseline, cfg);
    });
    for (size_t i = 0; i < results.size(); ++i)
        std::printf("%-9u KiB %14llu %12.3f\n", kibs[i],
                    (unsigned long long)results[i].cycles,
                    results[i].icacheMpki());
    std::printf("(the generated interpreter is ~10 KB: Table 6's 16 KiB "
                "L1I holds it whole)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    bench::ObsCliOptions obs_cli;
    g_jobs = tarch::bench::parseArgs(argc, argv, &obs_cli).jobs;
    std::printf("=============================================================\n");
    std::printf("Design-choice ablations (DESIGN.md Section 6)\n");
    std::printf("=============================================================\n");
    deoptAblation();
    redirectAblation();
    btbAblation();
    icacheAblation();
    instrumentedReferenceRun(obs_cli);
    return 0;
}
