// Figure 6: reduction of dynamic instruction count (the higher, the
// better).  Paper: 11.2% (Lua) and 4.4% (JS) average reduction for
// Typed Architecture.

#include "bench_common.h"

using namespace tarch;
using namespace tarch::harness;

namespace {

void
report(const Sweep &sweep)
{
    std::printf("\n--- %s (dynamic instruction reduction vs baseline) "
                "---\n",
                engineName(sweep.engine));
    std::printf("%-16s %14s %14s\n", "benchmark", "typed (%)",
                "checked-load (%)");
    std::vector<double> typed_red, cl_red;
    for (size_t b = 0; b < sweep.results.size(); ++b) {
        const auto &base = sweep.at(b, vm::Variant::Baseline);
        const auto &typed = sweep.at(b, vm::Variant::Typed);
        const auto &cl = sweep.at(b, vm::Variant::CheckedLoad);
        const double rt =
            1.0 - static_cast<double>(typed.stats.instructions) /
                      static_cast<double>(base.stats.instructions);
        const double rc =
            1.0 - static_cast<double>(cl.stats.instructions) /
                      static_cast<double>(base.stats.instructions);
        typed_red.push_back(rt);
        cl_red.push_back(rc);
        std::printf("%-16s %+13.1f%% %+13.1f%%\n", base.benchmark.c_str(),
                    bench::pct(rt), bench::pct(rc));
    }
    double t_avg = 0, c_avg = 0;
    for (size_t i = 0; i < typed_red.size(); ++i) {
        t_avg += typed_red[i];
        c_avg += cl_red[i];
    }
    t_avg /= typed_red.size();
    c_avg /= cl_red.size();
    std::printf("%-16s %+13.1f%% %+13.1f%%\n", "average",
                bench::pct(t_avg), bench::pct(c_avg));
}

} // namespace

int
main(int argc, char **argv)
{
    bench::ObsCliOptions obs_cli;
    const harness::SweepOptions sweep_opts =
        bench::parseArgs(argc, argv, &obs_cli);
    bench::banner("Figure 6: dynamic instruction count reduction",
                  "Figure 6");
    std::printf("\nPaper reference: average reduction 11.2%% (Lua) and "
                "4.4%% (JS).\n");
    const Sweep lua = runSweepCached(Engine::Lua, sweep_opts);
    report(lua);
    bench::emitObsArtifacts(lua, obs_cli);
    const Sweep js = runSweepCached(Engine::Js, sweep_opts);
    report(js);
    bench::emitObsArtifacts(js, obs_cli);
    return 0;
}
