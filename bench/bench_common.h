/**
 * @file
 * Shared helpers for the per-figure bench binaries: banner printing,
 * percentage formatting, and the common command-line flags every bench
 * binary accepts:
 *
 *   --jobs N       worker threads for the sweep (default: TARCH_JOBS
 *                  environment variable, else hardware concurrency)
 *   --cache-dir D  root of the per-cell sweep cache (default ".")
 *   --cold         ignore cached cells; re-simulate and rewrite them
 *   --no-cache     neither read nor write the cache
 *   --exec-mode M  core execution engine, "exact" or "predecoded"
 *                  (default: TARCH_EXEC_MODE env, else exact); the two
 *                  are bit-identical (docs/FASTPATH.md), predecoded is
 *                  just faster wall-clock
 *
 * plus the observability flags (docs/OBSERVABILITY.md), which attach
 * probe-bus sinks to every cell of the sweep:
 *
 *   --profile           print per-handler + flat cycle profiles per cell
 *   --trace-out PREFIX  write Chrome trace-event JSON per cell
 *   --interval-stats N  sample CoreStats every N cycles, write CSV per cell
 *   --json              write a versioned CoreStats JSON dump per cell
 */

#ifndef TARCH_BENCH_BENCH_COMMON_H
#define TARCH_BENCH_BENCH_COMMON_H

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/strutil.h"
#include "harness/experiment.h"

namespace tarch::bench {

inline void
banner(const char *title, const char *paper_ref)
{
    std::printf("\n=============================================================\n");
    std::printf("%s\n", title);
    std::printf("(reproduces %s of Kim et al., ASPLOS'17)\n", paper_ref);
    std::printf("=============================================================\n");
}

inline double
pct(double ratio)
{
    return 100.0 * ratio;
}

/** "typed vs baseline" percentage speedup. */
inline double
speedupPct(const harness::RunResult &base, const harness::RunResult &var)
{
    return pct(harness::speedupOf(base, var) - 1.0);
}

[[noreturn]] inline void
usage(const char *argv0, int exit_code)
{
    std::fprintf(stderr,
                 "usage: %s [--jobs N] [--cache-dir DIR] [--cold] "
                 "[--no-cache]\n"
                 "          [--exec-mode exact|predecoded]\n"
                 "          [--profile] [--trace-out PREFIX] "
                 "[--interval-stats N] [--json]\n"
                 "  --jobs N       sweep worker threads (default: "
                 "TARCH_JOBS env, else hardware)\n"
                 "  --cache-dir D  per-cell sweep cache root (default "
                 "\".\")\n"
                 "  --cold         ignore cached cells, re-simulate and "
                 "rewrite\n"
                 "  --no-cache     neither read nor write the cache\n"
                 "  --exec-mode M  core engine, exact or predecoded "
                 "(default: TARCH_EXEC_MODE\n"
                 "                 env, else exact); bit-identical stats, "
                 "predecoded is faster\n"
                 "  --profile           print per-handler and flat cycle "
                 "profiles per cell\n"
                 "  --trace-out PREFIX  write Chrome trace JSON per cell "
                 "(PREFIX.<engine>.<bench>.<variant>.trace.json)\n"
                 "  --interval-stats N  sample CoreStats every N cycles, "
                 "write CSV per cell\n"
                 "  --json              write a versioned CoreStats JSON "
                 "dump per cell\n",
                 argv0);
    std::exit(exit_code);
}

/**
 * Observability output selection, parsed alongside SweepOptions.  The
 * file prefix comes from --trace-out when given, else "tarch-obs" (CSV
 * and JSON dumps need one even without a Chrome trace).
 */
struct ObsCliOptions {
    bool profile = false;
    bool traceOut = false;
    bool json = false;
    uint64_t intervalCycles = 0;
    std::string prefix = "tarch-obs";

    bool
    any() const
    {
        return profile || traceOut || json || intervalCycles != 0;
    }

    /** The equivalent sink configuration for the sweep. */
    harness::SweepOptions &
    apply(harness::SweepOptions &opts) const
    {
        opts.obs.profile = profile;
        opts.obs.chromeTrace = traceOut;
        opts.obs.intervalCycles = intervalCycles;
        opts.obs.statsJson = json;
        return opts;
    }
};

/**
 * Parse the common bench flags into SweepOptions.  Unknown flags and
 * malformed values are usage errors (exit 2), not crashes.  When
 * @p obs_cli is non-null the observability flags are accepted too and
 * folded into SweepOptions::obs.
 */
inline harness::SweepOptions
parseArgs(int argc, char **argv, ObsCliOptions *obs_cli = nullptr)
{
    harness::SweepOptions opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: %s needs a value\n", argv[0],
                             flag);
                usage(argv[0], 2);
            }
            return argv[++i];
        };
        if (arg == "--jobs") {
            const char *text = next("--jobs");
            char *end = nullptr;
            const unsigned long n = std::strtoul(text, &end, 10);
            if (end == text || *end != '\0' || n == 0 || n > 4096) {
                std::fprintf(stderr, "%s: bad --jobs value '%s'\n",
                             argv[0], text);
                usage(argv[0], 2);
            }
            opts.jobs = static_cast<unsigned>(n);
        } else if (arg == "--cache-dir") {
            opts.cacheDir = next("--cache-dir");
        } else if (arg == "--cold") {
            opts.forceCold = true;
        } else if (arg == "--no-cache") {
            opts.useCache = false;
        } else if (arg == "--exec-mode") {
            const char *text = next("--exec-mode");
            const auto mode = core::execModeFromName(text);
            if (!mode) {
                std::fprintf(stderr,
                             "%s: bad --exec-mode value '%s' (want "
                             "exact|predecoded)\n",
                             argv[0], text);
                usage(argv[0], 2);
            }
            opts.execMode = *mode;
        } else if (obs_cli && arg == "--profile") {
            obs_cli->profile = true;
        } else if (obs_cli && arg == "--trace-out") {
            obs_cli->traceOut = true;
            obs_cli->prefix = next("--trace-out");
        } else if (obs_cli && arg == "--interval-stats") {
            const char *text = next("--interval-stats");
            char *end = nullptr;
            const unsigned long long n = std::strtoull(text, &end, 10);
            if (end == text || *end != '\0' || n == 0) {
                std::fprintf(stderr,
                             "%s: bad --interval-stats value '%s'\n",
                             argv[0], text);
                usage(argv[0], 2);
            }
            obs_cli->intervalCycles = n;
        } else if (obs_cli && arg == "--json") {
            obs_cli->json = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0], 0);
        } else {
            std::fprintf(stderr, "%s: unknown flag '%s'\n", argv[0],
                         arg.c_str());
            usage(argv[0], 2);
        }
    }
    if (obs_cli)
        obs_cli->apply(opts);
    return opts;
}

inline bool
writeTextFile(const std::string &path, const std::string &content)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return false;
    }
    std::fwrite(content.data(), 1, content.size(), f);
    const bool ok = !std::ferror(f);
    std::fclose(f);
    return ok;
}

/**
 * Emit one instrumented run's artifacts: profile reports to stdout,
 * Chrome trace / interval CSV / stats JSON to files named
 * `<prefix>.<cell>.<kind>`.
 */
inline void
emitCellArtifacts(const std::string &cell, const obs::Artifacts &a,
                  const ObsCliOptions &obs)
{
    if (obs.profile) {
        std::printf("\n--- profile %s ---\n%s\n%s", cell.c_str(),
                    a.profileByHandler.c_str(), a.profileFlat.c_str());
    }
    if (obs.traceOut) {
        const std::string path = obs.prefix + "." + cell + ".trace.json";
        if (writeTextFile(path, a.traceJson))
            std::printf("wrote %s\n", path.c_str());
    }
    if (obs.intervalCycles != 0) {
        const std::string path =
            obs.prefix + "." + cell + ".intervals.csv";
        if (writeTextFile(path, a.intervalCsv))
            std::printf("wrote %s\n", path.c_str());
    }
    if (obs.json) {
        const std::string path = obs.prefix + "." + cell + ".stats.json";
        if (writeTextFile(path, a.statsJson))
            std::printf("wrote %s\n", path.c_str());
    }
}

/**
 * Emit the observability artifacts of every cell of an instrumented
 * sweep.  A no-op when no obs flag was given.
 */
inline void
emitObsArtifacts(const harness::Sweep &sweep, const ObsCliOptions &obs)
{
    if (!obs.any())
        return;
    for (const auto &row : sweep.results) {
        for (const harness::RunResult &run : row) {
            const std::string cell = strformat(
                "%s.%s.%s",
                sweep.engine == harness::Engine::Lua ? "lua" : "js",
                run.benchmark.c_str(),
                std::string(vm::variantName(run.variant)).c_str());
            emitCellArtifacts(cell, run.obsArtifacts, obs);
        }
    }
}

} // namespace tarch::bench

#endif // TARCH_BENCH_BENCH_COMMON_H
