/**
 * @file
 * Shared helpers for the per-figure bench binaries: headers, simple
 * fixed-width table printing, and percentage formatting.
 */

#ifndef TARCH_BENCH_BENCH_COMMON_H
#define TARCH_BENCH_BENCH_COMMON_H

#include <cstdio>
#include <string>
#include <vector>

#include "harness/experiment.h"

namespace tarch::bench {

inline void
banner(const char *title, const char *paper_ref)
{
    std::printf("\n=============================================================\n");
    std::printf("%s\n", title);
    std::printf("(reproduces %s of Kim et al., ASPLOS'17)\n", paper_ref);
    std::printf("=============================================================\n");
}

inline double
pct(double ratio)
{
    return 100.0 * ratio;
}

/** "typed vs baseline" percentage speedup. */
inline double
speedupPct(const harness::RunResult &base, const harness::RunResult &var)
{
    return pct(harness::speedupOf(base, var) - 1.0);
}

} // namespace tarch::bench

#endif // TARCH_BENCH_BENCH_COMMON_H
