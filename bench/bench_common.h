/**
 * @file
 * Shared helpers for the per-figure bench binaries: banner printing,
 * percentage formatting, and the common command-line flags every bench
 * binary accepts:
 *
 *   --jobs N       worker threads for the sweep (default: TARCH_JOBS
 *                  environment variable, else hardware concurrency)
 *   --cache-dir D  root of the per-cell sweep cache (default ".")
 *   --cold         ignore cached cells; re-simulate and rewrite them
 *   --no-cache     neither read nor write the cache
 */

#ifndef TARCH_BENCH_BENCH_COMMON_H
#define TARCH_BENCH_BENCH_COMMON_H

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "harness/experiment.h"

namespace tarch::bench {

inline void
banner(const char *title, const char *paper_ref)
{
    std::printf("\n=============================================================\n");
    std::printf("%s\n", title);
    std::printf("(reproduces %s of Kim et al., ASPLOS'17)\n", paper_ref);
    std::printf("=============================================================\n");
}

inline double
pct(double ratio)
{
    return 100.0 * ratio;
}

/** "typed vs baseline" percentage speedup. */
inline double
speedupPct(const harness::RunResult &base, const harness::RunResult &var)
{
    return pct(harness::speedupOf(base, var) - 1.0);
}

[[noreturn]] inline void
usage(const char *argv0, int exit_code)
{
    std::fprintf(stderr,
                 "usage: %s [--jobs N] [--cache-dir DIR] [--cold] "
                 "[--no-cache]\n"
                 "  --jobs N       sweep worker threads (default: "
                 "TARCH_JOBS env, else hardware)\n"
                 "  --cache-dir D  per-cell sweep cache root (default "
                 "\".\")\n"
                 "  --cold         ignore cached cells, re-simulate and "
                 "rewrite\n"
                 "  --no-cache     neither read nor write the cache\n",
                 argv0);
    std::exit(exit_code);
}

/**
 * Parse the common bench flags into SweepOptions.  Unknown flags and
 * malformed values are usage errors (exit 2), not crashes.
 */
inline harness::SweepOptions
parseArgs(int argc, char **argv)
{
    harness::SweepOptions opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: %s needs a value\n", argv[0],
                             flag);
                usage(argv[0], 2);
            }
            return argv[++i];
        };
        if (arg == "--jobs") {
            const char *text = next("--jobs");
            char *end = nullptr;
            const unsigned long n = std::strtoul(text, &end, 10);
            if (end == text || *end != '\0' || n == 0 || n > 4096) {
                std::fprintf(stderr, "%s: bad --jobs value '%s'\n",
                             argv[0], text);
                usage(argv[0], 2);
            }
            opts.jobs = static_cast<unsigned>(n);
        } else if (arg == "--cache-dir") {
            opts.cacheDir = next("--cache-dir");
        } else if (arg == "--cold") {
            opts.forceCold = true;
        } else if (arg == "--no-cache") {
            opts.useCache = false;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0], 0);
        } else {
            std::fprintf(stderr, "%s: unknown flag '%s'\n", argv[0],
                         arg.c_str());
            usage(argv[0], 2);
        }
    }
    return opts;
}

} // namespace tarch::bench

#endif // TARCH_BENCH_BENCH_COMMON_H
