// Figure 7: branch miss rates in mispredictions per kilo-instruction
// (MPKI) for the three designs (the lower, the better).

#include "bench_common.h"

using namespace tarch;
using namespace tarch::harness;

namespace {

void
report(const Sweep &sweep)
{
    std::printf("\n--- %s (branch MPKI) ---\n", engineName(sweep.engine));
    std::printf("%-16s %10s %10s %12s\n", "benchmark", "baseline",
                "typed", "checked-load");
    for (size_t b = 0; b < sweep.results.size(); ++b) {
        const auto &base = sweep.at(b, vm::Variant::Baseline);
        const auto &typed = sweep.at(b, vm::Variant::Typed);
        const auto &cl = sweep.at(b, vm::Variant::CheckedLoad);
        std::printf("%-16s %10.2f %10.2f %12.2f\n",
                    base.benchmark.c_str(), base.stats.branchMpki(),
                    typed.stats.branchMpki(), cl.stats.branchMpki());
    }
}

} // namespace

int
main(int argc, char **argv)
{
    bench::ObsCliOptions obs_cli;
    const harness::SweepOptions sweep_opts =
        bench::parseArgs(argc, argv, &obs_cli);
    bench::banner(
        "Figure 7: branch miss rates (MPKI, lower is better)",
        "Figure 7");
    std::printf("\nExpected shape: the typed variant removes the "
                "type-guard branches, so its\nMPKI is at or below the "
                "baseline's on guard-heavy benchmarks (e.g. fibo,\n"
                "fannkuch-redux, n-sieve).\n");
    const Sweep lua = runSweepCached(Engine::Lua, sweep_opts);
    report(lua);
    bench::emitObsArtifacts(lua, obs_cli);
    const Sweep js = runSweepCached(Engine::Js, sweep_opts);
    report(js);
    bench::emitObsArtifacts(js, obs_cli);
    return 0;
}
