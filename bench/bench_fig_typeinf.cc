// Type inference & guard elision: the software-typed comparison axis.
//
// The paper's hardware variants (typed / checked-load) attack dynamic
// type-guard overhead from below the ISA; tarch-typeinf attacks the
// same overhead from above, by statically proving sites monomorphic
// and rewriting them to guard-free opcodes (docs/ANALYSIS.md).  This
// bench quantifies what the software axis removes on its own: every
// Table-7 benchmark runs on both engines x all three ISA variants,
// with elision off and on, counting dynamically retired fast-path
// guard instructions (the generator-labeled guard PCs, vm.guardPcs())
// through a probe-bus sink.
//
// Guest output must be bit-identical between the elided and unelided
// runs — the figure doubles as a correctness ratchet.  Results land in
// BENCH_typeinf.json; --check additionally fails (exit 1) unless at
// least --min-benchmarks benchmarks see at least --min-reduction %
// fewer dynamic guards on the baseline (all-software) variant.
//
//   bench_fig_typeinf [--json PATH] [--check] [--min-reduction PCT]
//                     [--min-benchmarks N]

#include <cstring>
#include <unordered_set>

#include "bench_common.h"
#include "obs/event.h"
#include "vm/js/js_vm.h"
#include "vm/lua/lua_vm.h"

using namespace tarch;
using namespace tarch::harness;

namespace {

constexpr double kDefaultMinReduction = 20.0; ///< acceptance floor, %
constexpr unsigned kDefaultMinBenchmarks = 3;

/** Counts retired instructions whose PC carries a guard label. */
class GuardCounter : public obs::Sink
{
  public:
    explicit GuardCounter(const std::vector<uint64_t> &pcs)
        : pcs_(pcs.begin(), pcs.end())
    {
    }

    void
    onEvent(const obs::Event &event) override
    {
        if (event.kind == obs::EventKind::Retire &&
            pcs_.count(event.pc) != 0)
            ++count_;
    }

    uint64_t count() const { return count_; }

  private:
    std::unordered_set<uint64_t> pcs_;
    uint64_t count_ = 0;
};

/** One simulated (engine, variant, benchmark, elide) cell. */
struct Cell {
    uint64_t guards = 0;
    uint64_t cycles = 0;
    std::string output;
};

template <typename Vm>
Cell
runCell(const std::string &source, vm::Variant variant, bool elide)
{
    typename Vm::Options opts;
    opts.variant = variant;
    opts.elide = elide;
    opts.coreConfig.execMode = core::ExecMode::Exact;
    Vm vm(source, opts);
    GuardCounter counter(vm.guardPcs());
    vm.core().probeBus().attach(&counter);
    vm.run();
    Cell cell;
    cell.guards = counter.count();
    cell.cycles = vm.core().collectStats().cycles;
    cell.output = vm.output();
    vm.core().probeBus().detach(&counter);
    return cell;
}

Cell
runCell(Engine engine, const std::string &source, vm::Variant variant,
        bool elide)
{
    return engine == Engine::Lua
               ? runCell<vm::lua::LuaVm>(source, variant, elide)
               : runCell<vm::js::JsVm>(source, variant, elide);
}

struct Row {
    Engine engine = Engine::Lua;
    std::string benchmark;
    vm::Variant variant = vm::Variant::Baseline;
    Cell plain;
    Cell elided;

    double
    guardReduction() const
    {
        return plain.guards == 0
                   ? 0.0
                   : 100.0 * (1.0 - static_cast<double>(elided.guards) /
                                        static_cast<double>(plain.guards));
    }

    /** Negative = elision made the run faster. */
    double
    cycleDelta() const
    {
        return plain.cycles == 0
                   ? 0.0
                   : 100.0 * (static_cast<double>(elided.cycles) /
                                  static_cast<double>(plain.cycles) -
                              1.0);
    }
};

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path = "BENCH_typeinf.json";
    bool check = false;
    double min_reduction = kDefaultMinReduction;
    unsigned min_benchmarks = kDefaultMinBenchmarks;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else if (arg == "--check") {
            check = true;
        } else if (arg == "--min-reduction" && i + 1 < argc) {
            min_reduction = std::atof(argv[++i]);
        } else if (arg == "--min-benchmarks" && i + 1 < argc) {
            min_benchmarks =
                static_cast<unsigned>(std::atoi(argv[++i]));
        } else {
            std::fprintf(stderr,
                         "usage: %s [--json PATH] [--check] "
                         "[--min-reduction PCT] [--min-benchmarks N]\n",
                         argv[0]);
            return 2;
        }
    }

    bench::banner("Type inference & guard elision: dynamic guards "
                  "removed by the software-typed axis",
                  "both engines x 3 ISA variants, elide off vs on");

    std::vector<Row> rows;
    bool identical = true;
    for (const Engine engine : {Engine::Lua, Engine::Js}) {
        std::printf("\n%s\n%-16s %-14s %12s %12s %9s %8s\n",
                    engineName(engine), "benchmark", "variant", "guards",
                    "elided", "reduction", "cycles");
        for (const BenchmarkInfo &info : benchmarks()) {
            for (const vm::Variant variant :
                 {vm::Variant::Baseline, vm::Variant::Typed,
                  vm::Variant::CheckedLoad}) {
                Row row;
                row.engine = engine;
                row.benchmark = info.name;
                row.variant = variant;
                row.plain = runCell(engine, info.source, variant, false);
                row.elided = runCell(engine, info.source, variant, true);

                // The comparison is only meaningful if elision
                // preserved the guest semantics bit-for-bit.
                if (row.plain.output != row.elided.output) {
                    identical = false;
                    std::fprintf(stderr,
                                 "%s/%s/%s: elided guest output "
                                 "DIFFERS\n",
                                 engineName(engine), info.name.c_str(),
                                 std::string(vm::variantName(variant))
                                     .c_str());
                }

                std::printf("%-16s %-14s %12llu %12llu %8.1f%% %+7.2f%%\n",
                            info.name.c_str(),
                            std::string(vm::variantName(variant)).c_str(),
                            (unsigned long long)row.plain.guards,
                            (unsigned long long)row.elided.guards,
                            row.guardReduction(), row.cycleDelta());
                rows.push_back(row);
            }
        }
    }

    // The acceptance axis: benchmarks whose baseline (all-software
    // guards) run sheds at least min_reduction % of its dynamic
    // guards on either engine.
    std::unordered_set<std::string> qualifying;
    for (const Row &row : rows) {
        if (row.variant == vm::Variant::Baseline &&
            row.plain.guards > 0 &&
            row.guardReduction() >= min_reduction)
            qualifying.insert(row.benchmark);
    }
    std::printf("\n%zu/%zu benchmarks shed >= %.0f%% of their dynamic "
                "baseline-variant guards (outputs bit-identical: %s)\n",
                qualifying.size(), benchmarks().size(), min_reduction,
                identical ? "yes" : "NO");

    std::string json = "{\n  \"bench\": \"typeinf\",\n";
    json += strformat("  \"min_reduction_pct\": %.1f,\n", min_reduction);
    json += strformat("  \"qualifying_benchmarks\": %zu,\n",
                      qualifying.size());
    json += strformat("  \"bit_identical\": %s,\n",
                      identical ? "true" : "false");
    json += "  \"rows\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row &row = rows[i];
        json += strformat(
            "    {\"engine\": \"%s\", \"benchmark\": \"%s\", "
            "\"variant\": \"%s\", \"guards\": %llu, "
            "\"guards_elided\": %llu, \"guard_reduction_pct\": %.2f, "
            "\"cycles\": %llu, \"cycles_elided\": %llu, "
            "\"cycle_delta_pct\": %.3f}%s\n",
            engineName(row.engine), row.benchmark.c_str(),
            std::string(vm::variantName(row.variant)).c_str(),
            (unsigned long long)row.plain.guards,
            (unsigned long long)row.elided.guards, row.guardReduction(),
            (unsigned long long)row.plain.cycles,
            (unsigned long long)row.elided.cycles, row.cycleDelta(),
            i + 1 < rows.size() ? "," : "");
    }
    json += "  ]\n}\n";
    if (bench::writeTextFile(json_path, json))
        std::printf("wrote %s\n", json_path.c_str());

    if (!identical)
        return 1;
    if (check && qualifying.size() < min_benchmarks) {
        std::fprintf(stderr,
                     "FAIL: only %zu benchmarks reached the %.0f%% "
                     "guard-reduction floor (need %u)\n",
                     qualifying.size(), min_reduction, min_benchmarks);
        return 1;
    }
    return 0;
}
