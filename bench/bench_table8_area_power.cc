// Table 8: hardware overhead breakdown (area, power) of the Typed
// Architecture extension, and the EDP improvement computed from the
// modeled power overhead and the measured cycle counts.
// Paper: +1.6% area, +3.7% power, EDP -16.5% (Lua) / -19.3% (JS).

#include "bench_common.h"
#include "power/power_model.h"

using namespace tarch;
using namespace tarch::harness;

namespace {

double
geomeanSpeedup(const Sweep &sweep)
{
    std::vector<double> ratios;
    for (size_t b = 0; b < sweep.results.size(); ++b)
        ratios.push_back(speedupOf(sweep.at(b, vm::Variant::Baseline),
                                   sweep.at(b, vm::Variant::Typed)));
    return geomean(ratios);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::ObsCliOptions obs_cli;
    const harness::SweepOptions sweep_opts =
        bench::parseArgs(argc, argv, &obs_cli);
    bench::banner("Table 8: hardware overhead breakdown (area, power)",
                  "Table 8 and Section 7.2");

    const power::SynthesisReport report = power::buildTable8();
    std::printf("\n%-12s | %-22s | %-22s\n", "", "Baseline",
                "Typed Architecture");
    std::printf("%-12s | %10s %11s | %10s %11s\n", "Module",
                "Area (mm2)", "Power (mW)", "Area (mm2)", "Power (mW)");
    for (size_t i = 0; i < report.baseline.size(); ++i) {
        const auto &b = report.baseline[i];
        const auto &t = report.typedArch[i];
        std::printf("%*s%-*s | %10.3f %11.2f | %10.3f %11.2f\n",
                    b.depth * 2, "", 12 - b.depth * 2, b.name.c_str(),
                    b.areaMm2, b.powerMw, t.areaMm2, t.powerMw);
    }
    std::printf("\nArea overhead:  %+5.1f%%   (paper: +1.6%%)\n",
                bench::pct(report.areaOverhead()));
    std::printf("Power overhead: %+5.1f%%   (paper: +3.7%%)\n",
                bench::pct(report.powerOverhead()));

    const double power_ratio = 1.0 + report.powerOverhead();
    const Sweep lua = runSweepCached(Engine::Lua, sweep_opts);
    const Sweep js = runSweepCached(Engine::Js, sweep_opts);
    const double lua_speedup = geomeanSpeedup(lua);
    const double js_speedup = geomeanSpeedup(js);
    std::printf("\nEDP improvement (modeled power x measured cycles^2):\n");
    std::printf("  MiniLua: %5.1f%% (speedup %+.1f%%; paper: 16.5%% at "
                "+9.9%% speedup)\n",
                bench::pct(power::edpImprovement(lua_speedup,
                                                 power_ratio)),
                bench::pct(lua_speedup - 1));
    std::printf("  MiniJS:  %5.1f%% (speedup %+.1f%%; paper: 19.3%% at "
                "+11.2%% speedup)\n",
                bench::pct(power::edpImprovement(js_speedup,
                                                 power_ratio)),
                bench::pct(js_speedup - 1));
    bench::emitObsArtifacts(lua, obs_cli);
    bench::emitObsArtifacts(js, obs_cli);
    return 0;
}
