// Fast-path throughput: simulated instructions per wall-clock second of
// the exact per-cycle core vs. the predecoded basic-block core
// (docs/FASTPATH.md) over the Table-7 benchmark suite, on the paper's
// headline configuration (MiniLua, typed variant).
//
// Every benchmark is simulated in BOTH modes and the 26 CoreStats
// counters plus the guest output are required to be bit-identical —
// the perf bench doubles as an equivalence ratchet.  Results land in
// BENCH_fastpath.json; --check additionally fails (exit 1) when the
// geomean speedup drops below the committed floor.
//
//   bench_fastpath [--json PATH] [--check] [--min-speedup X]

#include <chrono>
#include <cstring>

#include "bench_common.h"

using namespace tarch;
using namespace tarch::harness;

namespace {

constexpr double kDefaultMinSpeedup = 2.0; ///< geomean ratchet floor

struct Row {
    std::string name;
    uint64_t instructions = 0;
    double exactSec = 0.0;
    double predecodedSec = 0.0;

    double exactIps() const { return instructions / exactSec; }
    double predecodedIps() const { return instructions / predecodedSec; }
    double speedup() const { return exactSec / predecodedSec; }
};

double
timeRun(Engine engine, vm::Variant variant, const BenchmarkInfo &info,
        core::ExecMode mode, RunResult &out)
{
    const auto begin = std::chrono::steady_clock::now();
    out = runOne(engine, variant, info, obs::SessionConfig{}, mode);
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - begin;
    return elapsed.count();
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path = "BENCH_fastpath.json";
    bool check = false;
    double min_speedup = kDefaultMinSpeedup;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else if (arg == "--check") {
            check = true;
        } else if (arg == "--min-speedup" && i + 1 < argc) {
            min_speedup = std::atof(argv[++i]);
        } else {
            std::fprintf(stderr,
                         "usage: %s [--json PATH] [--check] "
                         "[--min-speedup X]\n",
                         argv[0]);
            return 2;
        }
    }

    bench::banner(
        "Fast path: exact vs predecoded core simulation throughput",
        "the simulator itself; Table 7 workloads");
    std::printf("\n%-16s %10s %12s %12s %9s\n", "benchmark", "Minstr",
                "exact i/s", "predec i/s", "speedup");

    std::vector<Row> rows;
    bool identical = true;
    for (const BenchmarkInfo &info : benchmarks()) {
        RunResult exact, predecoded;
        Row row;
        row.name = info.name;
        row.exactSec = timeRun(Engine::Lua, vm::Variant::Typed, info,
                               core::ExecMode::Exact, exact);
        row.predecodedSec = timeRun(Engine::Lua, vm::Variant::Typed, info,
                                    core::ExecMode::Predecoded, predecoded);
        row.instructions = exact.stats.instructions;

        // The throughput comparison is only meaningful if the two
        // engines simulated the SAME machine execution.
        const std::string diff =
            core::describeStatsDiff(exact.stats, predecoded.stats);
        if (!diff.empty() || exact.output != predecoded.output) {
            identical = false;
            std::fprintf(stderr,
                         "%s: predecoded run is NOT bit-identical:\n%s%s\n",
                         info.name.c_str(), diff.c_str(),
                         exact.output != predecoded.output
                             ? "\nguest output differs"
                             : "");
        }

        std::printf("%-16s %10.1f %12.3g %12.3g %8.2fx\n",
                    row.name.c_str(), row.instructions / 1e6,
                    row.exactIps(), row.predecodedIps(), row.speedup());
        rows.push_back(row);
    }

    std::vector<double> speedups;
    for (const Row &row : rows)
        speedups.push_back(row.speedup());
    const double geo = geomean(speedups);
    std::printf("\ngeomean wall-clock speedup: %.2fx "
                "(bit-identical stats: %s)\n",
                geo, identical ? "yes" : "NO");

    std::string json = "{\n  \"bench\": \"fastpath\",\n";
    json += strformat("  \"engine\": \"%s\",\n  \"variant\": \"typed\",\n",
                      engineName(Engine::Lua));
    json += strformat("  \"geomean_speedup\": %.3f,\n", geo);
    json += strformat("  \"bit_identical\": %s,\n",
                      identical ? "true" : "false");
    json += "  \"benchmarks\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row &row = rows[i];
        json += strformat("    {\"name\": \"%s\", \"instructions\": %llu, "
                          "\"exact_ips\": %.0f, \"predecoded_ips\": %.0f, "
                          "\"speedup\": %.3f}%s\n",
                          row.name.c_str(),
                          (unsigned long long)row.instructions,
                          row.exactIps(), row.predecodedIps(),
                          row.speedup(), i + 1 < rows.size() ? "," : "");
    }
    json += "  ]\n}\n";
    if (bench::writeTextFile(json_path, json))
        std::printf("wrote %s\n", json_path.c_str());

    if (!identical)
        return 1;
    if (check && geo < min_speedup) {
        std::fprintf(stderr,
                     "FAIL: geomean speedup %.2fx below the %.2fx floor\n",
                     geo, min_speedup);
        return 1;
    }
    return 0;
}
