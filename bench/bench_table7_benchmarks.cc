// Table 7: the benchmark suite, paper inputs vs. our scaled inputs,
// with per-benchmark workload sizes measured on the baseline ISA.

#include "bench_common.h"

using namespace tarch;
using namespace tarch::harness;

int
main(int argc, char **argv)
{
    bench::ObsCliOptions obs_cli;
    const harness::SweepOptions sweep_opts =
        bench::parseArgs(argc, argv, &obs_cli);
    bench::banner("Table 7: benchmarks (paper inputs vs scaled inputs)",
                  "Table 7");
    const Sweep lua = runSweepCached(Engine::Lua, sweep_opts);
    const Sweep js = runSweepCached(Engine::Js, sweep_opts);
    std::printf("\n%-16s %10s %22s %12s %12s  %s\n", "benchmark",
                "paper in", "scaled input", "Lua Minstr", "JS Minstr",
                "description");
    for (size_t b = 0; b < lua.results.size(); ++b) {
        const BenchmarkInfo &info = benchmarks()[b];
        std::printf("%-16s %10s %22s %12.1f %12.1f  %s\n",
                    info.name.c_str(), info.paperInput.c_str(),
                    info.scaledInput.c_str(),
                    lua.at(b, vm::Variant::Baseline).stats.instructions /
                        1e6,
                    js.at(b, vm::Variant::Baseline).stats.instructions /
                        1e6,
                    info.description.c_str());
    }
    std::printf("\nAll outputs verified identical across the three ISA "
                "variants per engine.\n");
    bench::emitObsArtifacts(lua, obs_cli);
    bench::emitObsArtifacts(js, obs_cli);
    return 0;
}
