// Figure 8: instruction cache miss rates in MPKI (the lower, the
// better).  The typed handlers are much shorter, shrinking the hot
// interpreter footprint.

#include "bench_common.h"

using namespace tarch;
using namespace tarch::harness;

namespace {

void
report(const Sweep &sweep)
{
    std::printf("\n--- %s (I-cache MPKI) ---\n",
                engineName(sweep.engine));
    std::printf("%-16s %10s %10s %12s\n", "benchmark", "baseline",
                "typed", "checked-load");
    for (size_t b = 0; b < sweep.results.size(); ++b) {
        const auto &base = sweep.at(b, vm::Variant::Baseline);
        const auto &typed = sweep.at(b, vm::Variant::Typed);
        const auto &cl = sweep.at(b, vm::Variant::CheckedLoad);
        std::printf("%-16s %10.3f %10.3f %12.3f\n",
                    base.benchmark.c_str(), base.stats.icacheMpki(),
                    typed.stats.icacheMpki(), cl.stats.icacheMpki());
    }
    std::printf("(D-cache MPKI for context)\n");
    for (size_t b = 0; b < sweep.results.size(); ++b) {
        const auto &base = sweep.at(b, vm::Variant::Baseline);
        const auto &typed = sweep.at(b, vm::Variant::Typed);
        const auto &cl = sweep.at(b, vm::Variant::CheckedLoad);
        std::printf("%-16s %10.3f %10.3f %12.3f\n",
                    base.benchmark.c_str(), base.stats.dcacheMpki(),
                    typed.stats.dcacheMpki(), cl.stats.dcacheMpki());
    }
}

} // namespace

int
main(int argc, char **argv)
{
    bench::ObsCliOptions obs_cli;
    const harness::SweepOptions sweep_opts =
        bench::parseArgs(argc, argv, &obs_cli);
    bench::banner("Figure 8: instruction cache miss rates (MPKI)",
                  "Figure 8");
    std::printf("\nNote: our generated interpreters are much smaller "
                "than SpiderMonkey's\n(~10 KB vs ~hundreds of KB), so "
                "absolute I-cache MPKI is lower than the\npaper's; the "
                "relative ordering (typed <= baseline) is the "
                "reproduced shape.\n");
    const Sweep lua = runSweepCached(Engine::Lua, sweep_opts);
    report(lua);
    bench::emitObsArtifacts(lua, obs_cli);
    const Sweep js = runSweepCached(Engine::Js, sweep_opts);
    report(js);
    bench::emitObsArtifacts(js, obs_cli);
    return 0;
}
