// trace_debug: demonstrate the simulator's debugging surface — attach a
// Tracer, set a breakpoint on a bytecode handler of a running MiniLua
// interpreter, and inspect VM state when it hits.

#include <cstdio>

#include "vm/lua/lua_vm.h"

using namespace tarch;

int
main()
{
    vm::lua::LuaVm vm(R"(
local t = {}
for i = 1, 5 do t[i] = i * i end
print(t[5])
)");

    // Trace the last 12 instructions at all times.
    core::Tracer tracer(12);
    vm.core().setTracer(&tracer);

    // Break at the SETTABLE handler (its PC is known via the marker
    // registry the VM installed).
    uint64_t settable_pc = 0;
    const core::Markers &markers = vm.core().markers();
    for (const auto &[pc, id] : markers.byPc()) {
        if (markers.name(id) == "op:SETTABLE")
            settable_pc = pc;
    }
    vm.core().addBreakpoint(settable_pc);

    int hits = 0;
    while (vm.core().runToBreakpoint() ==
           core::Core::StopReason::Breakpoint) {
        ++hits;
        if (hits <= 2) {
            std::printf("--- breakpoint %d at SETTABLE (pc 0x%llx) ---\n",
                        hits,
                        (unsigned long long)vm.core().pc());
            std::printf("%s", tracer.dump().c_str());
        }
        vm.core().step();  // step over the breakpointed instruction
    }
    std::printf("\nSETTABLE executed %d times\n", hits);
    std::printf("program output: %s", vm.output().c_str());
    return 0;
}
