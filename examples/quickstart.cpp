// Quickstart: assemble a small Typed Architecture program, run it on
// the simulated core, and read the performance counters.
//
// This exercises the lowest layer of the public API: the assembler, the
// core, and the typed extension (paper Table 2 instructions), without
// either scripting VM.

#include <cstdio>

#include "assembler/assembler.h"
#include "core/core.h"

int
main()
{
    using namespace tarch;

    // A Lua-layout slot pair (value dword + tag byte in the next dword)
    // holding the integers 30 and 12, added with the polymorphic xadd.
    const char *program = R"(
        # Configure the tag extractor for the Lua layout (paper Table 4)
        li t0, 1          # R_offset = 0b001: tag in the next dword
        setoffset t0
        li t0, 0
        setshift t0
        li t0, 255
        setmask t0
        # One Type Rule Table entry: (xadd, Int, Int) -> Int
        li t0, 0x00131313
        set_trt t0

        la a1, lhs
        la a2, rhs
        la a3, dst
        thdl slow         # slow path for type mispredictions
        tld a4, 0(a1)     # load value AND tag
        tld a5, 0(a2)
        xadd a6, a4, a5   # checked + computed in one instruction
        tsd a6, 0(a3)     # store value AND tag
        ld a0, 0(a3)
        sys 2             # print the integer in a0
        li a0, 10
        sys 1             # newline
        halt
slow:
        la a0, msg
        sys 4
        halt

        .data
lhs:    .dword 30
        .dword 0x13       # LUA_TNUMINT
rhs:    .dword 12
        .dword 0x13
dst:    .dword 0, 0
msg:    .asciiz "type misprediction!\n"
    )";

    core::Core core;
    core.loadProgram(assembler::assemble(program));
    core.run();

    std::printf("guest output: %s", core.output().c_str());
    const core::CoreStats stats = core.collectStats();
    std::printf("instructions: %llu\n",
                (unsigned long long)stats.instructions);
    std::printf("cycles:       %llu (IPC %.2f)\n",
                (unsigned long long)stats.cycles, stats.ipc());
    std::printf("TRT lookups:  %llu (hits %llu)\n",
                (unsigned long long)stats.trt.lookups,
                (unsigned long long)stats.trt.hits);
    return 0;
}
