// show_handlers: print the generated interpreter assembly for the hot
// ADD bytecode in all three ISA variants — the direct analogue of the
// paper's Figure 1(c) (baseline software type guards) and Figure 3
// (Typed Architecture transformation).
//
//   show_handlers [--engine=lua|js] [--op=add|gettable|...]

#include <cstdio>
#include <string>

#include "vm/image.h"
#include "vm/js/interp_gen.h"
#include "vm/lua/interp_gen.h"
#include "vm/variant.h"

using namespace tarch;
using namespace tarch::vm;

namespace {

/** Extract the lines between "op_<name>:" and the next handler label. */
std::string
extractHandler(const std::string &asm_text, const std::string &op)
{
    const std::string start = "op_" + op + ":";
    const size_t begin = asm_text.find("\n" + start);
    if (begin == std::string::npos)
        return "(handler not found)\n";
    // End at the next op_* label that is not a sub-label of this
    // handler (e.g. op_add_flt belongs to op_add).
    size_t end = begin + 1;
    for (;;) {
        end = asm_text.find("\nop_", end + 1);
        if (end == std::string::npos) {
            end = asm_text.size();
            break;
        }
        if (asm_text.compare(end + 1, op.size() + 4, "op_" + op + "_") !=
            0)
            break;
    }
    return asm_text.substr(begin + 1, end - begin);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string engine = "lua";
    std::string op = "add";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--engine=", 0) == 0)
            engine = arg.substr(9);
        else if (arg.rfind("--op=", 0) == 0)
            op = arg.substr(5);
    }

    const GuestLayout layout;
    for (const Variant variant :
         {Variant::Baseline, Variant::Typed, Variant::CheckedLoad}) {
        std::string text;
        if (engine == "js")
            text = js::generateInterp(variant, layout, layout.code,
                                      layout.consts, 4)
                       .asmText;
        else
            text = lua::generateInterp(variant, layout, layout.code,
                                       layout.consts)
                       .asmText;
        std::printf("=========================================================\n");
        std::printf("%s '%s' handler, %s variant", engine.c_str(),
                    op.c_str(),
                    std::string(variantName(variant)).c_str());
        if (variant == Variant::Baseline)
            std::printf("  (cf. paper Figure 1(c))");
        if (variant == Variant::Typed)
            std::printf("  (cf. paper Figure 3)");
        std::printf("\n=========================================================\n");
        std::printf("%s\n", extractHandler(text, op).c_str());
    }
    return 0;
}
