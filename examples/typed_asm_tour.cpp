// typed_asm_tour: a guided walk through every instruction of the Typed
// Architecture ISA extension (paper Table 2), single-stepping the core
// and printing the architectural state after each one.

#include <cstdio>

#include "assembler/assembler.h"
#include "core/core.h"
#include "isa/disasm.h"

using namespace tarch;

int
main()
{
    const char *program = R"(
        # --- configuration instructions ---
        li t0, 1
        setoffset t0        # tag lives in the next dword (Lua layout)
        li t0, 0
        setshift t0
        li t0, 255
        setmask t0
        li t0, 0x00131313   # rule: (xadd, Int, Int) -> Int
        set_trt t0
        li t0, 0x00838383   # rule: (xadd, Flt, Flt) -> Flt
        set_trt t0
        li t0, 0x03051305   # rule: (tchk, Table, Int) -> Table
        set_trt t0

        # --- tagged loads ---
        la a1, ints
        tld a2, 0(a1)       # a2 = {v:30, t:Int}
        tld a3, 16(a1)      # a3 = {v:12, t:Int}

        # --- handler register and polymorphic execution ---
        thdl miss
        xadd a4, a2, a3     # binds to integer add; tag from the TRT

        # --- tag read/write ---
        tget a5, a4         # a5.v = tag of a4 (0x13)
        li a6, 0x83
        tset a4, a6         # overwrite a4's tag with Float

        # --- tagged store ---
        la a1, out
        tsd a4, 0(a1)

        # --- tchk: type check without computation ---
        la a1, tab
        tld a6, 0(a1)
        tchk a6, a2         # (Table, Int): hits

        # --- a deliberate type misprediction ---
        xadd a7, a2, a6     # (Int, Table): no rule -> jump to 'miss'
        halt
miss:
        li a0, 1
        flush_trt           # drop all rules (engine teardown)
        halt

        .data
ints:   .dword 30
        .dword 0x13
        .dword 12
        .dword 0x13
tab:    .dword 0x2000
        .dword 0x05
out:    .dword 0, 0
    )";

    core::Core core;
    const auto image = assembler::assemble(program);
    core.loadProgram(image);

    std::printf("single-stepping the Typed Architecture tour:\n\n");
    while (!core.halted()) {
        const uint64_t pc = core.pc();
        const size_t idx = (pc - image.textBase) / 4;
        const std::string text = isa::disassemble(image.text[idx]);
        core.step();
        const auto &a4 = core.regs().gpr(isa::reg::a4);
        std::printf("%06llx  %-28s | a4 = {v:%-6lld t:0x%02x f:%d} "
                    "TRT:%u rules\n",
                    (unsigned long long)pc, text.c_str(),
                    (long long)a4.v, a4.t, a4.f ? 1 : 0,
                    core.trt().size());
    }
    const auto stats = core.collectStats();
    std::printf("\ntype checks: %llu lookups, %llu hits, %llu misses\n",
                (unsigned long long)stats.trt.lookups,
                (unsigned long long)stats.trt.hits,
                (unsigned long long)stats.trt.misses());
    std::printf("a0 after the misprediction handler: %llu\n",
                (unsigned long long)core.regs().gpr(isa::reg::a0).v);
    return 0;
}
