// asm_run: a generic TRV64 simulator front end — assemble a .s file,
// run it, and print the guest output plus the performance counters.
// This is the bare-metal counterpart of run_script.
//
//   asm_run <file.s> [--max-instr=N] [--trace=N]
//
// Example program (save as hello.s):
//     _start:
//         la a0, msg
//         sys 4
//         halt
//         .data
//     msg: .asciiz "hello from TRV64\n"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "assembler/assembler.h"
#include "common/log.h"
#include "core/core.h"

using namespace tarch;

int
main(int argc, char **argv)
{
    std::string path;
    uint64_t max_instr = 0;
    size_t trace_depth = 0;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--max-instr=", 0) == 0)
            max_instr = std::stoull(arg.substr(12));
        else if (arg.rfind("--trace=", 0) == 0)
            trace_depth = std::stoull(arg.substr(8));
        else
            path = arg;
    }
    if (path.empty()) {
        std::fprintf(stderr,
                     "usage: asm_run <file.s> [--max-instr=N] "
                     "[--trace=N]\n");
        return 2;
    }
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();

    try {
        core::CoreConfig cfg;
        if (max_instr)
            cfg.maxInstructions = max_instr;
        core::Core core(cfg);
        core::Tracer tracer(trace_depth ? trace_depth : 16);
        if (trace_depth)
            core.setTracer(&tracer);
        core.loadProgram(assembler::assemble(buf.str()));
        const int code = core.run();
        std::fputs(core.output().c_str(), stdout);

        const core::CoreStats stats = core.collectStats();
        std::fprintf(stderr, "\nexit code      %12d\n", code);
        std::fprintf(stderr, "instructions   %12llu\n",
                     (unsigned long long)stats.instructions);
        std::fprintf(stderr, "cycles         %12llu  (IPC %.3f)\n",
                     (unsigned long long)stats.cycles, stats.ipc());
        std::fprintf(stderr, "loads/stores   %12llu / %llu\n",
                     (unsigned long long)stats.loads,
                     (unsigned long long)stats.stores);
        std::fprintf(stderr, "branch MPKI    %12.2f\n",
                     stats.branchMpki());
        std::fprintf(stderr, "i$/d$ MPKI     %9.3f / %.3f\n",
                     stats.icacheMpki(), stats.dcacheMpki());
        if (stats.trt.lookups)
            std::fprintf(stderr, "type checks    %12llu (miss %llu)\n",
                         (unsigned long long)stats.trt.lookups,
                         (unsigned long long)stats.trt.misses());
        if (trace_depth) {
            std::fprintf(stderr, "last instructions:\n%s",
                         tracer.dump().c_str());
        }
        return code;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}
