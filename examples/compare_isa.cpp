// compare_isa: run one MiniScript program on all three ISA variants of
// one engine and print a per-program version of the paper's headline
// comparison (speedup, instruction reduction, branch/I-cache MPKI,
// type-check statistics).
//
//   compare_isa <file.ms> [--engine=lua|js]

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/log.h"
#include "vm/js/js_vm.h"
#include "vm/lua/lua_vm.h"

using namespace tarch;

namespace {

struct Row {
    std::string name;
    core::CoreStats stats;
    std::string output;
};

template <typename Vm>
Row
runVariant(const std::string &source, vm::Variant variant)
{
    typename Vm::Options opts;
    opts.variant = variant;
    Vm vm(source, opts);
    vm.run();
    return {std::string(vm::variantName(variant)),
            vm.core().collectStats(), vm.output()};
}

template <typename Vm>
int
compare(const std::string &source)
{
    const Row rows[3] = {
        runVariant<Vm>(source, vm::Variant::Baseline),
        runVariant<Vm>(source, vm::Variant::Typed),
        runVariant<Vm>(source, vm::Variant::CheckedLoad),
    };
    for (int i = 1; i < 3; ++i) {
        if (rows[i].output != rows[0].output) {
            std::fprintf(stderr, "output mismatch on %s!\n",
                         rows[i].name.c_str());
            return 1;
        }
    }
    std::printf("program output (identical on all variants):\n%s\n",
                rows[0].output.c_str());
    std::printf("%-14s %14s %14s %10s %8s %8s %10s\n", "variant",
                "instructions", "cycles", "speedup", "brMPKI", "i$MPKI",
                "type miss");
    const double base_cycles = static_cast<double>(rows[0].stats.cycles);
    for (const Row &row : rows) {
        const auto &s = row.stats;
        std::printf("%-14s %14llu %14llu %+9.1f%% %8.2f %8.3f %10llu\n",
                    row.name.c_str(), (unsigned long long)s.instructions,
                    (unsigned long long)s.cycles,
                    100.0 * (base_cycles / s.cycles - 1.0),
                    s.branchMpki(), s.icacheMpki(),
                    (unsigned long long)(s.trt.misses() + s.chklbMisses));
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string path;
    std::string engine = "lua";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--engine=", 0) == 0)
            engine = arg.substr(9);
        else
            path = arg;
    }
    if (path.empty()) {
        std::fprintf(stderr,
                     "usage: compare_isa <file.ms> [--engine=lua|js]\n");
        return 2;
    }
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    try {
        return engine == "js" ? compare<vm::js::JsVm>(buf.str())
                              : compare<vm::lua::LuaVm>(buf.str());
    } catch (const FatalError &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}
