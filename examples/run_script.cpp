// run_script: execute a MiniScript program on a chosen engine and ISA
// variant and report the performance counters.
//
//   run_script <file.ms> [--engine=lua|js] [--isa=baseline|typed|chkld]
//              [--profile]
//
// Example:
//   ./build/examples/run_script scripts/fibo.ms --engine=lua --isa=typed

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "common/log.h"
#include "vm/js/js_vm.h"
#include "vm/lua/lua_vm.h"

using namespace tarch;

namespace {

void
usage()
{
    std::fprintf(stderr,
                 "usage: run_script <file.ms> [--engine=lua|js] "
                 "[--isa=baseline|typed|chkld] [--profile]\n");
}

template <typename Vm>
int
execute(const std::string &source, vm::Variant variant, bool profile)
{
    typename Vm::Options opts;
    opts.variant = variant;
    Vm vm(source, opts);
    const int code = vm.run();
    std::fputs(vm.output().c_str(), stdout);

    const core::CoreStats stats = vm.core().collectStats();
    std::fprintf(stderr, "\n--- %s ---\n",
                 std::string(vm::variantName(variant)).c_str());
    std::fprintf(stderr, "instructions     %12llu\n",
                 (unsigned long long)stats.instructions);
    std::fprintf(stderr, "cycles           %12llu  (IPC %.3f)\n",
                 (unsigned long long)stats.cycles, stats.ipc());
    std::fprintf(stderr, "dynamic bytecodes%12llu\n",
                 (unsigned long long)vm.dynamicBytecodes());
    std::fprintf(stderr, "branch MPKI      %12.2f\n", stats.branchMpki());
    std::fprintf(stderr, "I-cache MPKI     %12.3f\n", stats.icacheMpki());
    std::fprintf(stderr, "D-cache MPKI     %12.3f\n", stats.dcacheMpki());
    if (stats.trt.lookups)
        std::fprintf(stderr, "type checks      %12llu  (miss %llu, "
                             "overflow %llu)\n",
                     (unsigned long long)stats.trt.lookups,
                     (unsigned long long)stats.trt.misses(),
                     (unsigned long long)stats.typeOverflowMisses);
    if (stats.chklbChecks)
        std::fprintf(stderr, "checked loads    %12llu  (miss %llu)\n",
                     (unsigned long long)stats.chklbChecks,
                     (unsigned long long)stats.chklbMisses);
    if (profile) {
        std::fprintf(stderr, "bytecode profile:\n");
        for (const auto &[name, count] : vm.bytecodeProfile()) {
            if (count)
                std::fprintf(stderr, "  %-12s %12llu\n", name.c_str(),
                             (unsigned long long)count);
        }
    }
    return code;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string path;
    std::string engine = "lua";
    std::string isa = "baseline";
    bool profile = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--engine=", 0) == 0) {
            engine = arg.substr(9);
        } else if (arg.rfind("--isa=", 0) == 0) {
            isa = arg.substr(6);
        } else if (arg == "--profile") {
            profile = true;
        } else if (arg[0] != '-') {
            path = arg;
        } else {
            usage();
            return 2;
        }
    }
    if (path.empty()) {
        usage();
        return 2;
    }

    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();

    vm::Variant variant;
    if (isa == "baseline")
        variant = vm::Variant::Baseline;
    else if (isa == "typed")
        variant = vm::Variant::Typed;
    else if (isa == "chkld" || isa == "checked-load")
        variant = vm::Variant::CheckedLoad;
    else {
        usage();
        return 2;
    }

    try {
        if (engine == "lua")
            return execute<vm::lua::LuaVm>(buf.str(), variant, profile);
        if (engine == "js")
            return execute<vm::js::JsVm>(buf.str(), variant, profile);
        usage();
        return 2;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}
